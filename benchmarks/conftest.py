"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables/figures through
:mod:`repro.bench.experiments` and asserts its *shape* against the paper
(who wins, rough factors, crossovers). Simulations are deterministic, so
a single round is meaningful; the measured wall time is the cost of
regenerating the artefact.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
