"""Device-model ablation (DESIGN.md design-decision #1).

Compares the full device service model against a pure-fluid variant
(arbitration jitter off) on a Figure 7(a)-style sweep. Findings the
assertions pin down:

1. The small-block penalty comes from the controller command ceiling +
   QD-1 media latency — present in both variants.
2. The mild large-block upturn comes from metadata granularity (log
   pages and directory-file writes are whole hugeblocks) — also present
   in both variants.
3. Command-granular arbitration jitter is **latency-visible but
   throughput-neutral**: a work-conserving device stays busy while a
   delayed batch waits, so dump makespans match the fluid model, while
   individual batch latencies stretch. This is why the paper's "large
   block size increases queue waiting time" shows up as latency, not as
   a large aggregate penalty.
"""

import dataclasses

import numpy as np

from repro.bench.fleet import MicroFSFleet
from repro.bench.harness import ResultTable, dump_files, parallel_clients
from repro.core.config import RuntimeConfig
from repro.nvme.commands import Payload
from repro.nvme.device import SSD, intel_p4800x
from repro.sim import Environment
from repro.units import GiB, KiB, MiB


def sweep(beta, blocks=(KiB(4), KiB(32), MiB(2)), nprocs=28, file_bytes=MiB(128)):
    spec = dataclasses.replace(intel_p4800x(), arbitration_beta=beta)
    times = {}
    for block in blocks:
        config = RuntimeConfig(
            hugeblock_bytes=block, log_region_bytes=MiB(4), state_region_bytes=MiB(16)
        )
        fleet = MicroFSFleet(
            nprocs, config=config, partition_bytes=2 * file_bytes + MiB(64),
            seed=2, ssd_spec=spec,
        )
        times[block] = parallel_clients(fleet.env, fleet.clients, dump_files(file_bytes))
    return times


def probe_latency(beta, nclients=28, batch_bytes=MiB(8), probes=32):
    """Mean latency of single probe batches injected into a busy device.

    An *open* measurement: background clients keep the device saturated;
    each probe batch arrives, possibly waits behind whole in-flight
    commands (the arbitration term), transfers, and leaves. Unlike the
    closed dump, nothing lets a delayed probe 'catch up'."""
    env = Environment()
    spec = dataclasses.replace(intel_p4800x(), arbitration_beta=beta)
    ssd = SSD(env, spec, "s", rng=np.random.default_rng(1))
    ns = ssd.create_namespace(GiB(16))
    latencies = []

    def background(i):
        for k in range(8):
            yield ssd.write(
                ns.nsid, (i * 8 + k) * batch_bytes,
                Payload.synthetic(f"bg{i}.{k}", batch_bytes), MiB(2),
            )

    def prober():
        base = nclients * 8 * batch_bytes
        for k in range(probes):
            yield env.timeout(0.02)
            t0 = env.now
            yield ssd.write(
                ns.nsid, base + k * MiB(2),
                Payload.synthetic(f"probe{k}", MiB(2)), MiB(2),
            )
            latencies.append(env.now - t0)

    for i in range(nclients):
        env.process(background(i))
    env.process(prober())
    env.run()
    return float(np.mean(latencies))


def test_ablation_device_service_model(once):
    def experiment():
        table = ResultTable(
            "Ablation: device service model (arbitration on/off)",
            ["block", "with_arbitration_s", "pure_fluid_s"],
        )
        with_arb = sweep(beta=intel_p4800x().arbitration_beta)
        fluid = sweep(beta=0.0)
        for block in with_arb:
            label = f"{block // 1024}K"
            table.add(label, with_arb[block], fluid[block])
        return table

    table = once(experiment)
    table.show()
    rows = {row[0]: row for row in table.rows}
    # (1) small-block penalty in both variants.
    assert rows["4K"][1] > 1.03 * rows["32K"][1]
    assert rows["4K"][2] > 1.03 * rows["32K"][2]
    # (2) large-block upturn in both (metadata granularity).
    assert rows["2048K"][1] > rows["32K"][1]
    assert rows["2048K"][2] > rows["32K"][2]
    # (3) arbitration is throughput-neutral on the dump makespan...
    for label in ("4K", "32K", "2048K"):
        assert abs(rows[label][1] / rows[label][2] - 1.0) < 0.01
    # ...but latency-visible to open-arrival probes.
    lat_arb = probe_latency(intel_p4800x().arbitration_beta)
    lat_fluid = probe_latency(0.0)
    assert lat_arb > 1.05 * lat_fluid
