"""Ablation benches for the design decisions called out in DESIGN.md."""

from repro.bench import experiments as E


def test_ablation_coalescing(once):
    table = once(E.ablation_coalescing, writes=64)
    table.show()
    rows = {row[0]: row for row in table.rows}
    with_coalescing = rows[True]
    without = rows[False]
    # Coalescing collapses the replay set (paper: near-instantaneous
    # runtime recovery, 4 s -> ~0).
    assert with_coalescing[2] < without[2] / 10
    assert with_coalescing[3] <= without[3]


def test_ablation_distributors(once):
    table = once(E.ablation_distributors, nfiles=112)
    table.show()
    covs = {row[0]: row[1] for row in table.rows}
    # Round-robin (NVMe-CR's balancer) is perfectly balanced; both
    # hashing schemes are not.
    assert covs["round-robin (NVMe-CR)"] < 1e-9
    assert covs["jump hash (GlusterFS)"] > 0.1
    assert covs["vnode ring (64 vnodes)"] > 0.1
