"""Extension benches: cache layer (§V), incremental ckpt, compression,
burst buffer, MTBF campaign, and the N-1 pattern."""

import pytest

from repro.bench import extensions as X


def test_ext_cache_layer(once):
    table = once(X.ext_cache_layer)
    table.show()
    rows = {row[0]: row for row in table.rows}
    # Warm restart from DRAM is orders of magnitude faster than device.
    assert rows["write-through"][2] < rows["none"][2] / 5
    assert rows["write-through"][3] == 1.0  # all hits
    # Checkpoint time itself is not helped (durability still costs).
    assert rows["write-through"][1] >= 0.95 * rows["none"][1]


def test_ext_incremental(once):
    table = once(X.ext_incremental)
    table.show()
    fractions = table.column("dirty_frac")
    volumes = table.column("bytes_vs_full")
    times = table.column("time_s")
    # Volume and time shrink monotonically with dirty fraction.
    assert volumes == sorted(volumes)
    assert times == sorted(times)
    # At 10% dirty, the volume saving is large.
    assert volumes[0] < 0.4
    # Full-dirty writes the full volume.
    assert volumes[-1] >= 0.99


def test_ext_compression(once):
    table = once(X.ext_compression)
    table.show()
    speedups = table.column("speedup")
    # CPU-bound at 1 rank: compression loses.
    assert speedups[0] < 1.0
    # IO-bound at 28 ranks: compression wins, bounded by the ratio.
    assert 1.2 < speedups[-1] < 2.1


def test_ext_burst_buffer(once):
    table = once(X.ext_burst_buffer)
    table.show()
    rows = {row[0]: row for row in table.rows}
    bb = rows["burstfs (node-local)"]
    cr = rows["nvme-cr (disaggregated)"]
    # Node-local dumps are faster (no fabric, per-node parallel SSDs)...
    assert bb[1] < cr[1]
    # ...but do not survive the node failure; NVMe-CR does.
    assert bb[2] is False
    assert cr[2] is True


def test_ext_mtbf_campaign(once):
    table = once(X.ext_mtbf_campaign)
    table.show()
    intervals = table.column("interval_s")
    progress = table.column("progress")
    best = intervals[progress.index(max(progress))]
    # The empirical optimum lies in Daly's neighbourhood (C~0.13, M=120
    # -> ~5.4s), not at either sweep extreme.
    assert best not in (intervals[0], intervals[-1]) or best == intervals[1]
    assert 2.0 <= best <= 15.0
    # Checkpointing too rarely is the worst strategy under failures.
    assert progress[-1] == min(progress)


def test_ext_n1_pattern(once):
    table = once(X.ext_n1_pattern)
    table.show()
    rows = {row[0]: row for row in table.rows}
    # NVMe-CR: private namespaces make N-1 == N-N.
    assert rows["nvme-cr"][3] == pytest.approx(1.0, abs=0.02)
    # Shared-namespace N-1 collapses on the file lock (PLFS's problem).
    assert rows["orangefs"][3] > 2.0



def test_ext_skewed_balance(once):
    table = once(X.ext_skewed_balance)
    table.show()
    nvmecr = table.column("nvmecr_cov")
    gfs = table.column("glusterfs_cov")
    # Equal sizes: round-robin is perfect; CoV grows with skew but stays
    # below consistent hashing at every sigma.
    assert nvmecr[0] < 1e-6
    assert nvmecr == sorted(nvmecr)
    for n, g in zip(nvmecr, gfs):
        assert n < g
