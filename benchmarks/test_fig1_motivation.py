"""Figure 1: weak-scaling checkpoint bandwidth of OrangeFS/GlusterFS."""

from repro.bench import experiments as E


def test_fig1_motivation(once):
    table = once(E.fig1_motivation, procs=(28, 56, 112, 224, 448))
    table.show()
    ofs = table.column("orangefs_frac")
    gfs = table.column("glusterfs_frac")
    # OrangeFS plateaus well below hardware peak (~41% in the paper).
    assert max(ofs) < 0.55
    assert 0.30 < ofs[-1] < 0.55
    # GlusterFS reaches much higher at scale (~84% in the paper)...
    assert 0.70 < gfs[-1] < 0.95
    # ...but underperforms at low concurrency (consistent hashing).
    assert gfs[0] < 0.55
    # GlusterFS overtakes OrangeFS as concurrency grows.
    assert gfs[-1] > ofs[-1]
