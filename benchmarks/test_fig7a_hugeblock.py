"""Figure 7(a): optimal hugeblock size sweep."""

from repro.bench import experiments as E
from repro.units import KiB, MiB


def test_fig7a_hugeblock_sweep(once):
    table = once(
        E.fig7a_hugeblock_sweep,
        block_sizes=(KiB(4), KiB(8), KiB(16), KiB(32), KiB(64), KiB(128),
                     KiB(512), MiB(2)),
        nprocs=28,
        file_bytes=MiB(512),
    )
    table.show()
    blocks = table.column("block")
    times = dict(zip(blocks, table.column("time_s")))
    # 4K pays a small-block penalty of roughly the paper's 7%.
    assert 1.03 < times["4K"] / times["32K"] < 1.20
    # 32K is within a hair of the optimum across the sweep.
    assert times["32K"] <= 1.01 * min(times.values())
    # Pool footprint shrinks 8x from 4K to 32K (the paper's 8x claim).
    pools = dict(zip(blocks, table.column("pool_bytes")))
    assert 7.5 < pools["4K"] / pools["32K"] < 8.5
