"""Figure 7(b): load-imbalance coefficient of variation."""

from repro.bench import experiments as E


def test_fig7b_load_imbalance(once):
    table = once(E.fig7b_load_imbalance, procs=(28, 56, 112, 224, 448))
    table.show()
    nvmecr = table.column("nvmecr")
    ofs = table.column("orangefs")
    gfs = table.column("glusterfs")
    # NVMe-CR: perfect balance at every scale.
    assert all(cov < 1e-6 for cov in nvmecr)
    # OrangeFS striping: near-balanced, far better than hashing.
    assert all(cov < 0.05 for cov in ofs)
    # GlusterFS: high CoV at low concurrency, improving with scale.
    assert gfs[0] > 0.4
    assert gfs[-1] < gfs[0]
    # Ordering at every point: GlusterFS worst, NVMe-CR best.
    for n, o, g in zip(nvmecr, ofs, gfs):
        assert n <= o < g
