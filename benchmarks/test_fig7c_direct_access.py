"""Figure 7(c): direct userspace access vs kernel filesystems."""

from repro.bench import experiments as E
from repro.units import MiB


def test_fig7c_direct_access(once):
    table = once(
        E.fig7c_direct_access,
        sizes=(MiB(64), MiB(128), MiB(256), MiB(512)),
        nprocs=28,
    )
    table.show()
    xfs_gap = table.column("xfs_vs_nvmecr")
    ext4_gap = table.column("ext4_vs_nvmecr")
    # At 512 MB: XFS ~19% slower, ext4 ~83% slower (paper's anchors).
    assert 0.10 < xfs_gap[-1] < 0.30
    assert 0.60 < ext4_gap[-1] < 1.10
    # The gap grows with data size ("metadata overhead has a linear
    # correlation with file size").
    assert ext4_gap[-1] > ext4_gap[0]
    # NVMe-CR ~= raw SPDK (no noticeable overhead).
    nvmecr = table.column("nvmecr")
    spdk = table.column("spdk")
    for a, b in zip(nvmecr, spdk):
        assert abs(a / b - 1.0) < 0.02
    # Kernel-time share: NVMe-CR small, kernel filesystems dominant.
    assert table.column("kern%_nvmecr")[-1] < 0.15
    assert table.column("kern%_xfs")[-1] > 0.6
    assert table.column("kern%_ext4")[-1] > 0.3
