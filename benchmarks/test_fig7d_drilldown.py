"""Figure 7(d): drilldown — optimisations stacked one by one."""

from repro.bench import experiments as E


def test_fig7d_drilldown(once):
    table = once(E.fig7d_drilldown, procs=(28, 112, 448))
    table.show()
    stages = table.columns[1:]
    for row in table.rows:
        base, userspace, provenance, hugeblocks = row[1:]
        # Every optimisation stage helps (monotone improvement).
        assert base > userspace > provenance > hugeblocks
    # Userspace + private namespace helps more at scale (global-ns
    # serialisation grows with process count).
    gain_small = 1 - table.rows[0][2] / table.rows[0][1]
    gain_large = 1 - table.rows[-1][2] / table.rows[-1][1]
    assert gain_large > gain_small
    # Hugeblocks help most at low concurrency.
    hb_small = 1 - table.rows[0][4] / table.rows[0][3]
    hb_large = 1 - table.rows[-1][4] / table.rows[-1][3]
    assert hb_small > hb_large
    assert hb_small > 0.2  # paper: up to 62%
    # Metadata provenance contributes meaningfully everywhere.
    for row in table.rows:
        assert 1 - row[3] / row[2] > 0.02  # paper: up to 17%
