"""Figure 8(a): NVMf overhead — local vs remote vs Crail."""

from repro.bench import experiments as E
from repro.units import MiB


def test_fig8a_nvmf_overhead(once):
    table = once(
        E.fig8a_nvmf_overhead,
        sizes=(MiB(64), MiB(128), MiB(256), MiB(512)),
        nprocs=28,
    )
    table.show()
    overhead = table.column("remote_overhead")
    crail_gap = table.column("crail_vs_nvmecr")
    # Remote access adds < 3.5% at every size (paper's bound).
    assert all(0.0 <= o < 0.035 for o in overhead)
    # Crail runs 5-10% behind NVMe-CR despite the same SPDK data plane.
    assert all(0.02 < c < 0.15 for c in crail_gap)
