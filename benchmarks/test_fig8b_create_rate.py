"""Figure 8(b): file-create throughput under the N-N pattern."""

from repro.bench import experiments as E


def test_fig8b_create_rate(once):
    table = once(E.fig8b_create_rate, procs=(28, 56, 112, 224, 448))
    table.show()
    vs_ofs = table.column("nvmecr_vs_ofs")
    vs_gfs = table.column("nvmecr_vs_gfs")
    # Paper @448: 7x over OrangeFS and 18x over GlusterFS.
    assert 4.0 < vs_ofs[-1] < 12.0
    assert 10.0 < vs_gfs[-1] < 30.0
    # NVMe-CR's create rate scales with process count (no serialisation);
    # the baselines saturate.
    nvmecr = table.column("nvmecr")
    gfs = table.column("glusterfs")
    assert nvmecr[-1] > 1.2 * nvmecr[0]
    assert gfs[-1] < 1.2 * gfs[0]
