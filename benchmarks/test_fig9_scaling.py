"""Figures 9(a)-(d): strong/weak scaling checkpoint & recovery efficiency."""

from repro.bench import experiments as E


def test_fig9_weak_scaling(once):
    table = once(
        E.fig9_scaling, "weak", procs=(56, 112, 224, 448), checkpoints=3
    )
    table.show()
    _assert_fig9_shape(table)
    # Weak scaling @448 anchors: NVMe-CR near-perfect efficiency.
    assert table.column("ckpt_nvmecr")[-1] > 0.85  # paper: 0.96
    assert table.column("rec_nvmecr")[-1] > 0.90  # paper: 0.99
    # GlusterFS checkpoints trail NVMe-CR (paper: ~13% lower).
    assert table.column("ckpt_gfs")[-1] < 0.95 * table.column("ckpt_nvmecr")[-1]


def test_fig9_strong_scaling(once):
    table = once(
        E.fig9_scaling, "strong", procs=(56, 112, 224, 448), checkpoints=3
    )
    table.show()
    _assert_fig9_shape(table)


def _assert_fig9_shape(table):
    for row_index in range(len(table.rows)):
        ckpt_n = table.column("ckpt_nvmecr")[row_index]
        ckpt_o = table.column("ckpt_ofs")[row_index]
        ckpt_g = table.column("ckpt_gfs")[row_index]
        # NVMe-CR achieves the best checkpoint efficiency everywhere.
        assert ckpt_n > ckpt_g
        assert ckpt_n > ckpt_o
        # OrangeFS is the weakest checkpointer at scale.
        if row_index == len(table.rows) - 1:
            assert ckpt_o < ckpt_g
        # Recovery efficiencies are higher than checkpoint for the
        # baselines ("During recovery ... they perform much better").
        assert table.column("rec_ofs")[row_index] > ckpt_o
