"""Figure 9 through the sharded execution layer: scale-out + bit-identity.

The acceptance run for the execution layer: a fig9-style sweep with at
least 48 environments (16 scales x 3 systems), executed in-process and
across 4 worker shards.  The merged results must be bit-identical; on
hosts with >= 4 cores the 4-shard run must finish at least 2x faster.
``BENCH_fig9.json`` records both wall clocks either way, so CI's
multi-core runners enforce the speedup and single-core hosts still
publish the artefact.
"""

import os
import time

import pytest

from repro.bench.experiments import fig9_plan
from repro.bench.harness import write_bench_json
from repro.exec import InProcessExecutor, ShardedExecutor

_PROCS = tuple(range(4, 36, 2))  # 16 scales
_SYSTEMS = ("nvmecr", "orangefs", "glusterfs")


@pytest.mark.slow
def test_fig9_sharded_scaling_bit_identical_and_faster():
    plan_kwargs = dict(procs=_PROCS, checkpoints=1, atoms_per_rank=2_000,
                       seed=8, systems=_SYSTEMS)
    plan = fig9_plan("weak", **plan_kwargs)
    assert len(plan.units) >= 48  # one environment per unit

    t0 = time.perf_counter()
    base = InProcessExecutor().execute(plan)
    wall_1 = time.perf_counter() - t0

    t0 = time.perf_counter()
    sharded = ShardedExecutor(4, start_method="fork").execute(
        fig9_plan("weak", **plan_kwargs))
    wall_4 = time.perf_counter() - t0

    # Bit-identity is unconditional: same seed, same merged artefacts.
    assert sharded.merged.fingerprint == base.merged.fingerprint
    assert sharded.merged.events_scheduled == base.merged.events_scheduled
    assert sharded.value.rows == base.value.rows

    speedup = wall_1 / wall_4 if wall_4 > 0 else float("inf")
    cpus = os.cpu_count() or 1
    table = sharded.value
    table.note(f"sharded scale-out: {len(plan.units)} environments, "
               f"speedup {speedup:.2f}x on {cpus} cpus")
    path = write_bench_json(
        "fig9", table, wall_s=wall_4,
        meta={
            "experiment": "fig9weak-sharded",
            "environments": len(plan.units),
            "shards": 4,
            "backend": sharded.backend,
            "fingerprint": sharded.merged.fingerprint,
            "wall_1shard_s": wall_1,
            "wall_4shards_s": wall_4,
            "speedup": speedup,
            "cpu_count": cpus,
        },
    )
    print(f"wrote {path}: {speedup:.2f}x speedup at 4 shards ({cpus} cpus)")

    # The >= 2x wall-clock gate needs real parallelism to exist.
    if cpus >= 4:
        assert speedup >= 2.0, (
            f"4-shard run only {speedup:.2f}x faster on {cpus} cpus")
