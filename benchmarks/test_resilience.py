"""Fault-injected campaign smoke: effective progress vs MTBF (§V).

Marked ``slow`` — a full sweep runs many restart/rollback cycles per
cell. Excluded from the quick loop via ``-m "not slow"``.
"""

import pytest

from repro.bench.resilience import resilience
from repro.units import MiB


@pytest.mark.slow
def test_resilience_sweep_shape(once):
    table = once(
        resilience,
        mtbfs=(30.0, 60.0, 120.0),
        systems=("nvmecr", "lustre"),
        total_compute=240.0,
        nbytes=MiB(64),
        seed=41,
    )
    assert len(table.rows) == 6
    progress = table.columns.index("progress")
    mtbf = table.columns.index("mtbf_s")
    by_system = {}
    for row in table.rows:
        by_system.setdefault(row[0], {})[row[mtbf]] = row[progress]
    for curve in by_system.values():
        # Rarer failures -> better effective progress, and every cell
        # still makes forward progress.
        assert curve[30.0] <= curve[120.0]
        assert all(0.0 < p <= 1.0 for p in curve.values())
    # The runtime's cheaper dumps buy shorter Daly intervals and at
    # least as much effective progress as the PFS baseline at low MTBF.
    assert by_system["nvmecr"][30.0] >= 0.95 * by_system["lustre"][30.0]
