"""Registry conformance: every backend completes the N-N matrix pass."""

from repro import systems
from repro.bench import experiments as E
from repro.units import MiB


def test_sysmatrix_covers_every_registered_system(once):
    table = once(E.sysmatrix, nprocs=4, nbytes=MiB(8))
    assert len(table.rows) == len(systems.names())
    assert all(w > 0 for w in table.column("write_s"))
    assert all(r > 0 for r in table.column("read_s"))
    by_system = {row[0]: row for row in table.rows}
    # Shape: the runtime's userspace path beats the kernel filesystems.
    assert by_system["NVMe-CR"][2] < by_system["ext4"][2]
    assert by_system["NVMe-CR"][2] < by_system["XFS"][2]
