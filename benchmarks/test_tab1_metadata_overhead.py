"""Table I: metadata storage overhead with CoMD."""

from repro.bench import experiments as E


def test_tab1_metadata_overhead(once):
    table = once(E.tab1_metadata_overhead, nprocs=448, checkpoints=10)
    table.show()
    rows = {row[0]: row[2] for row in table.rows}
    nvmecr = rows["NVMe-CR"]
    dram = rows["NVMe-CR (DRAM)"]
    ofs = rows["orangefs"]
    gfs = rows["glusterfs"]
    # Paper ordering: OrangeFS per-node >> NVMe-CR per-runtime >>
    # GlusterFS per-node (2686 / 445 / 3.5 MB).
    assert ofs > nvmecr > gfs
    # Magnitudes in the paper's ballpark.
    assert 1000 < ofs < 5000  # ~2686 MB
    assert 200 < nvmecr < 800  # ~445 MB
    assert gfs < 10  # 3.5 MB
    # DRAM footprint below the paper's 512 MB-per-instance bound.
    assert dram < 512
