"""Table II: multi-level checkpointing with a Lustre second tier."""

from repro.bench import experiments as E


def test_tab2_multilevel(once):
    table = once(E.tab2_multilevel, nprocs=448, checkpoints=10)
    table.show()
    rows = {row[0]: (row[1], row[2], row[3]) for row in table.rows}
    ofs, gfs, nvmecr = rows["OrangeFS"], rows["GlusterFS"], rows["NVMe-CR"]
    # Checkpoint time ordering (paper: 85.9 / 44.5 / 39.5 s).
    assert nvmecr[0] < gfs[0] < ofs[0]
    # NVMe-CR's recovery is at least as fast as everyone's (paper:
    # 3.6 / 4.5 / 3.6 s — NVMe-CR ties OrangeFS, beats GlusterFS).
    assert nvmecr[1] <= gfs[1]
    # Progress-rate ordering (paper: 0.252 / 0.402 / 0.423).
    assert nvmecr[2] > gfs[2] > ofs[2]
    # Progress rates in the paper's band.
    assert 0.15 < ofs[2] < 0.45
    assert 0.25 < nvmecr[2] < 0.60
