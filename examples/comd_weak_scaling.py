#!/usr/bin/env python
"""CoMD weak-scaling campaign: NVMe-CR vs OrangeFS vs GlusterFS.

Reproduces the flavour of §IV-H: the CoMD proxy app checkpoints
periodically under weak scaling (fixed atoms per process); we report
checkpoint efficiency (application-visible bandwidth over aggregate
hardware peak) for each storage system at each scale.

Run:  python examples/comd_weak_scaling.py [--full]
  --full uses the paper's scales (up to 448 procs; takes minutes).
"""

import sys

from repro.apps import CoMDConfig, CoMDProxy
from repro.bench.experiments import _run_comd
from repro.metrics import efficiency


def main(full: bool = False):
    procs_list = (56, 112, 224, 448) if full else (28, 56, 112)
    checkpoints = 3
    comd = CoMDProxy(CoMDConfig.weak_scaling(atoms_per_rank=32_000, checkpoints=checkpoints))
    nbytes = comd.config.checkpoint_bytes_per_rank

    print("== CoMD weak scaling: checkpoint efficiency ==")
    print(f"{'procs':>6}  {'nvme-cr':>8}  {'orangefs':>8}  {'glusterfs':>9}")
    for procs in procs_list:
        effs = {}
        total = procs * nbytes * checkpoints
        # Any registered storage system runs the same proxy app.
        for kind in ("nvmecr", "orangefs", "glusterfs"):
            handle, stats = _run_comd(kind, procs, comd, seed=7)
            effs[kind] = efficiency(
                total, max(s.checkpoint_time for s in stats),
                handle.aggregate_write_bandwidth(),
            )
        print(f"{procs:>6}  {effs['nvmecr']:>8.3f}  {effs['orangefs']:>8.3f}  "
              f"{effs['glusterfs']:>9.3f}")
    print("\npaper anchor: NVMe-CR reaches 0.96 checkpoint efficiency at 448 procs;")
    print("OrangeFS/GlusterFS are capped by layered servers and namespace contention.")


if __name__ == "__main__":
    main(full="--full" in sys.argv)
