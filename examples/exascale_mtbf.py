#!/usr/bin/env python
"""Exascale failure campaign: why checkpoint speed sets progress rate.

The paper opens with exascale MTBF below 30 minutes (§I). This example
runs the same failure-driven campaign over NVMe-CR and over a
GlusterFS-class baseline — identical failure times via common random
numbers — and shows how the runtime's faster dumps translate into
effective application progress, plus the Young/Daly view of the optimal
checkpoint interval.

Run:  python examples/exascale_mtbf.py
"""

from repro.apps import Deployment
from repro.apps.mtbf import CampaignConfig, FailureCampaign, daly_interval, young_interval
from repro.baselines import GlusterFSCluster
from repro.bench.fleet import MicroFSFleet
from repro.units import GiB, MiB


def run_campaign(shim, mtbf, interval, seed=17):
    config = CampaignConfig(
        total_compute=300.0, checkpoint_interval=interval,
        checkpoint_bytes=MiB(512), mtbf=mtbf, restart_cost=1.0,
    )
    campaign = FailureCampaign(shim, config, seed=seed)
    return shim.env.run_until_complete(shim.env.process(campaign.run()))


def main():
    print("== exascale MTBF campaign ==")
    mtbf = 90.0  # seconds, scaled-down stand-in for 'under 30 minutes'
    interval = 10.0

    # NVMe-CR: one rank on its own partition (others are symmetric).
    fleet = MicroFSFleet(1, partition_bytes=GiB(8), seed=17)
    nvmecr = run_campaign(fleet.clients[0], mtbf, interval)

    # GlusterFS-class baseline, same failure sequence.
    dep = Deployment(seed=17)
    cluster = GlusterFSCluster(dep, GiB(32))
    gfs = run_campaign(cluster.client("r0"), mtbf, interval)

    print(f"{'':>22} {'NVMe-CR':>10} {'GlusterFS':>10}")
    print(f"{'effective progress':>22} {nvmecr.effective_progress:>10.3f} "
          f"{gfs.effective_progress:>10.3f}")
    print(f"{'checkpoint time (s)':>22} {nvmecr.checkpoint_time:>10.2f} "
          f"{gfs.checkpoint_time:>10.2f}")
    print(f"{'failures':>22} {nvmecr.failures:>10} {gfs.failures:>10}")
    print(f"{'lost work (s)':>22} {nvmecr.lost_work:>10.2f} {gfs.lost_work:>10.2f}")

    cost = nvmecr.checkpoint_time / max(1, nvmecr.checkpoints_written)
    print(f"\nmeasured NVMe-CR checkpoint cost: {cost:.3f}s")
    print(f"Young-optimal interval: {young_interval(mtbf, cost):.1f}s; "
          f"Daly: {daly_interval(mtbf, cost):.1f}s")
    print("faster dumps shift the optimum left and raise the whole curve —")
    print("the paper's progress-rate argument, closed-loop.")


if __name__ == "__main__":
    main()
