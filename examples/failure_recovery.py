#!/usr/bin/env python
"""Failure injection and recovery: the microfs durability story.

Demonstrates §III-E end to end on one runtime instance:

1. write checkpoints (operation log journals every metadata op, data is
   unbuffered — no fsync games),
2. the background thread checkpoints internal DRAM state when the log
   fills and all files are closed,
3. power fails mid-write — the in-flight checkpoint vanishes, committed
   ones survive (device capacitance),
4. the runtime recovers by loading the state checkpoint and replaying
   the log — near-instantaneously thanks to log record coalescing —
   and the completed checkpoint files read back intact.

Run:  python examples/failure_recovery.py
"""

from repro.bench.fleet import MicroFSFleet
from repro.core.config import RuntimeConfig
from repro.core.data_plane import DataPlane
from repro.core.microfs.recovery import recover
from repro.errors import DevicePoweredOff
from repro.units import KiB, MiB, fmt_time


def main():
    print("== microfs failure/recovery demo ==")
    config = RuntimeConfig(
        log_region_bytes=KiB(8), state_region_bytes=MiB(8), log_free_threshold=0.5
    )
    fleet = MicroFSFleet(1, config=config, partition_bytes=MiB(512), seed=3)
    env, fs, shim = fleet.env, fleet.instances[0], fleet.clients[0]

    stop = env.event()
    env.process(fs.background_checkpointer(poll_interval=0.01, stop_event=stop))
    outcome = {}

    def workload():
        yield from shim.mkdir("/ckpt")
        # Several complete checkpoints. Sequential appends coalesce in
        # the log; the strided tail writes do not — filling the log so
        # the background thread has something to do.
        for step in range(5):
            fd = yield from shim.open(f"/ckpt/step{step}.dat", "w")
            for chunk in range(8):
                yield from shim.write(fd, KiB(256))
            for hole in range(24):
                yield from shim.pwrite(fd, KiB(32), KiB(2048 + 64 * (2 * hole)))
            yield from shim.fsync(fd)
            yield from shim.close(fd)
            yield env.timeout(0.02)  # compute phase
        print(f"  wrote 5 checkpoints; log holds {fs.oplog.record_count} records "
              f"({fs.oplog.total_appends} appends, "
              f"{fs.oplog.total_coalesced} coalesced)")
        print(f"  background state checkpoints so far: {fs.state_checkpoints}")
        # A sixth checkpoint that will die mid-write.
        fd = yield from shim.open("/ckpt/doomed.dat", "w")
        try:
            yield from shim.write(fd, MiB(384))
            outcome["doomed"] = "survived?!"
        except DevicePoweredOff:
            outcome["doomed"] = "lost in flight (expected)"

    def power_cut():
        yield env.timeout(0.22)
        print(f"  !! power failure at t={env.now:.3f}s")
        fleet.ssd.power_fail()
        stop.succeed()

    env.process(workload())
    env.process(power_cut())
    env.run()
    print(f"  in-flight checkpoint: {outcome['doomed']}")

    # --- recovery on the replacement process -----------------------------
    fleet.ssd.power_restore()
    data_plane = DataPlane(env, fleet.instances[0].data_plane.transport,
                           fleet.namespace.nsid, config)

    def do_recover():
        return (yield from recover(env, config, data_plane, fs.partition))

    recovered, report = env.run_until_complete(env.process(do_recover()))
    print(f"  recovery: state checkpoint {'loaded' if report.state_loaded else 'absent'}, "
          f"{report.records_replayed} log records replayed "
          f"in {fmt_time(report.duration)}")
    files = recovered.readdir("/ckpt")
    print(f"  recovered files: {files}")
    expected = max(KiB(2048 + 64 * 46) + KiB(32), 8 * KiB(256))
    for step in range(5):
        size = recovered.stat(f"/ckpt/step{step}.dat").size
        assert size == expected, (size, expected)
    print("  all 5 completed checkpoints intact — "
          "'a completely written checkpoint file will never hold corrupted data'")


if __name__ == "__main__":
    main()
