#!/usr/bin/env python
"""Multi-level checkpointing with cascading-failure survival (§III-F).

56 CoMD-like ranks checkpoint through NVMe-CR, sending every 5th
checkpoint to a Lustre second tier. Then a *cascading* failure takes out
the NVMe tier entirely — and the job still restarts, from the newest
Lustre checkpoint, losing only the work since.

Run:  python examples/multilevel_checkpointing.py
"""

from repro.apps import Deployment
from repro.baselines import LustreCluster
from repro.core.multilevel import MultiLevelCheckpointer
from repro.units import GiB, MiB, fmt_time


def main():
    print("== multi-level checkpointing demo ==")
    dep = Deployment(seed=11)
    lustre = LustreCluster(dep.env)
    job, plan = dep.submit("ml-demo", nprocs=56, bytes_per_device=GiB(40))
    checkpoint_bytes = MiB(32)
    checkpoints = 10
    pfs_interval = 5

    def rank_main(shim, comm):
        mlc = MultiLevelCheckpointer(shim, lustre, pfs_interval=pfs_interval)
        for step in range(checkpoints):
            yield shim.env.timeout(0.02)  # compute
            yield from comm.barrier()
            record = yield from mlc.write_checkpoint(step, checkpoint_bytes)
            yield from comm.barrier()
            if comm.rank == 0:
                tier = "Lustre (slow, reliable)" if record.level == 2 else "NVMe-CR"
                print(f"  checkpoint {step}: -> {tier}")
        # Cascading failure: the NVMe tier's data is gone.
        yield from comm.barrier()
        if comm.rank == 0:
            print("  !! cascading failure: NVMe-CR tier lost")
        t0 = shim.env.now
        record = yield from mlc.recover_latest(level1_alive=False)
        yield from comm.barrier()
        if comm.rank == 0:
            print(f"  recovered from step {record.step} (level {record.level}) "
                  f"in {fmt_time(shim.env.now - t0)}")
        lost = checkpoints - 1 - record.step
        return lost

    mpi_job = dep.run_job(job, plan, rank_main)
    lost = mpi_job.results()[0]
    print(f"  work lost: {lost} checkpoint interval(s) — bounded by the "
          f"1-in-{pfs_interval} Lustre policy")
    print(f"  Lustre absorbed {lustre.counters.get('bytes_written') / 1e9:.2f} GB, "
          f"NVMe tier absorbed the rest at full speed")


if __name__ == "__main__":
    main()
