#!/usr/bin/env python
"""Quickstart: run an unmodified MPI application over NVMe-CR.

Builds the paper's testbed (8 NVMf storage nodes + 16 compute nodes on
EDR InfiniBand), submits a 56-process job, lets the storage balancer
pick SSDs on partner failure domains, and runs a toy application that
checkpoints through intercepted POSIX calls — then prints what happened.

Run:  python examples/quickstart.py
"""

from repro.apps import Deployment
from repro.units import GiB, MiB, fmt_bytes, fmt_rate, fmt_time


def application(shim, comm):
    """A tiny 'application': compute, checkpoint, verify, like CoMD.

    The shim is a drop-in for libc: `open`/`write`/`fsync`/`close` with
    integer fds. `MPI_Init`/`MPI_Finalize` have already been intercepted
    by the launcher.
    """
    env = shim.env
    checkpoint_bytes = MiB(64)

    yield from shim.mkdir("/ckpt")
    for step in range(3):
        # Compute phase.
        yield env.timeout(0.05)
        # N-N checkpoint: each rank writes its own private file.
        yield from comm.barrier()
        t0 = env.now
        fd = yield from shim.open(f"/ckpt/step{step}.dat", "w")
        yield from shim.write(fd, checkpoint_bytes)
        yield from shim.fsync(fd)
        yield from shim.close(fd)
        yield from comm.barrier()
        if comm.rank == 0:
            bandwidth = comm.size * checkpoint_bytes / (env.now - t0)
            print(
                f"  checkpoint {step}: {fmt_bytes(comm.size * checkpoint_bytes)}"
                f" in {fmt_time(env.now - t0)}  ({fmt_rate(bandwidth)})"
            )
    # Read the last checkpoint back (restart path).
    fd = yield from shim.open("/ckpt/step2.dat", "r")
    pieces = yield from shim.read(fd, checkpoint_bytes)
    yield from shim.close(fd)
    assert sum(p.nbytes for p in pieces) == checkpoint_bytes
    return shim.runtime.counters.get("app_bytes_written")


def main():
    print("== NVMe-CR quickstart ==")
    dep = Deployment(seed=42)
    print(f"cluster: {len(dep.cluster.compute_nodes())} compute nodes, "
          f"{len(dep.cluster.storage_nodes())} storage nodes, "
          f"{fmt_rate(dep.aggregate_write_bandwidth())} aggregate SSD write bw")

    job, plan = dep.submit("quickstart", nprocs=56, bytes_per_device=GiB(24))
    grants = {g.node_name for g in plan.grants}
    print(f"job: {job.spec.nprocs} procs on {job.compute_nodes}")
    print(f"storage balancer chose SSDs on: {sorted(grants)} "
          f"(partner failure domain of the compute rack)")

    print("running application...")
    mpi_job = dep.run_job(job, plan, application)
    total = sum(mpi_job.results())
    print(f"done at t={dep.env.now:.3f}s simulated; "
          f"application wrote {fmt_bytes(total)} of checkpoints")

    loads = [load for load in dep.bytes_per_server() if load > 0]
    print(f"per-SSD load: {[fmt_bytes(b) for b in loads]} (perfectly balanced)")
    dep.scheduler.complete(job)
    print("job completed; ephemeral namespaces released")


if __name__ == "__main__":
    main()
