"""Legacy setup shim: the offline environment lacks the `wheel` package,
so PEP 660 editable installs fail; `pip install -e . --no-use-pep517`
uses this file instead. All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
