"""NVMe-CR reproduction: a scalable ephemeral storage runtime for
checkpoint/restart with NVMe-over-Fabrics, rebuilt in Python over a
calibrated discrete-event simulation substrate.

Public entry points:

* :class:`repro.apps.Deployment` — the paper's testbed, powered on.
* :class:`repro.core.RuntimeConfig` / :class:`repro.core.NVMeCRRuntime`
  — the runtime and its ablation flags.
* :mod:`repro.bench.experiments` — one function per paper table/figure.
* ``python -m repro`` — CLI to regenerate any artefact.
"""

from repro.core import NVMeCRRuntime, PosixShim, RuntimeConfig

__version__ = "1.0.0"

__all__ = ["NVMeCRRuntime", "PosixShim", "RuntimeConfig", "__version__"]
