"""repro.analysis — determinism lint + simulation sanitizer suite.

Two halves enforce the repro's correctness contracts:

* :mod:`repro.analysis.detlint` — an AST-based linter (``repro lint``,
  ``python -m repro.analysis``) whose DET001–DET007 rules forbid the
  nondeterminism classes that would break bit-identical pinned-seed
  replays (wall clocks, unseeded RNG, float == on sim timestamps,
  order-sensitive set/dict iteration, unregistered coroutines, missing
  ``__slots__`` on hot-path classes, bare ``except:``).

* :mod:`repro.analysis.sanitize` — runtime sanitizers behind
  ``repro run <exp> --sanitize``: a determinism sanitizer (run twice,
  diff per-layer event-stream hashes), a sim-time race detector
  (same-timestamp multi-actor mutations on objects without a declared
  ``_san_tiebreak``), and a leak sanitizer (unreleased resources, queue
  pairs, namespaces, and in-flight envelopes at run end).
"""

from repro.analysis.detlint import (
    RULES,
    Finding as LintFinding,
    LintConfig,
    lint_file,
    lint_paths,
)
from repro.analysis.detlint import main as lint_main
from repro.analysis.sanitize import (
    Finding as SanitizeFinding,
    Monitor,
    SanitizeReport,
    SanitizeSession,
    attach_if_active,
    first_divergence,
    note_mutation,
    sanitized_run,
    session,
)

__all__ = [
    "RULES",
    "LintFinding",
    "LintConfig",
    "lint_file",
    "lint_paths",
    "lint_main",
    "SanitizeFinding",
    "Monitor",
    "SanitizeReport",
    "SanitizeSession",
    "attach_if_active",
    "first_divergence",
    "note_mutation",
    "sanitized_run",
    "session",
]
