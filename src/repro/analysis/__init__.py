"""repro.analysis — determinism lint + flow analysis + sanitizer suite.

Three layers enforce the repro's correctness contracts:

* :mod:`repro.analysis.detlint` — an AST-based per-file linter
  (``repro lint``, ``python -m repro.analysis``) whose DET001–DET008
  rules forbid the nondeterminism classes that would break bit-identical
  pinned-seed replays (wall clocks, unseeded RNG, float == on sim
  timestamps, order-sensitive set/dict iteration, unregistered
  coroutines, missing ``__slots__`` on hot-path classes, bare
  ``except:``, process-identity fingerprints).

* :mod:`repro.analysis.flow` — a whole-program analyzer (``repro
  flow``, ``python -m repro.analysis.flow``) that builds a project call
  graph and runs fixed-point interprocedural rules: FLOW101 transitive
  impurity taint, FLOW102 coroutine yield-discipline, FLOW103 static
  race-candidate discovery (exported to the runtime sanitizer).

* :mod:`repro.analysis.sanitize` — runtime sanitizers behind
  ``repro run <exp> --sanitize``: a determinism sanitizer (run twice,
  diff per-layer event-stream hashes), a sim-time race detector
  (same-timestamp multi-actor mutations on objects without a declared
  ``_san_tiebreak``, with FLOW103 candidates annotated as predicted),
  and a leak sanitizer (unreleased resources, queue pairs, namespaces,
  and in-flight envelopes at run end).
"""

from repro.analysis.detlint import (
    RULES,
    Finding as LintFinding,
    LintConfig,
    lint_file,
    lint_paths,
)
from repro.analysis.detlint import main as lint_main
from repro.analysis.flow import (
    FLOW_RULES,
    FlowFinding,
    RaceCandidate,
    analyze as flow_analyze,
    load_candidates,
)
from repro.analysis.flow import main as flow_main
from repro.analysis.sanitize import (
    Finding as SanitizeFinding,
    Monitor,
    SanitizeReport,
    SanitizeSession,
    attach_if_active,
    first_divergence,
    note_mutation,
    sanitized_run,
    session,
)

__all__ = [
    "RULES",
    "LintFinding",
    "LintConfig",
    "lint_file",
    "lint_paths",
    "lint_main",
    "FLOW_RULES",
    "FlowFinding",
    "RaceCandidate",
    "flow_analyze",
    "flow_main",
    "load_candidates",
    "SanitizeFinding",
    "Monitor",
    "SanitizeReport",
    "SanitizeSession",
    "attach_if_active",
    "first_divergence",
    "note_mutation",
    "sanitized_run",
    "session",
]
