"""``python -m repro.analysis [paths...]`` — run DetLint (pre-commit entry)."""

import sys

from repro.analysis.detlint import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
