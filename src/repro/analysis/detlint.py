"""DetLint: AST rules that enforce the repro's determinism contract.

Every headline number this repository reproduces (the Fig 7/8 curves,
the pinned 439-event fig7a baseline, same-seed fault replay) depends on
an unwritten contract: simulation code reads *simulated* time only,
draws randomness only from named seeded streams, never lets hash-order
leak into event scheduling, and keeps its hot-path classes allocation
lean. DetLint makes the contract machine-checked.

Rule catalog (see DESIGN.md §8 for the full semantics):

==========  ==============================================================
DET001      wall-clock read (``time.time``/``datetime.now``/...) in sim code
DET002      unseeded / module-level RNG (stdlib ``random``, ``np.random.*``)
DET003      exact float equality on simulated timestamps
DET004      iteration over an unordered ``set`` (hash-order nondeterminism)
DET005      sim coroutine / timeout created but never registered or yielded
DET006      hot-module class without ``__slots__``
DET007      bare ``except:`` (swallows Interrupt / SimulationError)
DET008      process-identity read (``os.getpid``/``uuid.uuid4``/...) in sim code
==========  ==============================================================

Suppression: append ``# detlint: ignore[DET001]`` (comma-separate for
several codes) to the offending line, or put
``# detlint: ignore-file[DET00x]`` in the first ten lines of the file.

The defaults below are tuned to this codebase; a ``[tool.detlint]``
table in ``pyproject.toml`` can override ``hot_modules`` and the
per-rule path allowlists when the tree moves.
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "LintConfig",
    "RULES",
    "WALL_CLOCK_ORIGINS",
    "PROCESS_IDENTITY_ORIGINS",
    "SEEDED_NP_FACTORIES",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "load_config",
    "parse_suppressions",
    "main",
]


@dataclass(frozen=True)
class Rule:
    """One DetLint rule: a stable code, a summary, and a fix-hint."""

    code: str
    name: str
    summary: str
    hint: str


RULES: Dict[str, Rule] = {
    rule.code: rule
    for rule in (
        Rule(
            "DET001",
            "wall-clock",
            "wall-clock read in simulation code",
            "read env.now (simulated seconds); wall time belongs only in "
            "the self-profiler and CLI reporting",
        ),
        Rule(
            "DET002",
            "unseeded-rng",
            "module-level / unseeded RNG",
            "draw from a named stream: RngHub.stream(...) in repro.sim.rng "
            "(or np.random.default_rng(seed) at a seeded boundary)",
        ),
        Rule(
            "DET003",
            "float-time-eq",
            "exact float equality on a simulated timestamp",
            "compare with a tolerance (math.isclose / abs(a-b) < eps) or "
            "restructure around event ordering",
        ),
        Rule(
            "DET004",
            "unordered-iter",
            "iteration over an unordered set",
            "wrap in sorted(...) or keep a list/dict — set order follows "
            "the hash seed, not insertion",
        ),
        Rule(
            "DET005",
            "unregistered-coroutine",
            "sim coroutine or timeout created but never driven",
            "register with env.process(...), drive with `yield from`, or "
            "yield the returned event",
        ),
        Rule(
            "DET006",
            "missing-slots",
            "hot-module class without __slots__",
            "declare __slots__ — classes on the event hot path must not "
            "carry per-instance dicts",
        ),
        Rule(
            "DET007",
            "bare-except",
            "bare `except:` around simulation code",
            "name the exception; a bare except swallows Interrupt and "
            "SimulationError and corrupts recovery paths",
        ),
        Rule(
            "DET008",
            "process-identity",
            "process-identity read in simulation code",
            "pids/uuids/urandom differ per process and per run; key state "
            "by unit index or a seeded stream — process identity belongs "
            "only in the worker-process entry points (repro.exec)",
        ),
    )
}

#: Wall-clock callables by dotted origin (module, attribute).
_WALL_CLOCK_ORIGINS: Set[Tuple[str, str]] = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("datetime.datetime", "now"),
    ("datetime.datetime", "utcnow"),
    ("datetime.datetime", "today"),
    ("datetime.date", "today"),
}

#: Process-identity callables by dotted origin (module, attribute): values
#: that differ per process / per run and must never reach sim state.
_PROCESS_IDENTITY_ORIGINS: Set[Tuple[str, str]] = {
    ("os", "getpid"),
    ("os", "getppid"),
    ("os", "urandom"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
    ("secrets", "token_bytes"),
    ("secrets", "token_hex"),
    ("secrets", "token_urlsafe"),
    ("secrets", "randbelow"),
    ("secrets", "choice"),
}

#: np.random attributes that are *seeded constructions*, not draws.
_SEEDED_NP_FACTORIES: Set[str] = {"default_rng", "Generator", "SeedSequence", "PCG64",
                                  "Philox", "BitGenerator"}

#: Names that read as simulated timestamps for DET003.
_TIME_NAME_RE = re.compile(
    r"(?:^|_)(now|deadline|timestamp|expiry|makespan|mtbf)(?:_s)?$|(?:^|_)time(?:_s)?$"
)

_SUPPRESS_RE = re.compile(r"#\s*detlint:\s*ignore\[([A-Z0-9,\s]+)\]")
_SUPPRESS_FILE_RE = re.compile(r"#\s*detlint:\s*ignore-file\[([A-Z0-9,\s]+)\]")

#: Public aliases of the sink tables so the whole-program flow analyzer
#: (:mod:`repro.analysis.flow`) shares one source of truth with DetLint.
WALL_CLOCK_ORIGINS = _WALL_CLOCK_ORIGINS
PROCESS_IDENTITY_ORIGINS = _PROCESS_IDENTITY_ORIGINS
SEEDED_NP_FACTORIES = _SEEDED_NP_FACTORIES


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    @property
    def hint(self) -> str:
        return RULES[self.code].hint

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
            f"\n    hint: {self.hint}"
        )


@dataclass
class LintConfig:
    """Codebase-tuned knobs (overridable via ``[tool.detlint]``)."""

    #: Module paths (suffix match) whose classes must declare __slots__.
    hot_modules: Tuple[str, ...] = (
        "repro/sim/engine.py",
        "repro/nvme/queues.py",
        "repro/io/envelope.py",
        "repro/tiers/base.py",
        "repro/tiers/nvm.py",
        "repro/tiers/cxl.py",
        "repro/tiers/client.py",
    )
    #: Per-rule path allowlists (suffix match): rule does not fire there.
    allow: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: {
            # The self-profiler and the sampling profiler measure the
            # *simulator's* wall cost and never feed simulated time; the
            # RNG hub is the one place seeded generators are minted; the
            # plan executors are the one sanctioned worker-process
            # boundary — their wall clocks and pids are shard
            # diagnostics that never reach any fingerprinted field (see
            # repro/exec/executors.py).
            "DET001": ("repro/obs/context.py", "repro/obs/export.py",
                       "repro/obs/sampling.py", "repro/exec/executors.py"),
            "DET002": ("repro/sim/rng.py",),
            "DET008": ("repro/exec/executors.py",),
        }
    )

    def allows(self, code: str, path: str) -> bool:
        norm = path.replace("\\", "/")
        return any(norm.endswith(suffix) for suffix in self.allow.get(code, ()))

    def is_hot_module(self, path: str) -> bool:
        norm = path.replace("\\", "/")
        return any(norm.endswith(suffix) for suffix in self.hot_modules)


def load_config(root: Optional[Path] = None) -> LintConfig:
    """Built-in defaults, overlaid with ``[tool.detlint]`` if readable."""
    config = LintConfig()
    root = root or Path.cwd()
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return config
    try:
        import tomllib  # py3.11+; older interpreters keep the defaults
    except ImportError:  # pragma: no cover - version dependent
        return config
    try:
        table = tomllib.loads(pyproject.read_text()).get("tool", {}).get("detlint", {})
    except (OSError, ValueError):  # pragma: no cover - malformed pyproject
        return config
    if "hot_modules" in table:
        config.hot_modules = tuple(table["hot_modules"])
    for code, paths in table.get("allow", {}).items():
        config.allow[code] = tuple(paths)
    return config


# ---------------------------------------------------------------------------
# suppression comments


def parse_suppressions(
    source: str, tool: str = "detlint"
) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Per-line and file-level suppressed rule codes for ``tool``.

    The grammar is shared between DetLint (``# detlint: ignore[DET001]``)
    and the flow analyzer (``# reproflow: ignore[FLOW101]``): a line-exact
    ``ignore[...]`` comment, or ``ignore-file[...]`` in the first ten
    lines.  Codes are comma-separated.
    """
    line_re = re.compile(rf"#\s*{tool}:\s*ignore\[([A-Z0-9,\s]+)\]")
    file_re = re.compile(rf"#\s*{tool}:\s*ignore-file\[([A-Z0-9,\s]+)\]")
    by_line: Dict[int, Set[str]] = {}
    whole_file: Set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = file_re.search(text)
        if match and lineno <= 10:
            whole_file.update(c.strip() for c in match.group(1).split(","))
            continue
        match = line_re.search(text)
        if match:
            by_line.setdefault(lineno, set()).update(
                c.strip() for c in match.group(1).split(",")
            )
    return by_line, whole_file


def _suppressions(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Per-line and file-level suppressed DetLint rule codes."""
    return parse_suppressions(source, tool="detlint")


# ---------------------------------------------------------------------------
# the visitor


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, config: LintConfig) -> None:
        self.path = path
        self.config = config
        self.findings: List[Finding] = []
        #: local alias -> real module ("import numpy as np" -> np: numpy)
        self.module_aliases: Dict[str, str] = {}
        #: local name -> (module, attr) for "from time import perf_counter"
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        #: bare names of generator functions defined anywhere in the module
        self.generator_names: Set[str] = set()
        #: variable names bound to set expressions, per function scope
        self._set_vars: List[Set[str]] = [set()]

    # -- plumbing -----------------------------------------------------------

    def report(self, node: ast.AST, code: str, message: str) -> None:
        if self.config.allows(code, self.path):
            return
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
            )
        )

    # -- imports ------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            for alias in node.names:
                self.from_imports[alias.asname or alias.name] = (
                    node.module,
                    alias.name,
                )
        self.generic_visit(node)

    # -- name resolution ----------------------------------------------------

    def _dotted_origin(self, node: ast.expr) -> Optional[Tuple[str, str]]:
        """Resolve a call target to its (module-ish, attr) origin."""
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name):
                module = self.module_aliases.get(base.id)
                if module is not None:
                    return module, node.attr
                origin = self.from_imports.get(base.id)
                if origin is not None:  # from datetime import datetime
                    return f"{origin[0]}.{origin[1]}", node.attr
            elif isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
                module = self.module_aliases.get(base.value.id)
                if module is not None:  # datetime.datetime.now
                    return f"{module}.{base.attr}", node.attr
        elif isinstance(node, ast.Name):
            origin = self.from_imports.get(node.id)
            if origin is not None:
                return origin
        return None

    # -- DET001 / DET002 ----------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        origin = self._dotted_origin(node.func)
        if origin is not None:
            module, attr = origin
            if (module, attr) in _WALL_CLOCK_ORIGINS or (
                module == "datetime" and attr in ("now", "utcnow")
            ):
                self.report(
                    node, "DET001",
                    f"wall-clock read `{module}.{attr}()` in simulation code",
                )
            elif module == "random":
                self.report(
                    node, "DET002",
                    f"stdlib global RNG `random.{attr}()` (hash-seeded, "
                    "shared across components)",
                )
            elif module == "numpy.random" and attr not in _SEEDED_NP_FACTORIES:
                self.report(
                    node, "DET002",
                    f"module-level numpy RNG `np.random.{attr}()` draws from "
                    "the shared global state",
                )
            elif (module, attr) in _PROCESS_IDENTITY_ORIGINS:
                self.report(
                    node, "DET008",
                    f"process-identity read `{module}.{attr}()` varies per "
                    "process and per run",
                )
        if isinstance(node.func, ast.Name) and node.func.id == "list":
            if len(node.args) == 1 and self._is_set_expr(node.args[0]):
                self.report(
                    node, "DET004",
                    "materialising a set into a list keeps hash order",
                )
        self.generic_visit(node)

    # -- DET003 -------------------------------------------------------------

    def _is_timelike(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Attribute):
            return node.attr == "now" or bool(_TIME_NAME_RE.search(node.attr))
        if isinstance(node, ast.Name):
            return bool(_TIME_NAME_RE.search(node.id))
        return False

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for a, b in ((left, right), (right, left)):
                if not self._is_timelike(a):
                    continue
                if isinstance(b, ast.Constant) and isinstance(b.value, float):
                    self.report(
                        node, "DET003",
                        "exact float comparison of a sim timestamp against "
                        f"literal {b.value!r}",
                    )
                    break
                if self._is_timelike(b):
                    self.report(
                        node, "DET003",
                        "exact float comparison between two sim timestamps",
                    )
                    break
        self.generic_visit(node)

    # -- DET004 -------------------------------------------------------------

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.Name):
            return node.id in self._set_vars[-1]
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_vars[-1].add(target.id)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self.report(
                node, "DET004",
                "iterating a set: order depends on the interpreter hash seed",
            )
        self.generic_visit(node)

    # -- DET005 -------------------------------------------------------------

    def _collect_generators(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner in ast.walk(node):
                    if isinstance(inner, (ast.Yield, ast.YieldFrom)):
                        # Owned by *this* def, not a nested one.
                        if self._owning_function(node, inner) is node:
                            self.generator_names.add(node.name)
                            break

    @staticmethod
    def _owning_function(
        candidate: ast.AST, target: ast.AST
    ) -> Optional[ast.AST]:
        owner: Optional[ast.AST] = None

        class _Find(ast.NodeVisitor):
            def __init__(self) -> None:
                self.stack: List[ast.AST] = []

            def generic_visit(self, node: ast.AST) -> None:
                is_fn = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                          ast.Lambda))
                if is_fn:
                    self.stack.append(node)
                if node is target:
                    nonlocal owner
                    owner = self.stack[-1] if self.stack else None
                super().generic_visit(node)
                if is_fn:
                    self.stack.pop()

        _Find().visit(candidate)
        return owner

    def visit_Expr(self, node: ast.Expr) -> None:
        call = node.value
        if isinstance(call, ast.Call):
            callee: Optional[str] = None
            if isinstance(call.func, ast.Name):
                callee = call.func.id
            elif isinstance(call.func, ast.Attribute):
                callee = call.func.attr
            if callee == "timeout" and isinstance(call.func, ast.Attribute):
                base = call.func.value
                if (isinstance(base, ast.Name) and base.id == "env") or (
                    isinstance(base, ast.Attribute) and base.attr == "env"
                ):
                    self.report(
                        node, "DET005",
                        "env.timeout(...) result discarded — the delay never "
                        "elapses for anyone",
                    )
            elif callee in self.generator_names:
                self.report(
                    node, "DET005",
                    f"sim coroutine `{callee}(...)` created but never "
                    "registered with the engine",
                )
        self.generic_visit(node)

    # -- DET006 / DET007 ----------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self.config.is_hot_module(self.path):
            has_slots = any(
                (
                    isinstance(stmt, ast.Assign)
                    and any(
                        isinstance(t, ast.Name) and t.id == "__slots__"
                        for t in stmt.targets
                    )
                )
                or (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "__slots__"
                )
                for stmt in node.body
            )
            slotted_dataclass = any(
                isinstance(dec, ast.Call)
                and isinstance(dec.func, ast.Name)
                and dec.func.id == "dataclass"
                and any(
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in dec.keywords
                )
                for dec in node.decorator_list
            )
            if not has_slots and not slotted_dataclass:
                self.report(
                    node, "DET006",
                    f"class `{node.name}` in a hot module lacks __slots__",
                )
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node, "DET007",
                "bare `except:` catches Interrupt/SimulationError and hides "
                "model bugs",
            )
        self.generic_visit(node)

    # Fresh set-variable scope per function.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._set_vars.append(set())
        self.generic_visit(node)
        self._set_vars.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# entry points


def lint_file(
    path: Path, config: Optional[LintConfig] = None, source: Optional[str] = None
) -> List[Finding]:
    """Lint one python file; returns surviving (unsuppressed) findings."""
    config = config or LintConfig()
    text = source if source is not None else path.read_text()
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code="DET007",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    visitor = _Visitor(str(path), config)
    visitor._collect_generators(tree)
    visitor.visit(tree)
    by_line, whole_file = _suppressions(text)
    surviving: List[Finding] = []
    for finding in visitor.findings:
        if finding.code in whole_file:
            continue
        if finding.code in by_line.get(finding.line, set()):
            continue
        surviving.append(finding)
    return surviving


def iter_python_files(paths: Sequence[str]) -> Iterable[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> List[Finding]:
    config = config or load_config()
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, config))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: ``repro lint [paths...]`` / ``python -m repro.analysis``.

    ``--format json|sarif`` renders machine-readable output through the
    shared emitters in :mod:`repro.analysis.flow.report`, so DetLint and
    ``repro flow`` annotate PRs uniformly in CI.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro lint", description="DetLint: determinism contract linter"
    )
    parser.add_argument("paths", nargs="*", default=None, metavar="PATH")
    parser.add_argument("--format", dest="fmt", default="text",
                        choices=("text", "json", "sarif"),
                        help="output format (default: text)")
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="write the formatted report to FILE "
                             "(default: stdout)")
    args = parser.parse_args(list(sys.argv[1:] if argv is None else argv))
    paths = args.paths or ["src"]
    findings = lint_paths(paths)

    if args.fmt in ("json", "sarif"):
        from repro.analysis.flow.report import emit, findings_payload, to_sarif

        if args.fmt == "sarif":
            payload = to_sarif(findings, tool_name="detlint", rules=RULES)
        else:
            payload = findings_payload(findings, tool_name="detlint")
        emitted = emit(payload, args.output)
        if args.output:
            print(f"detlint: wrote {emitted} "
                  f"({len(findings)} finding(s), {args.fmt})")
        return 1 if findings else 0

    for finding in findings:
        print(finding.render())
    if findings:
        counts: Dict[str, int] = {}
        for finding in findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        summary = ", ".join(f"{c}×{code}" for code, c in sorted(counts.items()))
        print(f"detlint: {len(findings)} finding(s) [{summary}]")
        return 1
    print(f"detlint: clean ({len(list(iter_python_files(paths)))} files)")
    return 0
