"""Whole-program flow analysis for the repro tree (``repro flow``).

Where DetLint judges one file at a time, this package builds a project
symbol table and call graph — generator delegation, ``env.process``
registration, ``functools.partial`` targets, and ``SimUnit`` import-path
entry points included — and runs fixed-point interprocedural rules:

* **FLOW101** transitive-impurity taint: a call chain reaches a
  wall-clock / unseeded-RNG / process-identity sink with no seeded
  source or allowlisted boundary in between (interprocedural
  DET001/DET002/DET008, including laundering shapes per-file analysis
  provably cannot see);
* **FLOW102** coroutine yield-discipline: sim coroutines created but
  never driven, and yields the engine will reject (call-graph-aware
  DET005, closing the one-hop indirection gap);
* **FLOW103** static race-candidate discovery: attributes mutated from
  two or more actor coroutines on classes with no ``_san_tiebreak``,
  exported for the runtime race sanitizer to prioritize.

Usage::

    repro flow [paths ...] [--format text|json|sarif] [--baseline FILE]
    python -m repro.analysis.flow src --candidates-out flow-candidates.json
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.flow.callgraph import CallGraph, build_callgraph
from repro.analysis.flow.config import FlowConfig, load_flow_config
from repro.analysis.flow.races import (
    RaceCandidate,
    analyze_races,
    load_candidates,
    write_candidates,
)
from repro.analysis.flow.report import (
    FLOW_RULES,
    FlowFinding,
    emit,
    filter_baseline,
    findings_payload,
    load_baseline,
    render_text,
    to_sarif,
    write_baseline,
)
from repro.analysis.flow.symbols import ProjectIndex
from repro.analysis.flow.taint import analyze_taint
from repro.analysis.flow.yieldcheck import analyze_yields, classify_sim_coroutines

__all__ = [
    "FLOW_RULES",
    "FlowFinding",
    "FlowConfig",
    "ProjectIndex",
    "CallGraph",
    "RaceCandidate",
    "analyze",
    "load_candidates",
    "load_flow_config",
    "main",
]


def analyze(
    paths: Sequence[str], config: Optional[FlowConfig] = None
) -> Tuple[List[FlowFinding], List[RaceCandidate]]:
    """Run all three passes; findings sorted, suppressions applied.

    The candidate list is returned unfiltered — suppressed FLOW103
    findings still ship to the runtime sanitizer.
    """
    config = config or load_flow_config()
    index = ProjectIndex.build(list(paths))
    graph = build_callgraph(index)
    coroutines = classify_sim_coroutines(index, graph)
    findings: List[FlowFinding] = []
    findings.extend(analyze_taint(index, graph, config, coroutines))
    findings.extend(analyze_yields(index, graph, coroutines))
    race_findings, candidates = analyze_races(index, graph, config)
    findings.extend(race_findings)
    findings = [f for f in findings if not _suppressed(index, config, f)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings, candidates


def _suppressed(index: ProjectIndex, config: FlowConfig, f: FlowFinding) -> bool:
    """Uniform line/file/path suppression at the *reported* location."""
    if config.allows(f.code, f.path):
        return True
    mod = index.by_path.get(f.path)
    if mod is None:
        return False
    if f.code in mod.flow_file:
        return True
    return f.code in mod.flow_line.get(f.line, set())


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro flow",
        description="whole-program determinism / coroutine / race analysis",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories"
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output", default=None, help="write the report here instead of stdout"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="known-findings file: only new findings are reported/blocking",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="record current findings as the baseline and exit 0",
    )
    parser.add_argument(
        "--candidates-out",
        default=None,
        metavar="FILE",
        help="export FLOW103 race candidates for the runtime sanitizer",
    )
    args = parser.parse_args(argv)

    config = load_flow_config()
    findings, candidates = analyze(args.paths, config)

    if args.candidates_out:
        write_candidates(args.candidates_out, candidates)

    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(
            f"repro.flow: baseline written to {args.write_baseline} "
            f"({len(findings)} finding(s))"
        )
        return 0

    if args.baseline and Path(args.baseline).is_file():
        findings = filter_baseline(findings, load_baseline(args.baseline))

    if args.fmt == "json":
        emit(findings_payload(findings, tool_name="reproflow"), args.output)
    elif args.fmt == "sarif":
        emit(
            to_sarif(findings, tool_name="reproflow", rules=FLOW_RULES),
            args.output,
        )
    else:
        text = render_text(findings)
        if args.output:
            Path(args.output).write_text(text + "\n")
        else:
            print(text)
    return 1 if findings else 0
