"""``python -m repro.analysis.flow`` — whole-program flow analyzer."""

from __future__ import annotations

import sys

from repro.analysis.flow import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
