"""Project-wide call graph with coroutine and executor edges.

Edges are resolved statically from each function body:

* plain calls — local names, ``from``-imports, module-attribute calls,
  ``self.``/``cls.`` methods via the in-project MRO, annotated
  parameters/locals (``def f(plane: DataPlane)``), constructor-inferred
  locals (``x = DataPlane(...)``), and instance attributes typed from
  ``__init__`` (``self.plane.submit(...)``);
* ``functools.partial(fn, ...)`` — an edge to the partial's target;
* ``yield from gen(...)`` — a *driving* edge (sub-coroutine delegation);
* ``env.process(gen(...))`` — a driving edge that also marks ``gen`` as
  a sim-coroutine root (any receiver whose method is named ``process``
  with a single argument counts: the engine's registration surface);
* ``SimUnit(..., fn="module:function")`` — an executor entry-point edge
  through the import-path string (recognized by class name, so plans
  are linked even when ``repro`` itself is outside the analyzed tree).

Attribute calls that resolve no other way fall back to *duck* edges
when exactly one project class defines the method name.  Duck edges are
marked so precision-critical passes (FLOW101 taint) can ignore them
while reachability passes (FLOW103 race candidates) use them.

External calls (targets outside the analyzed tree) are kept per caller
with their dotted origin — that is what the taint pass matches against
the DetLint sink tables — and flagged ``laundered`` when the resolution
went through a module-level binding or ``partial``, i.e. shapes that
per-file DetLint provably cannot see.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.flow.symbols import FunctionInfo, ModuleInfo, ProjectIndex

__all__ = ["Edge", "ExternalCall", "FunctionFacts", "CallGraph", "build_callgraph"]

#: Attribute-call names that never get duck edges: too common to pin on
#: a single class without type evidence.
_DUCK_STOPLIST = frozenset({
    "get", "set", "add", "put", "pop", "run", "read", "write", "open",
    "close", "send", "recv", "items", "keys", "values", "append", "remove",
    "update", "copy", "join", "split", "strip", "format", "show", "render",
    "start", "stop", "next", "clear", "insert", "extend", "sort", "count",
    "index", "encode", "decode", "submit", "flush",
})

#: Container-mutating method names the race pass treats as attribute writes.
MUTATOR_METHODS = frozenset({
    "append", "add", "remove", "pop", "popleft", "appendleft", "extend",
    "update", "clear", "insert", "discard", "setdefault",
})


@dataclass(frozen=True)
class Edge:
    """One call edge: caller qualname -> callee qualname."""

    caller: str
    callee: str
    kind: str  # call | ctor | partial | yield_from | process | simunit | yield | duck
    lineno: int


@dataclass(frozen=True)
class ExternalCall:
    """A resolved call whose target lives outside the analyzed tree."""

    caller: str
    module: str
    attr: str
    lineno: int
    col: int
    #: True when resolution crossed a module-level binding or a partial —
    #: the laundering shapes invisible to DetLint's per-file resolver.
    laundered: bool


@dataclass
class FunctionFacts:
    """Per-function observations the rule passes consume."""

    qualname: str
    #: expression-statement calls whose value is discarded
    discards: List[Tuple[Optional[str], int]] = field(default_factory=list)
    #: every ``yield <expr>`` in this function: (value node or None, line)
    yields: List[Tuple[Optional[ast.expr], int]] = field(default_factory=list)
    #: local var -> (generator qualname, line) for ``p = worker(env)``
    coro_vars: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    #: local names read anywhere after being bound (usage analysis)
    used_names: Set[str] = field(default_factory=set)
    #: attribute writes: (class qualname, attr, line)
    attr_writes: List[Tuple[str, str, int]] = field(default_factory=list)
    #: return statements returning a resolved project call: qualnames
    returns_calls: List[str] = field(default_factory=list)


class CallGraph:
    """Edges, reverse edges, externals, and registration facts."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.edges: Dict[str, List[Edge]] = {}
        self.reverse: Dict[str, List[Edge]] = {}
        self.external: Dict[str, List[ExternalCall]] = {}
        self.facts: Dict[str, FunctionFacts] = {}
        #: generator qualnames registered through ``.process(...)``,
        #: mapped to True when any registration site sits inside a loop
        #: (multiple coroutine instances of the same function).
        self.process_roots: Dict[str, bool] = {}
        #: functions named as ``SimUnit(fn="module:function")`` entry points
        self.entry_points: Set[str] = set()

    def add_edge(self, edge: Edge) -> None:
        self.edges.setdefault(edge.caller, []).append(edge)
        self.reverse.setdefault(edge.callee, []).append(edge)

    def callees(self, qualname: str) -> List[Edge]:
        return self.edges.get(qualname, [])

    def callers(self, qualname: str) -> List[Edge]:
        return self.reverse.get(qualname, [])

    def yield_call_target(self, caller: str, lineno: int) -> Optional[str]:
        """Callee of a ``yield <call>`` edge at this line, if resolved."""
        for edge in self.callees(caller):
            if edge.kind == "yield" and edge.lineno == lineno:
                return edge.callee
        return None


def build_callgraph(index: ProjectIndex) -> CallGraph:
    graph = CallGraph(index)
    for info in index.functions.values():
        _FunctionWalker(index, graph, info).walk()
    return graph


class _FunctionWalker:
    """Resolve every call inside one function body."""

    def __init__(
        self, index: ProjectIndex, graph: CallGraph, fn: FunctionInfo
    ) -> None:
        self.index = index
        self.graph = graph
        self.fn = fn
        self.mod: ModuleInfo = index.modules[fn.module]
        self.facts = FunctionFacts(qualname=fn.qualname)
        graph.facts[fn.qualname] = self.facts
        #: local name -> project class qualname (annotations + constructors)
        self.var_types: Dict[str, str] = {}
        #: local name -> nested function qualname
        self.local_fns: Dict[str, str] = {}
        self._collect_signature_types()

    # -- setup --------------------------------------------------------------

    def _collect_signature_types(self) -> None:
        node = self.fn.node
        args = getattr(node, "args", None)
        if args is None:
            return
        all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        if args.vararg:
            all_args.append(args.vararg)
        if args.kwarg:
            all_args.append(args.kwarg)
        for arg in all_args:
            if arg.annotation is not None:
                resolved = self.index.resolve_annotation(self.mod, arg.annotation)
                if resolved is not None:
                    self.var_types[arg.arg] = resolved
        if self.fn.cls is not None and all_args:
            self.var_types.setdefault(all_args[0].arg, self.fn.cls)

    # -- traversal ----------------------------------------------------------

    def walk(self) -> None:
        for stmt in getattr(self.fn.node, "body", []):
            self._walk(stmt)

    def _walk(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs are separate graph nodes; remember the local name.
            self.local_fns[node.name] = f"{self.fn.qualname}.{node.name}"
            return
        if isinstance(node, ast.ClassDef):
            return
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            callee = self._resolve_call(node.value)
            self.facts.discards.append((callee, node.lineno))
            self._walk_children(node.value)
            return
        if isinstance(node, ast.Assign):
            self._note_assign(node)
        elif isinstance(node, ast.AnnAssign):
            self._note_annassign(node)
        elif isinstance(node, ast.AugAssign):
            self._note_attr_write(node.target, node.lineno)
        elif isinstance(node, ast.Return) and node.value is not None:
            if isinstance(node.value, ast.Call):
                callee = self._resolve_call(node.value)
                if callee is not None:
                    self.facts.returns_calls.append(callee)
                self._walk_children(node.value)
                return
        elif isinstance(node, ast.YieldFrom):
            if isinstance(node.value, ast.Call):
                self._resolve_call(node.value, kind="yield_from")
                self._walk_children(node.value)
                return
        elif isinstance(node, ast.Yield):
            self.facts.yields.append((node.value, node.lineno))
            if isinstance(node.value, ast.Call):
                self._resolve_call(node.value, kind="yield")
                self._walk_children(node.value)
                return
        elif isinstance(node, ast.Call):
            self._resolve_call(node)
            self._walk_children(node)
            return
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            self.facts.used_names.add(node.id)
        self._walk_children(node)

    def _walk_children(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            self._walk(child)

    # -- assignments --------------------------------------------------------

    def _note_assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note_attr_write(target, node.lineno)
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return
        name = node.targets[0].id
        value = node.value
        if isinstance(value, ast.Call):
            ctor = self.index.resolve_class_of_call(self.mod, value.func)
            if ctor is not None:
                self.var_types[name] = ctor
                return
            callee = self._peek_callee(value)
            if callee is not None:
                info = self.index.functions.get(callee)
                if info is not None and info.is_generator:
                    self.facts.coro_vars[name] = (callee, node.lineno)

    def _note_annassign(self, node: ast.AnnAssign) -> None:
        self._note_attr_write(node.target, node.lineno)
        if isinstance(node.target, ast.Name):
            resolved = self.index.resolve_annotation(self.mod, node.annotation)
            if resolved is not None:
                self.var_types[node.target.id] = resolved

    def _note_attr_write(self, target: ast.expr, lineno: int) -> None:
        """Record ``<recv>.attr = ...`` when the receiver class is known."""
        if not isinstance(target, ast.Attribute):
            return
        cls = self._receiver_class(target.value)
        if cls is not None:
            self.facts.attr_writes.append((cls, target.attr, lineno))

    def _receiver_class(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self.var_types.get(node.id)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in self.var_types
        ):
            owner = self.index.classes.get(self.var_types[node.value.id])
            if owner is not None:
                return owner.attr_types.get(node.attr)
        return None

    # -- call resolution ----------------------------------------------------

    def _peek_callee(self, call: ast.Call) -> Optional[str]:
        """Resolve a call target without recording an edge (lookahead)."""
        return self._resolve_target(call.func)

    def _resolve_call(self, call: ast.Call, kind: str = "call") -> Optional[str]:
        """Resolve, record the edge/external, and return the callee qualname."""
        func = call.func
        lineno = call.lineno
        # ``self.items.append(x)`` — a container mutation of attribute
        # ``items`` on the receiver's class (consumed by the race pass).
        if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
            inner = func.value
            if isinstance(inner, ast.Attribute):
                cls = self._receiver_class(inner.value)
                if cls is not None:
                    self.facts.attr_writes.append((cls, inner.attr, lineno))
        # functools.partial(fn, ...): edge to the partial's target.
        if self._is_partial(func) and call.args:
            target = self._resolve_reference(call.args[0])
            if target is not None:
                project, origin = target
                if project is not None:
                    self.graph.add_edge(
                        Edge(self.fn.qualname, project, "partial", lineno))
                elif origin is not None:
                    self._note_external(origin, lineno, call, laundered=True)
            return None
        # SimUnit(..., fn="module:function"): executor entry-point edge.
        if self._is_simunit(func):
            self._note_simunit(call)
        # env.process(gen(...)): registration surface — driving edge + root.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "process"
            and len(call.args) == 1
        ):
            self._note_process(call.args[0], lineno)
        callee = self._resolve_target(func)
        if callee is not None:
            self.graph.add_edge(Edge(self.fn.qualname, callee, kind, lineno))
            return callee
        external = self._resolve_external(func)
        if external is not None:
            origin, laundered = external
            self._note_external(origin, lineno, call, laundered=laundered)
            return None
        # Duck fallback: unique project method name (reachability only).
        if isinstance(func, ast.Attribute) and func.attr not in _DUCK_STOPLIST:
            owners = self.index.method_index.get(func.attr, [])
            if len(owners) == 1:
                method = self.index.classes[owners[0]].methods[func.attr]
                self.graph.add_edge(
                    Edge(self.fn.qualname, method, "duck", lineno))
                return method
        return None

    def _note_external(
        self,
        origin: Tuple[str, str],
        lineno: int,
        call: ast.Call,
        laundered: bool,
    ) -> None:
        self.graph.external.setdefault(self.fn.qualname, []).append(
            ExternalCall(
                caller=self.fn.qualname,
                module=origin[0],
                attr=origin[1],
                lineno=lineno,
                col=call.col_offset + 1,
                laundered=laundered,
            )
        )

    def _note_process(self, arg: ast.expr, lineno: int) -> None:
        target: Optional[str] = None
        if isinstance(arg, ast.Call):
            target = self._peek_callee(arg)
        elif isinstance(arg, ast.Name) and arg.id in self.facts.coro_vars:
            target = self.facts.coro_vars[arg.id][0]
            # Registered: the variable counts as used/driven.
            self.facts.used_names.add(arg.id)
        if target is None:
            return
        info = self.index.functions.get(target)
        if info is None or not info.is_generator:
            return
        self.graph.add_edge(Edge(self.fn.qualname, target, "process", lineno))
        in_loop = self._inside_loop(lineno)
        prior = self.graph.process_roots.get(target, False)
        seen_before = target in self.graph.process_roots
        self.graph.process_roots[target] = prior or in_loop or seen_before

    def _inside_loop(self, lineno: int) -> bool:
        """True when ``lineno`` falls inside a for/while of this function."""
        for node in ast.walk(self.fn.node):
            if isinstance(node, (ast.For, ast.While, ast.AsyncFor)):
                end = getattr(node, "end_lineno", node.lineno)
                if node.lineno < lineno <= (end or node.lineno):
                    return True
        return False

    def _note_simunit(self, call: ast.Call) -> None:
        spec: Optional[str] = None
        for kw in call.keywords:
            if kw.arg == "fn" and isinstance(kw.value, ast.Constant):
                if isinstance(kw.value.value, str):
                    spec = kw.value.value
        if spec is None and len(call.args) >= 3:
            third = call.args[2]
            if isinstance(third, ast.Constant) and isinstance(third.value, str):
                spec = third.value
        if spec is None or ":" not in spec:
            return
        module, _, attr = spec.partition(":")
        target_mod = self.index.modules.get(module)
        if target_mod is None:
            return
        qualname = target_mod.functions.get(attr)
        if qualname is None:
            return
        self.graph.entry_points.add(qualname)
        self.graph.add_edge(
            Edge(self.fn.qualname, qualname, "simunit", call.lineno))

    def _is_partial(self, func: ast.expr) -> bool:
        if isinstance(func, ast.Name):
            origin = self.mod.from_imports.get(func.id)
            return origin == ("functools", "partial")
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            module = self.mod.import_aliases.get(func.value.id)
            return module == "functools" and func.attr == "partial"
        return False

    def _is_simunit(self, func: ast.expr) -> bool:
        if isinstance(func, ast.Name):
            if func.id == "SimUnit":
                return True
            origin = self.mod.from_imports.get(func.id)
            return origin is not None and origin[1] == "SimUnit"
        return isinstance(func, ast.Attribute) and func.attr == "SimUnit"

    def _resolve_reference(
        self, node: ast.expr
    ) -> Optional[Tuple[Optional[str], Optional[Tuple[str, str]]]]:
        """Resolve a *reference* (not a call): project fn or external origin."""
        project = self._resolve_target(node)
        if project is not None:
            return project, None
        external = self._resolve_external(node)
        if external is not None:
            return None, external[0]
        return None

    def _resolve_target(self, func: ast.expr) -> Optional[str]:
        """Project function/method qualname for a call target, if any."""
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.local_fns:
                return self.local_fns[name]
            if name in self.mod.functions:
                return self.mod.functions[name]
            if name in self.mod.local_bindings:
                return self.mod.local_bindings[name]
            if name in self.mod.classes:
                return self._ctor(self.mod.classes[name])
            origin = self.mod.from_imports.get(name)
            if origin is not None:
                return self._resolve_in_module(origin[0], origin[1])
            return None
        if isinstance(func, ast.Attribute):
            value = func.value
            attr = func.attr
            # module.attr / package.module.attr
            module = self._module_path(value)
            if module is not None and module in self.index.modules:
                return self._resolve_in_module(module, attr)
            # receiver with a known class: self, cls, annotated/ctor locals
            cls = self._receiver_class(value)
            if cls is not None:
                return self.index.resolve_method(cls, attr)
            # ClassName.method (static/unbound)
            as_class = self.index.resolve_class_of_call(self.mod, value)
            if as_class is not None:
                return self.index.resolve_method(as_class, attr)
        return None

    def _ctor(self, class_qualname: str) -> Optional[str]:
        return self.index.resolve_method(class_qualname, "__init__")

    def _resolve_in_module(self, module: str, attr: str) -> Optional[str]:
        target = self.index.modules.get(module)
        if target is None:
            return None
        if attr in target.functions:
            return target.functions[attr]
        if attr in target.local_bindings:
            return target.local_bindings[attr]
        if attr in target.classes:
            return self._ctor(target.classes[attr])
        return None

    def _module_path(self, node: ast.expr) -> Optional[str]:
        """Dotted module named by an expression (``np.random`` etc.)."""
        if isinstance(node, ast.Name):
            module = self.mod.import_aliases.get(node.id)
            if module is not None:
                return module
            origin = self.mod.from_imports.get(node.id)
            if origin is not None:
                candidate = f"{origin[0]}.{origin[1]}"
                if candidate in self.index.modules:
                    return candidate
                # ``from datetime import datetime`` — dotted external path.
                if origin[0] not in self.index.modules:
                    return candidate
            return None
        if isinstance(node, ast.Attribute):
            base = self._module_path(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None

    def _resolve_external(
        self, func: ast.expr
    ) -> Optional[Tuple[Tuple[str, str], bool]]:
        """(module, attr) origin of an out-of-tree call target.

        The second element is True when resolution crossed a
        module-level binding — the laundered shape DetLint misses.
        """
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.mod.bindings:
                return self.mod.bindings[name], True
            origin = self.mod.from_imports.get(name)
            if origin is not None and origin[0] not in self.index.modules:
                return origin, False
            if origin is not None:
                # from a project module: maybe a re-exported binding
                target = self.index.modules.get(origin[0])
                if target is not None and origin[1] in target.bindings:
                    return target.bindings[origin[1]], True
            return None
        if isinstance(func, ast.Attribute):
            module = self._module_path(func.value)
            if module is not None and module not in self.index.modules:
                head = module.split(".", 1)[0]
                if head not in self.index.modules:
                    return (module, func.attr), False
        return None
