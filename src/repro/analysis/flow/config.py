"""Flow-analyzer configuration: ``[tool.reproflow]`` overlay.

The flow analyzer shares DetLint's vocabulary end to end: the same sink
tables, the same per-rule path allowlists (a file allowlisted for
DET001/DET002/DET008 *sanctions* its sinks, so no taint originates
there), and the same suppression grammar with the ``reproflow:`` tag.
``[tool.reproflow]`` adds flow-specific path allowlists per FLOW rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.analysis.detlint import LintConfig
from repro.analysis.detlint import load_config as load_lint_config

__all__ = ["FlowConfig", "load_flow_config"]


#: Built-in per-FLOW-rule path allowlists, mirrored in ``[tool.reproflow]``
#: (the pyproject overlay needs tomllib, so defaults must stand alone on
#: older interpreters).  The engine's Event/Environment mutation *is* the
#: global ordering mechanism, and the sanitizer's Monitor is observer
#: bookkeeping — FLOW103 contention reports there are self-referential.
_DEFAULT_ALLOW: Dict[str, Tuple[str, ...]] = {
    "FLOW103": ("repro/sim/engine.py", "repro/analysis/sanitize.py"),
}


@dataclass
class FlowConfig:
    """Knobs for the whole-program analyzer (``[tool.reproflow]``)."""

    #: Per-FLOW-rule path allowlists (suffix match): rule silent there.
    allow: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(_DEFAULT_ALLOW)
    )
    #: DetLint config supplying sink sanctioning (per-DET allowlists).
    lint: LintConfig = field(default_factory=LintConfig)

    def allows(self, code: str, path: str) -> bool:
        norm = path.replace("\\", "/")
        return any(norm.endswith(suffix) for suffix in self.allow.get(code, ()))


def load_flow_config(root: Optional[Path] = None) -> FlowConfig:
    """Defaults overlaid with ``[tool.reproflow]`` (and ``[tool.detlint]``)."""
    root = root or Path.cwd()
    config = FlowConfig(lint=load_lint_config(root))
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return config
    try:
        import tomllib  # py3.11+; older interpreters keep the defaults
    except ImportError:  # pragma: no cover - version dependent
        return config
    try:
        table = tomllib.loads(pyproject.read_text()).get("tool", {}).get(
            "reproflow", {})
    except (OSError, ValueError):  # pragma: no cover - malformed pyproject
        return config
    for code, paths in table.get("allow", {}).items():
        config.allow[code] = tuple(paths)
    return config
