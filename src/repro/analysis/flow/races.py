"""FLOW103: static race-candidate discovery.

The runtime race sanitizer (``repro.analysis.sanitize``) observes
same-timestamp mutations of shared objects and reports classes that
mutate without a declared ``_san_tiebreak`` ordering contract.  That
only covers workloads you actually run.  This pass finds the same shape
statically: an attribute mutated by code reachable from **two or more
distinct actor coroutines** (process-registered generators), or from a
single actor registered inside a loop (many instances of one function),
on a class whose in-project MRO declares no ``_san_tiebreak``.

Reachability here deliberately uses *every* edge kind, duck-typed
fallbacks included — a candidate list wants recall, and the runtime
sanitizer is the precision filter: candidates are exported as JSON
(``--candidates-out``) and matched against observed mutation labels so
statically predicted races are flagged as such when they fire.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Set, Tuple

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.config import FlowConfig
from repro.analysis.flow.report import FlowFinding
from repro.analysis.flow.symbols import ProjectIndex

__all__ = ["RaceCandidate", "analyze_races", "write_candidates", "load_candidates"]

#: Constructor-phase methods whose writes are setup, not contention.
_CTOR_METHODS = frozenset({"__init__", "__post_init__", "__new__", "__set_name__"})


@dataclass(frozen=True)
class RaceCandidate:
    """One statically discovered shared-mutation site set."""

    class_qualname: str
    attr: str
    actors: Tuple[str, ...]  # actor-root qualnames reaching a write
    sites: Tuple[Tuple[str, int], ...]  # (path, line) of each write
    multi_instance: bool  # single root registered in a loop


def _reachable(graph: CallGraph, root: str) -> Set[str]:
    seen = {root}
    stack = [root]
    while stack:
        current = stack.pop()
        for edge in graph.callees(current):
            if edge.callee not in seen:
                seen.add(edge.callee)
                stack.append(edge.callee)
    return seen


def discover_candidates(
    index: ProjectIndex, graph: CallGraph
) -> List[RaceCandidate]:
    """All (class, attr) pairs contended by distinct actors, sorted."""
    reach: Dict[str, Set[str]] = {
        root: _reachable(graph, root) for root in graph.process_roots
    }
    # (class, attr) -> {actor roots}, write sites
    actors: Dict[Tuple[str, str], Set[str]] = {}
    sites: Dict[Tuple[str, str], Set[Tuple[str, int]]] = {}
    for qualname, facts in graph.facts.items():
        if not facts.attr_writes:
            continue
        info = index.functions[qualname]
        if info.name in _CTOR_METHODS:
            continue
        writers = [root for root, cone in reach.items() if qualname in cone]
        if not writers:
            continue
        for cls, attr, line in facts.attr_writes:
            if cls not in index.classes or index.has_tiebreak(cls):
                continue
            key = (cls, attr)
            actors.setdefault(key, set()).update(writers)
            sites.setdefault(key, set()).add((info.path, line))
    candidates: List[RaceCandidate] = []
    for (cls, attr), roots in sorted(actors.items()):
        multi = any(graph.process_roots.get(root, False) for root in roots)
        if len(roots) < 2 and not multi:
            continue
        candidates.append(
            RaceCandidate(
                class_qualname=cls,
                attr=attr,
                actors=tuple(sorted(roots)),
                sites=tuple(sorted(sites[(cls, attr)])),
                multi_instance=multi and len(roots) == 1,
            )
        )
    return candidates


def analyze_races(
    index: ProjectIndex, graph: CallGraph, config: FlowConfig
) -> Tuple[List[FlowFinding], List[RaceCandidate]]:
    """Findings (suppressions applied) plus the *full* candidate list.

    Suppressing a FLOW103 finding silences the blocking report but the
    candidate still ships to the runtime sanitizer — a suppression says
    "reviewed, not blocking", not "stop watching".
    """
    candidates = discover_candidates(index, graph)
    findings: List[FlowFinding] = []
    for cand in candidates:
        cls = index.classes[cand.class_qualname]
        mod = index.modules[cls.module]
        if config.allows("FLOW103", cls.path):
            continue
        if "FLOW103" in mod.flow_file:
            continue
        if "FLOW103" in mod.flow_line.get(cls.lineno, set()):
            continue
        if _site_suppressed(index, cand):
            continue
        if cand.multi_instance:
            detail = (
                f"mutated by `{cand.actors[0].rsplit('.', 1)[-1]}` "
                "registered multiple times (loop registration)"
            )
        else:
            names = ", ".join(a.rsplit(".", 1)[-1] for a in cand.actors)
            detail = f"mutated from {len(cand.actors)} actor coroutines ({names})"
        findings.append(
            FlowFinding(
                path=cls.path,
                line=cls.lineno,
                col=1,
                code="FLOW103",
                symbol=cand.class_qualname,
                message=(
                    f"`{cls.qualname.rsplit('.', 1)[-1]}.{cand.attr}` "
                    f"{detail} but the class declares no `_san_tiebreak`"
                ),
                chain=cand.actors,
            )
        )
    return findings, candidates


def _site_suppressed(index: ProjectIndex, cand: RaceCandidate) -> bool:
    """True when *every* write site carries a FLOW103 line suppression."""
    for path, line in cand.sites:
        mod = index.by_path.get(path)
        if mod is None or "FLOW103" not in mod.flow_line.get(line, set()):
            return False
    return True


# ---------------------------------------------------------------------------
# candidate handoff to the runtime sanitizer


def write_candidates(path: str, candidates: List[RaceCandidate]) -> str:
    payload = {
        "version": 1,
        "tool": "reproflow",
        "candidates": [
            {
                "class": cand.class_qualname,
                "attr": cand.attr,
                "actors": list(cand.actors),
                "sites": [{"path": p, "line": ln} for p, ln in cand.sites],
                "multi_instance": cand.multi_instance,
            }
            for cand in candidates
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_candidates(path: str) -> Dict[str, Set[str]]:
    """class qualname -> contended attrs; empty dict when absent/invalid."""
    file = Path(path)
    if not file.is_file():
        return {}
    try:
        data = json.loads(file.read_text())
    except (OSError, ValueError):
        return {}
    out: Dict[str, Set[str]] = {}
    for item in data.get("candidates", []):
        cls = item.get("class")
        attr = item.get("attr")
        if isinstance(cls, str) and isinstance(attr, str):
            out.setdefault(cls, set()).add(attr)
    return out
