"""Flow findings, output formats, and the diff-aware baseline.

The JSON and SARIF emitters here are shared with DetLint (``repro lint
--format json|sarif``): both tools' findings carry ``path``/``line``/
``col``/``code``/``message``, and both rule catalogs use the same
:class:`~repro.analysis.detlint.Rule` shape, so CI annotates PRs
uniformly whichever analyzer produced the report.

Baselines make the analyzer adoptable on a tree with known findings:
``--write-baseline`` records a fingerprint multiset (rule, file, symbol
— deliberately *not* line numbers, so unrelated edits don't churn it),
and ``--baseline`` filters those out so only **new** violations block.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.detlint import Rule

__all__ = [
    "FLOW_RULES",
    "FlowFinding",
    "render_text",
    "findings_payload",
    "to_sarif",
    "emit",
    "fingerprint",
    "write_baseline",
    "load_baseline",
    "filter_baseline",
]


FLOW_RULES: Dict[str, Rule] = {
    rule.code: rule
    for rule in (
        Rule(
            "FLOW101",
            "transitive-impurity",
            "call chain reaches a wall-clock/RNG/process-identity sink",
            "thread a seeded stream (repro.sim.rng.RngHub) through the "
            "chain, or absorb the impurity at an allowlisted boundary — "
            "sim results must be a pure function of the seed",
        ),
        Rule(
            "FLOW102",
            "yield-discipline",
            "sim coroutine created but never driven, or yields a non-event",
            "drive sub-coroutines with `yield from`, register roots with "
            "env.process(...), and yield only Events — the engine fails "
            "non-event yields at runtime, after the schedule already "
            "diverged",
        ),
        Rule(
            "FLOW103",
            "race-candidate",
            "attribute mutated from multiple sim coroutines with no "
            "declared tie-break",
            "declare `_san_tiebreak` on the class if same-timestamp "
            "ordering is disciplined (e.g. FIFO), or serialize the "
            "writers; the runtime race sanitizer prioritizes these "
            "candidates",
        ),
    )
}


@dataclass(frozen=True)
class FlowFinding:
    """One interprocedural finding at a source location."""

    path: str
    line: int
    col: int
    code: str
    symbol: str  # function/class qualname the finding is about
    message: str
    chain: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def hint(self) -> str:
        return FLOW_RULES[self.code].hint

    def render(self) -> str:
        text = (
            f"{self.path}:{self.line}:{self.col}: {self.code} "
            f"[{self.symbol}] {self.message}"
        )
        if self.chain:
            text += f"\n    chain: {' -> '.join(self.chain)}"
        return text + f"\n    hint: {self.hint}"


def render_text(findings: Sequence[FlowFinding]) -> str:
    lines = [f.render() for f in findings]
    if findings:
        counts: Dict[str, int] = {}
        for finding in findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        summary = ", ".join(f"{c}×{code}" for code, c in sorted(counts.items()))
        lines.append(f"repro.flow: {len(findings)} finding(s) [{summary}]")
    else:
        lines.append("repro.flow: clean")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# machine-readable formats (shared with DetLint)


def findings_payload(findings: Sequence[Any], tool_name: str) -> Dict[str, Any]:
    """Plain-JSON report: one object per finding, stable field names."""
    items: List[Dict[str, Any]] = []
    for f in findings:
        item: Dict[str, Any] = {
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "code": f.code,
            "message": f.message,
        }
        symbol = getattr(f, "symbol", None)
        if symbol:
            item["symbol"] = symbol
        chain = getattr(f, "chain", None)
        if chain:
            item["chain"] = list(chain)
        items.append(item)
    return {"tool": tool_name, "findings": items, "count": len(items)}


def to_sarif(
    findings: Sequence[Any],
    tool_name: str,
    rules: Mapping[str, Rule],
    version: str = "1.0.0",
) -> Dict[str, Any]:
    """SARIF 2.1.0 document for GitHub code-scanning upload."""
    used = sorted({f.code for f in findings} | set(rules))
    rule_objs = [
        {
            "id": code,
            "name": rules[code].name if code in rules else code,
            "shortDescription": {
                "text": rules[code].summary if code in rules else code
            },
            "help": {"text": rules[code].hint if code in rules else ""},
            "defaultConfiguration": {"level": "error"},
        }
        for code in used
    ]
    results = []
    for f in findings:
        message = f.message
        chain = getattr(f, "chain", None)
        if chain:
            message += f" (chain: {' -> '.join(chain)})"
        results.append(
            {
                "ruleId": f.code,
                "level": "error",
                "message": {"text": message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": str(f.path).replace("\\", "/"),
                            },
                            "region": {
                                "startLine": max(1, int(f.line)),
                                "startColumn": max(1, int(f.col)),
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": version,
                        "informationUri": "https://github.com/",
                        "rules": rule_objs,
                    }
                },
                "results": results,
            }
        ],
    }


def emit(payload: Dict[str, Any], output: Optional[str] = None) -> str:
    """Serialize ``payload``; write to ``output`` or stdout. Returns path/text."""
    text = json.dumps(payload, indent=2, sort_keys=False)
    if output:
        Path(output).write_text(text + "\n")
        return output
    print(text)
    return text


# ---------------------------------------------------------------------------
# baseline (diff-aware adoption)


def fingerprint(finding: FlowFinding) -> str:
    """Stable identity of a finding across unrelated edits.

    Line numbers are excluded on purpose: moving code above a known
    violation must not make it look new.  Two identical violations in
    the same symbol share a fingerprint — the baseline stores counts, so
    *adding* a second one still blocks.
    """
    norm = finding.path.replace("\\", "/")
    body = f"{finding.code}|{norm}|{finding.symbol}"
    return hashlib.sha256(body.encode()).hexdigest()[:20]


def write_baseline(path: str, findings: Sequence[FlowFinding]) -> str:
    counts: Dict[str, int] = {}
    for finding in findings:
        key = fingerprint(finding)
        counts[key] = counts.get(key, 0) + 1
    payload = {
        "version": 1,
        "tool": "reproflow",
        "findings": {key: counts[key] for key in sorted(counts)},
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_baseline(path: str) -> Dict[str, int]:
    data = json.loads(Path(path).read_text())
    findings = data.get("findings", {})
    return {str(k): int(v) for k, v in findings.items()}


def filter_baseline(
    findings: Iterable[FlowFinding], baseline: Mapping[str, int]
) -> List[FlowFinding]:
    """Only findings *beyond* the baselined count for their fingerprint."""
    budget = dict(baseline)
    fresh: List[FlowFinding] = []
    for finding in findings:
        key = fingerprint(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            continue
        fresh.append(finding)
    return fresh
