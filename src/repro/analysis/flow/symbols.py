"""Project-wide symbol table for the whole-program flow analyzer.

One :class:`ProjectIndex` holds every module in the analyzed tree,
parsed once: functions and methods under stable dotted qualnames
(``repro.sim.engine.Environment.process``), classes with their
in-project base resolution and instance-attribute types, per-module
import maps, and — the piece per-file DetLint structurally lacks —
*module-level bindings* (``_draw = random.random``) that launder an
impure callable behind a plain name.

Module names are derived from the filesystem: a file's dotted name is
built by walking parent directories while they contain ``__init__.py``
(so ``src/repro/sim/engine.py`` becomes ``repro.sim.engine`` without
importing anything).  Loose files (the violation corpus) get their stem
as module name, which lets fixture modules import each other by stem.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.detlint import iter_python_files, parse_suppressions

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProjectIndex",
    "module_name_for",
]


def module_name_for(path: Path) -> str:
    """Dotted module name from the package structure on disk."""
    parts: List[str] = []
    stem = path.stem
    if stem != "__init__":
        parts.append(stem)
    directory = path.resolve().parent
    while (directory / "__init__.py").is_file():
        parts.insert(0, directory.name)
        directory = directory.parent
    return ".".join(parts) if parts else stem


@dataclass
class FunctionInfo:
    """One function or method, keyed by its project-wide qualname."""

    qualname: str
    module: str
    path: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    lineno: int
    cls: Optional[str] = None  # enclosing class qualname, if a method
    is_generator: bool = False

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ClassInfo:
    """One class: methods, resolved project bases, and attribute types."""

    qualname: str
    module: str
    path: str
    node: ast.ClassDef
    lineno: int
    bases: List[str] = field(default_factory=list)  # project qualnames or raw
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fn qualname
    has_tiebreak_local: bool = False
    #: ``self.<attr>`` -> project class qualname, inferred from ``__init__``
    #: assignments (``self.plane = DataPlane(...)``) and annotations.
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module plus its name-resolution environment."""

    name: str
    path: str
    tree: ast.Module
    source: str
    #: local alias -> imported module ("import numpy as np" -> np: numpy)
    import_aliases: Dict[str, str] = field(default_factory=dict)
    #: local name -> (module, attr) ("from time import perf_counter")
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: module-level ``name = mod.attr`` bindings to *external* callables —
    #: the laundering shape DetLint's call-site resolver cannot see.
    bindings: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: module-level ``alias = local_function`` re-bindings (project symbols)
    local_bindings: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, str] = field(default_factory=dict)  # top-level name -> qualname
    classes: Dict[str, str] = field(default_factory=dict)  # local name -> qualname
    #: detlint + reproflow suppressions: {line: codes}, file-wide codes
    det_line: Dict[int, Set[str]] = field(default_factory=dict)
    det_file: Set[str] = field(default_factory=set)
    flow_line: Dict[int, Set[str]] = field(default_factory=dict)
    flow_file: Set[str] = field(default_factory=set)

    def resolve_relative(self, level: int, module: Optional[str]) -> Optional[str]:
        """Absolute module name for a ``from ...x import y`` statement."""
        if level == 0:
            return module
        parts = self.name.split(".")
        # level 1 = current package (drop the module's own leaf name).
        if len(parts) < level:
            return module
        base = parts[:-level]
        if module:
            base.append(module)
        return ".".join(base) if base else None


class ProjectIndex:
    """Every module, function, and class in the analyzed tree."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: method name -> class qualnames that *define* it (duck resolution)
        self.method_index: Dict[str, List[str]] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, paths: Sequence[str]) -> "ProjectIndex":
        index = cls()
        for path in iter_python_files(paths):
            index._add_file(path)
        for info in list(index.classes.values()):
            index._infer_attr_types(info)
        return index

    def _add_file(self, path: Path) -> None:
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            return  # unparsable files are DetLint's problem, not ours
        name = module_name_for(path)
        mod = ModuleInfo(name=name, path=str(path), tree=tree, source=source)
        mod.det_line, mod.det_file = parse_suppressions(source, tool="detlint")
        mod.flow_line, mod.flow_file = parse_suppressions(source, tool="reproflow")
        self.modules[name] = mod
        self.by_path[str(path)] = mod
        self._collect_imports(mod)
        self._collect_symbols(mod)

    def _collect_imports(self, mod: ModuleInfo) -> None:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    mod.import_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom):
                module = mod.resolve_relative(node.level, node.module)
                if module is None:
                    continue
                for alias in node.names:
                    mod.from_imports[alias.asname or alias.name] = (module, alias.name)

    def _collect_symbols(self, mod: ModuleInfo) -> None:
        stack: List[str] = []

        def qual(name: str) -> str:
            return ".".join([mod.name, *stack, name])

        def visit(node: ast.AST, in_class: Optional[ClassInfo]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = qual(child.name)
                    info = FunctionInfo(
                        qualname=qualname,
                        module=mod.name,
                        path=mod.path,
                        node=child,
                        lineno=child.lineno,
                        cls=in_class.qualname if in_class is not None else None,
                        is_generator=_is_generator(child),
                    )
                    self.functions[qualname] = info
                    if in_class is not None:
                        in_class.methods[child.name] = qualname
                        self.method_index.setdefault(child.name, []).append(
                            in_class.qualname
                        )
                    elif not stack:
                        mod.functions[child.name] = qualname
                    stack.append(child.name)
                    visit(child, None)
                    stack.pop()
                elif isinstance(child, ast.ClassDef):
                    qualname = qual(child.name)
                    cinfo = ClassInfo(
                        qualname=qualname,
                        module=mod.name,
                        path=mod.path,
                        node=child,
                        lineno=child.lineno,
                        bases=[b for b in map(self._base_name, child.bases) if b],
                    )
                    self.classes[qualname] = cinfo
                    if not stack:
                        mod.classes[child.name] = qualname
                    stack.append(child.name)
                    visit(child, cinfo)
                    stack.pop()
                elif isinstance(child, ast.Assign) and not stack and in_class is None:
                    self._module_binding(mod, child)
                elif isinstance(child, ast.Assign) and in_class is not None:
                    for target in child.targets:
                        if isinstance(target, ast.Name) and target.id == "_san_tiebreak":
                            in_class.has_tiebreak_local = True
                else:
                    visit(child, in_class)

        visit(mod.tree, None)
        # Resolve textual base names to project class qualnames where possible.
        for cinfo in self.classes.values():
            if cinfo.module != mod.name:
                continue
            cinfo.bases = [
                self.resolve_class_name(mod, base) or base for base in cinfo.bases
            ]

    @staticmethod
    def _base_name(node: ast.expr) -> str:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            parts: List[str] = []
            cur: ast.expr = node
            while isinstance(cur, ast.Attribute):
                parts.insert(0, cur.attr)
                cur = cur.value
            if isinstance(cur, ast.Name):
                parts.insert(0, cur.id)
            return ".".join(parts)
        return ""

    def _module_binding(self, mod: ModuleInfo, node: ast.Assign) -> None:
        """Record ``name = <callable reference>`` at module scope."""
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return
        target = node.targets[0].id
        value = node.value
        if isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
            base = value.value.id
            module = mod.import_aliases.get(base)
            if module is not None:
                # ``_draw = random.random`` — an external callable binding.
                mod.bindings[target] = (module, value.attr)
        elif isinstance(value, ast.Name):
            origin = mod.from_imports.get(value.id)
            if origin is not None:
                mod.bindings[target] = origin
            elif value.id in mod.functions:
                mod.local_bindings[target] = mod.functions[value.id]

    # -- class model --------------------------------------------------------

    def _infer_attr_types(self, cinfo: ClassInfo) -> None:
        mod = self.modules.get(cinfo.module)
        if mod is None:
            return
        for stmt in cinfo.node.body:  # class-body annotations: ``x: DataPlane``
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                resolved = self.resolve_annotation(mod, stmt.annotation)
                if resolved is not None:
                    cinfo.attr_types[stmt.target.id] = resolved
        init = cinfo.methods.get("__init__")
        if init is None:
            return
        node = self.functions[init].node
        for stmt in ast.walk(node):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target = stmt.target
                resolved = self.resolve_annotation(mod, stmt.annotation)
                if (
                    resolved is not None
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    cinfo.attr_types.setdefault(target.attr, resolved)
                continue
            if (
                target is not None
                and value is not None
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and isinstance(value, ast.Call)
            ):
                ctor = self.resolve_class_of_call(mod, value.func)
                if ctor is not None:
                    cinfo.attr_types.setdefault(target.attr, ctor)

    def mro(self, class_qualname: str) -> List[str]:
        """In-project linearization: the class then its bases, depth-first."""
        seen: List[str] = []

        def walk(qualname: str) -> None:
            if qualname in seen:
                return
            seen.append(qualname)
            info = self.classes.get(qualname)
            if info is None:
                return
            for base in info.bases:
                walk(base)

        walk(class_qualname)
        return seen

    def resolve_method(self, class_qualname: str, name: str) -> Optional[str]:
        for qualname in self.mro(class_qualname):
            info = self.classes.get(qualname)
            if info is not None and name in info.methods:
                return info.methods[name]
        return None

    def has_tiebreak(self, class_qualname: str) -> bool:
        return any(
            self.classes[q].has_tiebreak_local
            for q in self.mro(class_qualname)
            if q in self.classes
        )

    # -- name resolution ----------------------------------------------------

    def resolve_class_name(self, mod: ModuleInfo, name: str) -> Optional[str]:
        """Resolve a (possibly dotted) textual name to a project class."""
        if name in mod.classes:
            return mod.classes[name]
        if name in mod.from_imports:
            module, attr = mod.from_imports[name]
            target = self.modules.get(module)
            if target is not None and attr in target.classes:
                return target.classes[attr]
            qualname = f"{module}.{attr}"
            if qualname in self.classes:
                return qualname
        if "." in name:
            head, _, rest = name.partition(".")
            module = mod.import_aliases.get(head)
            candidate = f"{module}.{rest}" if module else name
            if candidate in self.classes:
                return candidate
        return None

    def resolve_annotation(self, mod: ModuleInfo, node: ast.expr) -> Optional[str]:
        """Project class named by an annotation (unwraps Optional/quotes)."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return self.resolve_class_name(mod, node.value.strip())
        if isinstance(node, ast.Name):
            return self.resolve_class_name(mod, node.id)
        if isinstance(node, ast.Attribute):
            return self.resolve_class_name(mod, self._base_name(node))
        if isinstance(node, ast.Subscript):
            base = node.value
            if isinstance(base, ast.Name) and base.id == "Optional":
                inner = node.slice
                return self.resolve_annotation(mod, inner)
        return None

    def resolve_class_of_call(
        self, mod: ModuleInfo, func: ast.expr
    ) -> Optional[str]:
        """If ``func`` names a project class, its qualname (constructor)."""
        if isinstance(func, ast.Name):
            return self.resolve_class_name(mod, func.id)
        if isinstance(func, ast.Attribute):
            return self.resolve_class_name(mod, self._base_name(func))
        return None


def _is_generator(node: ast.AST) -> bool:
    """True when the def itself contains a yield (not a nested def's)."""
    for child in ast.walk(node):
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            if _owner(node, child) is node:
                return True
    return False


def _owner(root: ast.AST, target: ast.AST) -> Optional[ast.AST]:
    owner: Optional[ast.AST] = None
    stack: List[ast.AST] = []

    def walk(node: ast.AST) -> None:
        nonlocal owner
        is_fn = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        if is_fn:
            stack.append(node)
        if node is target:
            owner = stack[-1] if stack else None
        for child in ast.iter_child_nodes(node):
            walk(child)
        if is_fn:
            stack.pop()

    walk(root)
    return owner
