"""FLOW101: interprocedural determinism taint.

The fixed point computes, for every function, whether some call chain
reaches a wall-clock, unseeded-RNG, or process-identity *sink* (the
DetLint DET001/DET002/DET008 origin tables) without passing through a
sanctioned boundary.  A sink is **sanctioned** — contributes no taint —
when its call site is line-suppressed (``detlint: ignore[...]`` or
``reproflow: ignore[FLOW101]``), or its file is allowlisted for the
corresponding DET rule (the profiler, the RNG hub, the worker-process
entry points).  Seeded constructions (``np.random.default_rng(seed)``)
are never sinks, so impurity absorbed into a named seeded stream stops
propagating exactly as the contract intends.

Two finding shapes keep the output small and actionable:

* the **laundered sink site** itself — a call that reaches a sink
  through a module-level binding (``_draw = random.random``) or a
  ``functools.partial``, the shapes intra-file DetLint provably cannot
  resolve; and
* every tainted **root**: a sim coroutine or ``SimUnit`` entry point
  whose transitive call chain reaches a sink, reported once with the
  chain spelled out.  Pure helpers in the middle of a chain are not
  re-reported — the chain already names them.

Taint never propagates across duck edges (method-name fallback): those
exist for reachability questions, not for accusations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.detlint import (
    PROCESS_IDENTITY_ORIGINS,
    SEEDED_NP_FACTORIES,
    WALL_CLOCK_ORIGINS,
)
from repro.analysis.flow.callgraph import CallGraph, ExternalCall
from repro.analysis.flow.config import FlowConfig
from repro.analysis.flow.report import FlowFinding
from repro.analysis.flow.symbols import ProjectIndex

__all__ = ["sink_family", "analyze_taint"]


def sink_family(module: str, attr: str) -> Optional[Tuple[str, str]]:
    """(family, DET code) when (module, attr) is an impurity sink."""
    if (module, attr) in WALL_CLOCK_ORIGINS or (
        module == "datetime" and attr in ("now", "utcnow")
    ):
        return "wall-clock", "DET001"
    if module == "random":
        return "unseeded-rng", "DET002"
    if module == "numpy.random" and attr not in SEEDED_NP_FACTORIES:
        return "unseeded-rng", "DET002"
    if (module, attr) in PROCESS_IDENTITY_ORIGINS:
        return "process-identity", "DET008"
    return None


@dataclass
class _Taint:
    """Why a function is impure: the sink and the path towards it."""

    origin: str  # "time.time" etc.
    family: str
    chain: Tuple[str, ...]  # call chain from this function to the sink


def _sanctioned(
    index: ProjectIndex, config: FlowConfig, call: ExternalCall, det_code: str
) -> bool:
    mod = index.modules.get(index.functions[call.caller].module)
    if mod is None:  # pragma: no cover - caller always indexed
        return False
    if config.lint.allows(det_code, mod.path):
        return True
    if det_code in mod.det_file or "FLOW101" in mod.flow_file:
        return True
    line_det = mod.det_line.get(call.lineno, set())
    line_flow = mod.flow_line.get(call.lineno, set())
    return det_code in line_det or "FLOW101" in line_flow


def analyze_taint(
    index: ProjectIndex,
    graph: CallGraph,
    config: FlowConfig,
    coroutines: Set[str],
) -> List[FlowFinding]:
    """Fixed-point impurity propagation + the two reporting shapes."""
    taints: Dict[str, _Taint] = {}
    findings: List[FlowFinding] = []

    # Seed: direct sink calls that are not sanctioned.
    for caller, calls in graph.external.items():
        for call in calls:
            family = sink_family(call.module, call.attr)
            if family is None:
                continue
            name, det_code = family
            if _sanctioned(index, config, call, det_code):
                continue
            origin = f"{call.module}.{call.attr}"
            taints.setdefault(
                caller, _Taint(origin=origin, family=name, chain=(origin,))
            )
            if call.laundered:
                info = index.functions[caller]
                findings.append(
                    FlowFinding(
                        path=info.path,
                        line=call.lineno,
                        col=call.col,
                        code="FLOW101",
                        symbol=caller,
                        message=(
                            f"{name} sink `{origin}` reached through a "
                            "module-level binding or partial — invisible "
                            "to per-file DetLint"
                        ),
                    )
                )

    # Fixed point over reverse call edges (duck edges excluded).
    boundary = _boundaries(index, config)
    worklist = list(taints)
    while worklist:
        callee = worklist.pop()
        taint = taints[callee]
        for edge in graph.callers(callee):
            if edge.kind == "duck":
                continue
            caller = edge.caller
            if caller in taints or caller in boundary:
                continue
            taints[caller] = _Taint(
                origin=taint.origin,
                family=taint.family,
                chain=(callee, *taint.chain),
            )
            worklist.append(caller)

    # Report tainted roots: sim coroutines and executor entry points.
    roots = coroutines | graph.entry_points
    for qualname in sorted(roots):
        taint = taints.get(qualname)
        if taint is None:
            continue
        info = index.functions[qualname]
        kind = "sim coroutine" if qualname in coroutines else "SimUnit entry point"
        findings.append(
            FlowFinding(
                path=info.path,
                line=info.lineno,
                col=info.node.col_offset + 1,
                code="FLOW101",
                symbol=qualname,
                message=(
                    f"{kind} `{info.name}` transitively reaches "
                    f"{taint.family} sink `{taint.origin}` without a "
                    "seeded source or allowlisted boundary"
                ),
                chain=(qualname, *taint.chain)
                if taint.chain[0] != qualname
                else taint.chain,
            )
        )
    return findings


def _boundaries(index: ProjectIndex, config: FlowConfig) -> Set[str]:
    """Functions taint never propagates *through*.

    A function absorbs taint when its whole file is allowlisted for any
    sink family (the sanctioned impurity boundaries), or when its `def`
    line carries ``# reproflow: ignore[FLOW101]``.
    """
    absorbed: Set[str] = set()
    for qualname, info in index.functions.items():
        mod = index.modules[info.module]
        if any(
            config.lint.allows(code, mod.path)
            for code in ("DET001", "DET002", "DET008")
        ):
            absorbed.add(qualname)
            continue
        if "FLOW101" in mod.flow_line.get(info.lineno, set()):
            absorbed.add(qualname)
    return absorbed
