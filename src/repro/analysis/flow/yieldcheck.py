"""FLOW102: call-graph-aware coroutine yield discipline.

The engine's contract is narrow: a sim coroutine reaches the scheduler
through exactly one of two doors — ``env.process(gen)`` registers a
root, ``yield from sub(...)`` drives a child inline.  Anything else is
a coroutine that silently never runs (a discarded or parked generator
object) or a yield the engine will reject at runtime, *after* the event
schedule has already diverged from the pinned baselines.

DetLint's DET005 sees the single-file shapes.  This pass closes the
one-hop gaps: a helper in another module that *returns* a coroutine
("returns-coroutine" is itself a fixed point, so factories of factories
resolve too), a generator imported from elsewhere and called as a
statement, a coroutine object yielded instead of delegated.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.report import FlowFinding
from repro.analysis.flow.symbols import ProjectIndex

__all__ = ["classify_sim_coroutines", "returns_coroutine_helpers", "analyze_yields"]


def classify_sim_coroutines(index: ProjectIndex, graph: CallGraph) -> Set[str]:
    """Generators in the engine's orbit: process roots + yield-from closure."""
    coroutines: Set[str] = set(graph.process_roots)
    worklist = list(coroutines)
    while worklist:
        current = worklist.pop()
        for edge in graph.callees(current):
            if edge.kind != "yield_from":
                continue
            callee = edge.callee
            info = index.functions.get(callee)
            if info is None or not info.is_generator:
                continue
            if callee not in coroutines:
                coroutines.add(callee)
                worklist.append(callee)
    return coroutines


def returns_coroutine_helpers(index: ProjectIndex, graph: CallGraph) -> Set[str]:
    """Non-generator functions whose return value is a coroutine object.

    Fixed point: ``make_worker`` returning ``worker(env)`` is one, and so
    is a factory returning ``make_worker(env)``.  Calling such a helper
    as a bare statement discards a coroutine just as surely as calling
    the generator directly.
    """
    helpers: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for qualname, facts in graph.facts.items():
            if qualname in helpers:
                continue
            info = index.functions.get(qualname)
            if info is None or info.is_generator:
                continue
            for returned in facts.returns_calls:
                target = index.functions.get(returned)
                if (target is not None and target.is_generator) or (
                    returned in helpers
                ):
                    helpers.add(qualname)
                    changed = True
                    break
    return helpers


def _is_event_yield(node: ast.expr) -> bool:
    """Conservatively true unless the yielded value cannot be an Event."""
    if isinstance(node, ast.Constant):
        return node.value is None  # bare `yield` parks on the scheduler? no —
        # the engine rejects None too, but DET005 owns that; constants
        # other than None are unambiguous non-events either way.
    if isinstance(node, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
        return False
    if isinstance(node, (ast.BinOp, ast.UnaryOp, ast.Compare, ast.JoinedStr)):
        return False
    return True


def analyze_yields(
    index: ProjectIndex, graph: CallGraph, coroutines: Set[str]
) -> List[FlowFinding]:
    findings: List[FlowFinding] = []
    helpers = returns_coroutine_helpers(index, graph)

    for qualname, facts in sorted(graph.facts.items()):
        info = index.functions[qualname]
        mod = index.modules[info.module]

        def suppressed(line: int) -> bool:
            return "FLOW102" in mod.flow_line.get(line, set()) or (
                "FLOW102" in mod.flow_file
            )

        # (a) statement-level discard of a coroutine or coroutine factory.
        for callee, line in facts.discards:
            if callee is None or suppressed(line):
                continue
            target = index.functions.get(callee)
            if target is not None and target.is_generator:
                findings.append(
                    FlowFinding(
                        path=info.path,
                        line=line,
                        col=1,
                        code="FLOW102",
                        symbol=qualname,
                        message=(
                            f"calling generator `{target.name}` as a "
                            "statement creates a coroutine that never "
                            "runs — drive it with `yield from` or "
                            "register it with env.process(...)"
                        ),
                        chain=(qualname, callee),
                    )
                )
            elif callee in helpers:
                findings.append(
                    FlowFinding(
                        path=info.path,
                        line=line,
                        col=1,
                        code="FLOW102",
                        symbol=qualname,
                        message=(
                            f"`{callee.rsplit('.', 1)[-1]}` returns a "
                            "coroutine that is discarded here — the "
                            "process never starts"
                        ),
                        chain=(qualname, callee),
                    )
                )

        # (b) coroutine object assigned to a local but never driven.
        for var, (gen, line) in sorted(facts.coro_vars.items()):
            if var in facts.used_names or suppressed(line):
                continue
            findings.append(
                FlowFinding(
                    path=info.path,
                    line=line,
                    col=1,
                    code="FLOW102",
                    symbol=qualname,
                    message=(
                        f"coroutine `{var}` (from "
                        f"`{gen.rsplit('.', 1)[-1]}`) is created but "
                        "never driven or registered"
                    ),
                    chain=(qualname, gen),
                )
            )

        # (c) non-event yields — only inside classified sim coroutines,
        # so plain iterator generators stay out of scope.
        if qualname not in coroutines:
            continue
        for value, line in facts.yields:
            if value is None or suppressed(line):
                continue
            if isinstance(value, ast.Call):
                # `yield worker(env)` hands the scheduler a generator
                # object; the engine wants `yield from worker(env)`.
                callee = graph.yield_call_target(qualname, line)
                if callee is not None:
                    target = index.functions.get(callee)
                    if target is not None and target.is_generator:
                        findings.append(
                            FlowFinding(
                                path=info.path,
                                line=line,
                                col=value.col_offset + 1,
                                code="FLOW102",
                                symbol=qualname,
                                message=(
                                    f"yielding coroutine object "
                                    f"`{target.name}(...)` — use "
                                    "`yield from` to drive it"
                                ),
                                chain=(qualname, callee),
                            )
                        )
                continue
            if not _is_event_yield(value):
                findings.append(
                    FlowFinding(
                        path=info.path,
                        line=line,
                        col=value.col_offset + 1,
                        code="FLOW102",
                        symbol=qualname,
                        message=(
                            "sim coroutine yields a non-event value — "
                            "the engine only accepts Events "
                            "(timeouts, resource acquisitions, "
                            "composites)"
                        ),
                    )
                )
    return findings
