"""Runtime sanitizers: determinism, sim-time races, and leaks.

Three checkers run behind ``repro run <exp> --sanitize``:

* **Determinism sanitizer** — the experiment runs twice with identical
  seeds while every monitored :class:`~repro.sim.engine.Environment`
  hashes its processed-event stream *per layer* (the layer of an event
  is the source file of the coroutine it resumes). Any divergence is
  localized to the first differing event of the first differing layer —
  "run 2 diverged at event 1417 in repro.core.microfs.fs" instead of
  "the figure changed".

* **Sim-time race detector** — two events at the *same* simulated
  timestamp mutating the *same* shared object are ordered only by heap
  insertion sequence. That is deterministic for a fixed schedule, but
  brittle: any reordering of insertions (a refactor, a new event) can
  legally flip the outcome. Objects therefore declare their tie-break
  discipline with a ``_san_tiebreak`` class attribute (``"fifo"`` for
  the queue-ordered primitives in ``repro.sim.resources`` and
  ``repro.nvme.queues``); a same-timestamp multi-actor mutation group on
  an object with *no* declared discipline is reported as a race.

* **Leak sanitizer** — at run end, every monitored object is asked
  whether it still holds simulation state that should have drained:
  Resource slots held or waiters stranded, QueuePair commands never
  completed, arbiter queues never granted, DataPlane envelopes still in
  flight, and NVMe namespaces created mid-run but never deleted.

The monitor is attached by :func:`attach_if_active` from the system
registry (mirroring ``repro.obs``), records by pure bookkeeping — it
never creates events or touches the clock — so a monitored run is
bit-identical to an unmonitored one (pinned by
``tests/analysis/test_sanitize_baseline.py``).
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Set, Tuple

__all__ = [
    "Monitor",
    "SanitizeSession",
    "SanitizeReport",
    "Finding",
    "session",
    "attach_if_active",
    "note_mutation",
    "sanitized_run",
]


class Finding:
    """One sanitizer finding (leak, race, or divergence)."""

    __slots__ = ("sanitizer", "subject", "message")

    def __init__(self, sanitizer: str, subject: str, message: str) -> None:
        self.sanitizer = sanitizer
        self.subject = subject
        self.message = message

    def render(self) -> str:
        return f"[{self.sanitizer}] {self.subject}: {self.message}"

    def __repr__(self) -> str:
        return f"Finding({self.render()!r})"


def _layer_of(callbacks: Optional[List[Callable[..., Any]]]) -> str:
    """The model layer an event belongs to: the file of the coroutine it
    resumes (or of the raw callback), shortened to a repo-relative name."""
    if callbacks:
        cb = callbacks[0]
        bound_self = getattr(cb, "__self__", None)
        generator = getattr(bound_self, "_generator", None)
        code = getattr(generator, "gi_code", None)
        if code is None:
            code = getattr(cb, "__code__", None)
        if code is not None:
            return _shorten(code.co_filename)
    return "<engine>"


def _shorten(filename: str) -> str:
    norm = filename.replace("\\", "/")
    for anchor in ("/repro/", "/tests/"):
        at = norm.rfind(anchor)
        if at >= 0:
            return norm[at + 1 :]
    return norm.rsplit("/", 1)[-1]


class _LayerStream:
    """Running hash + full record list for one layer's event stream.

    ``positions`` keeps each record's *global* event index so divergences
    in different layers can be ordered by when they actually happened.
    """

    __slots__ = ("records", "positions", "_hash")

    def __init__(self) -> None:
        self.records: List[str] = []
        self.positions: List[int] = []
        self._hash = hashlib.sha256()

    def add(self, record: str, position: int) -> None:
        self.records.append(record)
        self.positions.append(position)
        self._hash.update(record.encode())
        self._hash.update(b"\n")

    def digest(self) -> str:
        return self._hash.hexdigest()


class _TrackedObject:
    """Per-object bookkeeping for the race detector / leak sanitizer."""

    __slots__ = ("obj", "label", "tiebreak", "group_time", "group_actors", "ops")

    def __init__(self, obj: Any, label: str, tiebreak: Optional[str]) -> None:
        self.obj = obj
        self.label = label
        self.tiebreak = tiebreak
        self.group_time: Optional[float] = None
        self.group_actors: List[int] = []
        self.ops: List[str] = []


class Monitor:
    """Sanitizer state for one Environment. Pure bookkeeping: attaching a
    monitor must not change the event timeline by a single event."""

    __slots__ = (
        "label",
        "events",
        "layers",
        "_current_actor",
        "_now",
        "_tracked",
        "_track_order",
        "races",
        "io_begun",
        "io_done",
        "io_outstanding",
        "ns_created",
        "finished",
        "candidates",
    )

    def __init__(
        self,
        label: str = "run",
        candidates: Optional[Mapping[str, Set[str]]] = None,
    ) -> None:
        self.label = label
        #: class qualname -> attrs statically flagged by repro.flow FLOW103;
        #: races on these classes are annotated as predicted.
        self.candidates: Mapping[str, Set[str]] = candidates or {}
        self.events = 0
        self.layers: Dict[str, _LayerStream] = {}
        self._current_actor = -1  # heap seq of the event being processed
        self._now = float("-inf")
        self._tracked: Dict[int, _TrackedObject] = {}
        self._track_order = 0
        self.races: List[Finding] = []
        self.io_begun = 0
        self.io_done = 0
        self.io_outstanding: Dict[int, str] = {}
        self.ns_created: Dict[int, Tuple[Any, Any]] = {}  # id -> (ssd, ns)
        self.finished = False

    # -- engine hook --------------------------------------------------------

    def note_event(self, time: float, seq: int, event: Any) -> None:
        """Called by the engine right after popping, before callbacks."""
        if time > self._now:
            self._close_groups()
            self._now = time
        self._current_actor = seq
        layer = _layer_of(event.callbacks)
        stream = self.layers.get(layer)
        if stream is None:
            stream = self.layers[layer] = _LayerStream()
        stream.add(f"{time!r}|{seq}|{type(event).__name__}", self.events)
        self.events += 1

    # -- race detector ------------------------------------------------------

    def note_mutation(self, obj: Any, op: str) -> None:
        """A shared object was mutated by the currently-running event."""
        key = id(obj)
        entry = self._tracked.get(key)
        if entry is None:
            label = (
                f"{type(obj).__module__}.{type(obj).__name__}"
                f"#{self._track_order}"
            )
            self._track_order += 1
            entry = self._tracked[key] = _TrackedObject(
                obj, label, getattr(type(obj), "_san_tiebreak", None)
            )
        # Exactness is the point: a "group" is mutations at the literal
        # same heap timestamp.
        if entry.group_time is None or entry.group_time != self._now:  # detlint: ignore[DET003]
            self._close_group(entry)
            entry.group_time = self._now
        entry.group_actors.append(self._current_actor)
        entry.ops.append(op)

    def _close_group(self, entry: _TrackedObject) -> None:
        if entry.tiebreak is None and len(set(entry.group_actors)) > 1:
            message = (
                f"{len(entry.group_actors)} same-timestamp mutations "
                f"({', '.join(entry.ops)}) at t="
                f"{entry.group_time!r} from "
                f"{len(set(entry.group_actors))} actors with no "
                "declared tie-break (_san_tiebreak)"
            )
            predicted = self.candidates.get(entry.label.rsplit("#", 1)[0])
            if predicted:
                message += (
                    " [predicted by repro.flow FLOW103: "
                    f"{', '.join(sorted(predicted))}]"
                )
            self.races.append(Finding("race", entry.label, message))
        entry.group_time = None
        entry.group_actors = []
        entry.ops = []

    def _close_groups(self) -> None:
        for entry in self._tracked.values():
            if entry.group_actors:
                self._close_group(entry)

    # -- leak hooks ---------------------------------------------------------

    def note_io_begin(self, req: Any) -> None:
        self.io_begun += 1
        self.io_outstanding[id(req)] = getattr(req, "span_name", "io")

    def note_io_end(self, req: Any) -> None:
        self.io_done += 1
        self.io_outstanding.pop(id(req), None)

    def note_namespace(self, ssd: Any, ns: Any, created: bool) -> None:
        if created:
            self.ns_created[id(ns)] = (ssd, ns)
        else:
            self.ns_created.pop(id(ns), None)

    # -- finish -------------------------------------------------------------

    def finish(self) -> List[Finding]:
        """Close open race groups and sweep tracked objects for leaks."""
        if self.finished:
            return []
        self.finished = True
        self._close_groups()
        findings = list(self.races)
        for entry in self._ordered_tracked():
            findings.extend(self._leaks_of(entry))
        for span_name in sorted(self.io_outstanding.values()):
            findings.append(
                Finding(
                    "leak",
                    f"IORequest({span_name})",
                    "submitted to the DataPlane but never completed",
                )
            )
        for ssd, ns in self.ns_created.values():
            findings.append(
                Finding(
                    "leak",
                    f"{getattr(ssd, 'name', 'ssd')}/ns{getattr(ns, 'nsid', '?')}",
                    "namespace created during the run but never deleted",
                )
            )
        return findings

    def _ordered_tracked(self) -> List[_TrackedObject]:
        return sorted(self._tracked.values(), key=lambda e: e.label)

    def _leaks_of(self, entry: _TrackedObject) -> Iterator[Finding]:
        obj = entry.obj
        # Duck-typed sweeps: each primitive knows how to look drained.
        in_service = getattr(obj, "in_service", None)
        queue_length = getattr(obj, "queue_length", None)
        if isinstance(in_service, int) and in_service > 0:
            yield Finding(
                "leak", entry.label,
                f"{in_service} slot(s) still held at run end "
                "(request() without release())",
            )
        if isinstance(queue_length, int) and queue_length > 0:
            yield Finding(
                "leak", entry.label,
                f"{queue_length} waiter(s) still queued at run end",
            )
        outstanding = getattr(obj, "outstanding", None)
        if callable(outstanding):
            pending = outstanding()
            if pending:
                yield Finding(
                    "leak", entry.label,
                    f"{pending} submitted command(s) never completed",
                )
        waiting = getattr(obj, "_waiting", None)
        if callable(waiting):  # WrrArbiter
            stranded = waiting()
            if stranded:
                yield Finding(
                    "leak", entry.label,
                    f"{stranded} admission waiter(s) never granted",
                )
        inflight_bytes = getattr(obj, "_inflight_bytes", None)
        if isinstance(inflight_bytes, int) and inflight_bytes > 0:
            yield Finding(
                "leak", entry.label,
                f"{inflight_bytes} byte(s) still inside the admission window",
            )

    # -- determinism --------------------------------------------------------

    def digests(self) -> Dict[str, str]:
        return {layer: stream.digest() for layer, stream in self.layers.items()}


def first_divergence(
    a: Monitor, b: Monitor
) -> Optional[Tuple[str, int, Optional[str], Optional[str]]]:
    """Locate the first differing event between two monitored runs.

    Returns ``(layer, index, record_run1, record_run2)`` — the earliest
    mismatch (by index, then layer name) across all diverging layers —
    or ``None`` when the runs hashed identically.
    """
    if a.digests() == b.digests():
        return None
    best = None  # (global_pos, layer, at, got_a, got_b)
    for layer in sorted(set(a.layers) | set(b.layers)):
        sa, sb = a.layers.get(layer), b.layers.get(layer)
        ra = sa.records if sa is not None else []
        rb = sb.records if sb is not None else []
        if ra == rb:
            continue
        at = next(
            (i for i, (x, y) in enumerate(zip(ra, rb)) if x != y),
            min(len(ra), len(rb)),
        )
        got_a = ra[at] if at < len(ra) else None
        got_b = rb[at] if at < len(rb) else None
        # Order candidate divergences by when they happened in the run,
        # not by their index inside the layer: the earliest *global*
        # event position (across both runs) wins.
        positions = [
            s.positions[at]
            for s, r in ((sa, ra), (sb, rb))
            if s is not None and at < len(r)
        ]
        global_pos = min(positions) if positions else 0
        if best is None or (global_pos, layer) < (best[0], best[1]):
            best = (global_pos, layer, at, got_a, got_b)
    if best is None:  # pragma: no cover - digests differed but records agree
        return None
    _pos, layer, at, got_a, got_b = best
    return layer, at, got_a, got_b


# ---------------------------------------------------------------------------
# module-level session (mirrors repro.obs.capture)

_SESSION: Optional["SanitizeSession"] = None


class SanitizeSession:
    """Collects one Monitor per Environment attached while active."""

    def __init__(
        self,
        label: str = "sanitize",
        candidates: Optional[Mapping[str, Set[str]]] = None,
    ) -> None:
        self.label = label
        self.monitors: List[Monitor] = []
        self.candidates = candidates

    def attach(self, env: Any, label: str = "run") -> Monitor:
        monitor = Monitor(
            label=f"{label}#{len(self.monitors)}", candidates=self.candidates
        )
        env.monitor = monitor
        self.monitors.append(monitor)
        return monitor

    def finish(self) -> List[Finding]:
        findings: List[Finding] = []
        for monitor in self.monitors:
            findings.extend(monitor.finish())
        return findings


@contextmanager
def session(
    label: str = "sanitize",
    candidates: Optional[Mapping[str, Set[str]]] = None,
) -> Iterator[SanitizeSession]:
    """Scope inside which registry-built systems get monitors attached."""
    global _SESSION
    prev = _SESSION
    current = SanitizeSession(label, candidates=candidates)
    _SESSION = current
    try:
        yield current
    finally:
        _SESSION = prev


def attach_if_active(env: Any, label: str = "run") -> None:
    """Registry hook: monitor ``env`` when a sanitize session is open."""
    if _SESSION is not None and getattr(env, "monitor", None) is None:
        _SESSION.attach(env, label)


def note_mutation(env: Any, obj: Any, op: str) -> None:
    """Public hook for model code: record a shared-object mutation."""
    monitor = getattr(env, "monitor", None)
    if monitor is not None:
        monitor.note_mutation(obj, op)


# ---------------------------------------------------------------------------
# the drive-twice harness


class SanitizeReport:
    """Combined verdict of the three sanitizers over a double run."""

    def __init__(
        self,
        run1: SanitizeSession,
        run2: SanitizeSession,
        leak_findings: List[Finding],
        race_findings: List[Finding],
    ):
        self.run1 = run1
        self.run2 = run2
        self.leaks = leak_findings
        self.races = race_findings
        self.divergences: List[Finding] = []
        if len(run1.monitors) != len(run2.monitors):
            self.divergences.append(
                Finding(
                    "determinism", "<session>",
                    f"run 1 built {len(run1.monitors)} environments, "
                    f"run 2 built {len(run2.monitors)}",
                )
            )
        for m1, m2 in zip(run1.monitors, run2.monitors):
            where = first_divergence(m1, m2)
            if where is None:
                if m1.events != m2.events:  # hash collision safety net
                    self.divergences.append(
                        Finding(
                            "determinism", m1.label,
                            f"event counts differ: {m1.events} vs {m2.events}",
                        )
                    )
                continue
            layer, index, got1, got2 = where
            self.divergences.append(
                Finding(
                    "determinism", m1.label,
                    f"first divergence in layer {layer} at event {index}: "
                    f"run1={got1 or '<absent>'} run2={got2 or '<absent>'}",
                )
            )

    @property
    def ok(self) -> bool:
        return not (self.divergences or self.leaks or self.races)

    @property
    def findings(self) -> List[Finding]:
        return [*self.divergences, *self.races, *self.leaks]

    def render(self) -> str:
        n_envs = len(self.run1.monitors)
        n_events = sum(m.events for m in self.run1.monitors)
        lines = [
            "== repro.analysis sanitize report ==",
            f"  environments monitored : {n_envs}",
            f"  events hashed (run 1)  : {n_events}",
            f"  determinism            : "
            + ("OK (both runs bit-identical)" if not self.divergences
               else f"FAIL ({len(self.divergences)})"),
            f"  sim-time races         : "
            + ("OK" if not self.races else f"FAIL ({len(self.races)})"),
            f"  leaks at run end       : "
            + ("OK" if not self.leaks else f"FAIL ({len(self.leaks)})"),
        ]
        for finding in self.findings:
            lines.append("  " + finding.render())
        return "\n".join(lines)


def sanitized_run(
    fn: Callable[[], Any],
    candidates: Optional[Mapping[str, Set[str]]] = None,
) -> Tuple[Any, SanitizeReport]:
    """Run ``fn`` twice under monitors; return (first result, report).

    ``fn`` must be self-seeding (every experiment in ``repro.bench`` is):
    the determinism sanitizer asserts the two runs schedule identical
    event streams, so any wall-clock or global-RNG dependence shows up
    as a localized divergence.

    ``candidates`` is the FLOW103 handoff from ``repro flow
    --candidates-out``: races on statically flagged classes are annotated
    as predicted, closing the static→runtime loop.
    """
    with session("run1", candidates=candidates) as run1:
        result = fn()
    findings1 = run1.finish()
    with session("run2", candidates=candidates) as run2:
        fn()
    run2.finish()
    leaks = [f for f in findings1 if f.sanitizer == "leak"]
    races = [f for f in findings1 if f.sanitizer == "race"]
    return result, SanitizeReport(run1, run2, leaks, races)
