"""Application-level drivers: cluster deployment, the CoMD proxy app,
and checkpoint/restart workload generators."""

from repro.apps.comd import CoMDConfig, CoMDProxy
from repro.apps.deployment import Deployment
from repro.apps.checkpoint import CheckpointStats, nn_checkpoint, nn_restart

__all__ = [
    "CheckpointStats",
    "CoMDConfig",
    "CoMDProxy",
    "Deployment",
    "nn_checkpoint",
    "nn_restart",
]
