"""N-N checkpoint/restart drivers (§III-E, "Per-process Private Namespace").

"Two patterns are prevalent — N-1 and N-N. [...] Recent work has
estimated that 90% of application runs use the N-N pattern" — each
process writes one unique file per checkpoint. These drivers issue that
pattern through an intercepted-POSIX shim, with barriers delimiting each
dump so efficiency can be computed from the slowest rank.

An N-1 driver is included for completeness: all ranks write disjoint
strided segments of one shared file name (each private namespace holds
its own segment — NVMe-CR turns N-1 into N-N internally, which is the
honest consequence of private namespaces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List

from repro.sim.engine import Event

__all__ = ["CheckpointStats", "nn_checkpoint", "nn_restart", "n1_checkpoint"]


@dataclass
class CheckpointStats:
    """Per-rank accumulated C/R timing."""

    checkpoint_times: List[float] = field(default_factory=list)
    restart_times: List[float] = field(default_factory=list)
    compute_time: float = 0.0
    bytes_written: int = 0
    bytes_read: int = 0

    @property
    def checkpoint_time(self) -> float:
        return sum(self.checkpoint_times)

    @property
    def restart_time(self) -> float:
        return sum(self.restart_times)

    def progress_rate(self) -> float:
        """Compute-time fraction of total application time (§I footnote)."""
        total = self.compute_time + self.checkpoint_time + self.restart_time
        return self.compute_time / total if total > 0 else 0.0


def ckpt_path(rank: int, step: int, directory: str = "/ckpt") -> str:
    return f"{directory}/rank{rank:05d}_step{step:04d}.dat"


def nn_checkpoint(
    shim, comm, step: int, nbytes: int, stats: CheckpointStats,
    directory: str = "/ckpt", barrier: bool = True,
) -> Generator[Event, Any, float]:
    """One N-N checkpoint dump; returns this rank's wall time for the
    barrier-to-barrier dump (identical across ranks when ``barrier``)."""
    env = shim.env
    if barrier:
        yield from comm.barrier()
    t0 = env.now
    fd = yield from shim.open(ckpt_path(comm.rank, step, directory), "w")
    yield from shim.write(fd, nbytes)
    yield from shim.fsync(fd)
    yield from shim.close(fd)
    if barrier:
        yield from comm.barrier()
    elapsed = env.now - t0
    stats.checkpoint_times.append(elapsed)
    stats.bytes_written += nbytes
    return elapsed


def nn_restart(
    shim, comm, step: int, nbytes: int, stats: CheckpointStats,
    directory: str = "/ckpt", barrier: bool = True,
) -> Generator[Event, Any, float]:
    """Read back one N-N checkpoint (recovery of application state)."""
    env = shim.env
    if barrier:
        yield from comm.barrier()
    t0 = env.now
    fd = yield from shim.open(ckpt_path(comm.rank, step, directory), "r")
    yield from shim.read(fd, nbytes)
    yield from shim.close(fd)
    if barrier:
        yield from comm.barrier()
    elapsed = env.now - t0
    stats.restart_times.append(elapsed)
    stats.bytes_read += nbytes
    return elapsed


def n1_checkpoint(
    shim, comm, step: int, nbytes_per_rank: int, stats: CheckpointStats,
    directory: str = "/ckpt",
) -> Generator[Event, Any, float]:
    """N-1 pattern: one shared file name, rank-strided segments."""
    env = shim.env
    yield from comm.barrier()
    t0 = env.now
    path = f"{directory}/shared_step{step:04d}.dat"
    fd = yield from shim.open(path, "a")
    # In a private namespace the rank's segment of the shared file maps
    # to the start of the rank's own view — N-1 becomes N-N internally.
    yield from shim.pwrite(fd, nbytes_per_rank, 0)
    yield from shim.fsync(fd)
    yield from shim.close(fd)
    yield from comm.barrier()
    elapsed = env.now - t0
    stats.checkpoint_times.append(elapsed)
    stats.bytes_written += nbytes_per_rank
    return elapsed
