"""CoMD proxy application (§IV-A).

The ECP CoMD molecular-dynamics proxy, reduced to what its checkpoint
behaviour depends on: per-rank atom count (which sets checkpoint size
and compute time per phase), a number of periodic checkpoints, and the
N-N dump between compute phases. Both of the paper's configurations are
builders here:

* **weak scaling** (§IV-H): 32K atoms *per process*, 10 checkpoints —
  700 GB total at 448 processes;
* **strong scaling**: 16,384K atoms *total*, 86 GB across 10 checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from repro.apps.checkpoint import CheckpointStats, nn_checkpoint, nn_restart
from repro.bench import calibration as cal
from repro.sim.engine import Event

__all__ = ["CoMDConfig", "CoMDProxy"]


@dataclass(frozen=True)
class CoMDConfig:
    """One CoMD run's shape."""

    atoms_per_rank: int
    checkpoints: int = 10
    compute_jitter: float = 0.02  # relative sd of per-phase compute time
    directory: str = "/ckpt"

    @classmethod
    def weak_scaling(cls, atoms_per_rank: int = 32_000, checkpoints: int = 10) -> "CoMDConfig":
        return cls(atoms_per_rank=atoms_per_rank, checkpoints=checkpoints)

    @classmethod
    def strong_scaling(
        cls,
        nprocs: int,
        total_checkpoint_bytes: int = 86 * 10**9,
        checkpoints: int = 10,
    ) -> "CoMDConfig":
        """§IV-H strong scaling: "the problem size is fixed to 16,384K
        atoms for a total fixed checkpoint size of 86GB (for 10
        checkpoints)".

        Note the paper's own numbers imply ~525 B/atom here vs ~4.9 KiB
        per atom in the weak-scaling setup; we honour the *checkpoint
        volume* (what the IO study depends on) and derive an effective
        per-rank atom count from it.
        """
        per_rank_bytes = max(1, total_checkpoint_bytes // (checkpoints * nprocs))
        atoms = max(1, per_rank_bytes // cal.COMD_BYTES_PER_ATOM)
        return cls(atoms_per_rank=atoms, checkpoints=checkpoints)

    @property
    def checkpoint_bytes_per_rank(self) -> int:
        return self.atoms_per_rank * cal.COMD_BYTES_PER_ATOM

    @property
    def compute_seconds_per_phase(self) -> float:
        return self.atoms_per_rank * cal.COMD_COMPUTE_SECONDS_PER_ATOM

    def total_checkpoint_bytes(self, nprocs: int) -> int:
        return self.checkpoint_bytes_per_rank * nprocs * self.checkpoints


class CoMDProxy:
    """Runs the compute/checkpoint loop of CoMD on one rank."""

    def __init__(self, config: CoMDConfig, seed: int = 0):
        self.config = config
        self.seed = seed

    def _compute_time(self, rng: np.random.Generator) -> float:
        base = self.config.compute_seconds_per_phase
        if self.config.compute_jitter == 0:
            return base
        return float(max(0.0, rng.normal(base, self.config.compute_jitter * base)))

    def rank_main(self, shim, comm) -> Generator[Event, Any, CheckpointStats]:
        """Compute -> checkpoint, ``checkpoints`` times. Returns stats."""
        env = shim.env
        rng = np.random.default_rng((self.seed, comm.rank))
        stats = CheckpointStats()
        config = self.config
        # mkdir -p semantics: on shared-namespace systems another rank
        # may have created the directory first.
        from repro.errors import FileExists

        try:
            yield from shim.mkdir(config.directory)
        except FileExists:
            pass
        nbytes = config.checkpoint_bytes_per_rank
        for step in range(config.checkpoints):
            compute = self._compute_time(rng)
            yield env.timeout(compute)
            stats.compute_time += compute
            yield from nn_checkpoint(
                shim, comm, step, nbytes, stats, directory=config.directory
            )
        return stats

    def restart_main(self, shim, comm, steps: int = None) -> Generator[Event, Any, CheckpointStats]:
        """Recovery phase: read checkpoints back (§IV-H 'recovery')."""
        stats = CheckpointStats()
        nbytes = self.config.checkpoint_bytes_per_rank
        count = self.config.checkpoints if steps is None else steps
        for step in range(count):
            yield from nn_restart(
                shim, comm, step, nbytes, stats, directory=self.config.directory
            )
        return stats
