"""Checkpoint compression (§II-B, Ibtisham et al. [34]) — complementary
to NVMe-CR; this module lets the benches quantify when it pays off.

Model: a compressor with a throughput and a ratio (lz4-class defaults).
Compressing costs rank-local CPU time; the write then moves ``ratio``
times fewer bytes. Whether that's a win depends on whether the run is
IO-bound (many ranks per SSD — compression helps) or CPU-bound (few
ranks — the compressor is slower than the unshared device).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.sim.engine import Event

__all__ = ["CompressionSpec", "compressed_checkpoint"]


@dataclass(frozen=True)
class CompressionSpec:
    """One compressor's characteristics."""

    name: str
    ratio: float  # output_bytes = input_bytes / ratio
    compress_bandwidth: float  # bytes/s of input, single core
    decompress_bandwidth: float

    def __post_init__(self) -> None:
        if self.ratio < 1.0:
            raise ValueError("ratio must be >= 1 (1 = incompressible)")
        if self.compress_bandwidth <= 0 or self.decompress_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")

    @classmethod
    def lz4(cls) -> "CompressionSpec":
        """lz4-class: fast, modest ratio (HPC doubles compress poorly)."""
        return cls("lz4", ratio=1.45, compress_bandwidth=2.8e9,
                   decompress_bandwidth=6.0e9)

    @classmethod
    def zstd(cls) -> "CompressionSpec":
        """zstd-3-class: better ratio, slower."""
        return cls("zstd", ratio=2.0, compress_bandwidth=0.7e9,
                   decompress_bandwidth=1.8e9)


def compressed_checkpoint(
    shim, path: str, nbytes: int, spec: CompressionSpec
) -> Generator[Event, Any, int]:
    """Compress + write one checkpoint; returns bytes actually written."""
    env = shim.env
    yield env.timeout(nbytes / spec.compress_bandwidth)
    out_bytes = max(1, int(nbytes / spec.ratio))
    fd = yield from shim.open(path, "w")
    yield from shim.write(fd, out_bytes)
    yield from shim.fsync(fd)
    yield from shim.close(fd)
    return out_bytes


def compressed_restore(
    shim, path: str, stored_bytes: int, spec: CompressionSpec
) -> Generator[Event, Any, None]:
    """Read + decompress one checkpoint."""
    env = shim.env
    fd = yield from shim.open(path, "r")
    yield from shim.read(fd, stored_bytes)
    yield from shim.close(fd)
    yield env.timeout(stored_bytes * spec.ratio / spec.decompress_bandwidth)
