"""One-call wiring of the paper's testbed into a live simulation.

A :class:`Deployment` owns the environment, cluster spec, network,
fabric, SSDs, NVMf targets, scheduler, and balancer — everything an
experiment needs before application code runs. Experiments and examples
compose against this instead of re-wiring substrates by hand.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.balancer import BalancerPlan, StorageBalancer
from repro.core.config import RuntimeConfig
from repro.core.control_plane import GlobalNamespaceService
from repro.core.interception import PosixShim
from repro.core.runtime import NVMeCRRuntime
from repro.fabric.nvmf import NVMfTarget
from repro.fabric.rdma import RdmaFabric, edr_infiniband
from repro.mpi.comm import Communicator
from repro.mpi.runtime import MPIJob, launch
from repro.nvme.device import SSD, SSDSpec, intel_p4800x
from repro.scheduler.jobs import JobRecord, JobSpec
from repro.scheduler.slurm import SlurmScheduler
from repro.sim.engine import Environment
from repro.sim.rng import RngHub
from repro.topology.cluster import ClusterSpec, paper_testbed
from repro.topology.network import NetworkTopology
from repro.units import GiB

__all__ = ["Deployment"]


class Deployment:
    """The §IV-A testbed, powered on."""

    def __init__(
        self,
        seed: int = 0,
        storage_nodes: int = 8,
        compute_nodes: int = 16,
        cores_per_node: int = 28,
        ssd_spec: Optional[SSDSpec] = None,
        deterministic_devices: bool = False,
        cluster: Optional[ClusterSpec] = None,
    ):
        self.env = Environment()
        self.rng = RngHub(seed)
        self.cluster = cluster or paper_testbed(
            storage_nodes=storage_nodes,
            compute_nodes=compute_nodes,
            cores_per_node=cores_per_node,
        )
        self.topo = NetworkTopology(self.cluster)
        self.fabric = RdmaFabric(self.topo, edr_infiniband(), env=self.env)
        self.scheduler = SlurmScheduler(self.env, self.cluster, self.topo)
        spec = ssd_spec or intel_p4800x()
        if deterministic_devices:
            spec = dataclasses.replace(spec, arbitration_beta=0.0)
        self.ssd_spec = spec
        self.ssds: Dict[str, SSD] = {}
        self.all_ssds: Dict[str, List[SSD]] = {}
        self.targets: Dict[str, NVMfTarget] = {}
        for node in self.cluster.storage_nodes():
            devices = []
            for index in range(node.ssd_count):
                ssd = SSD(
                    self.env, spec, f"nvme-{node.name}-{index}",
                    rng=self.rng.stream(f"ssd.{node.name}.{index}"),
                )
                devices.append(ssd)
                self.scheduler.register_ssd(node.name, ssd)
            self.all_ssds[node.name] = devices
            # Primary device per node (the common single-SSD testbed).
            self.ssds[node.name] = devices[0]
            # One SPDK target daemon per device; the per-node entry keeps
            # the list (the runtime picks the target exporting its grant).
            self.targets[node.name] = [
                NVMfTarget(self.env, node.name, ssd) for ssd in devices
            ]
        self.balancer = StorageBalancer(self.scheduler)

    # -- job setup -------------------------------------------------------------------

    def submit(
        self,
        name: str,
        nprocs: int,
        procs_per_node: int = 28,
        devices: Optional[int] = None,
        bytes_per_device: int = GiB(40),
    ) -> Tuple[JobRecord, BalancerPlan]:
        """Submit a job and run the storage balancer for it."""
        spec = JobSpec(
            name=name, user="repro", nprocs=nprocs,
            procs_per_node=procs_per_node, storage_devices=devices,
            storage_bytes_per_device=bytes_per_device,
        )
        job = self.scheduler.submit(spec)
        plan = self.balancer.allocate(job, devices=devices, bytes_per_device=bytes_per_device)
        return job, plan

    def build_runtime(
        self,
        comm: Communicator,
        job: JobRecord,
        plan: BalancerPlan,
        config: Optional[RuntimeConfig] = None,
        global_namespace: Optional[GlobalNamespaceService] = None,
    ) -> NVMeCRRuntime:
        """One rank's NVMe-CR runtime, placed on its scheduled node."""
        return NVMeCRRuntime(
            env=self.env,
            config=config or RuntimeConfig(),
            comm=comm,
            plan=plan,
            node_name=job.rank_to_node(comm.rank),
            fabric=self.fabric,
            targets=self.targets,
            global_namespace=global_namespace,
        )

    def run_job(
        self,
        job: JobRecord,
        plan: BalancerPlan,
        rank_main: Callable,
        config: Optional[RuntimeConfig] = None,
        global_namespace: Optional[GlobalNamespaceService] = None,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> MPIJob:
        """Launch ``rank_main(shim, comm)`` on every rank with an
        initialised runtime; runs the simulation to completion.

        ``rank_main`` is a generator taking ``(shim, comm)``; MPI_Init
        and MPI_Finalize are called around it (the interception shim's
        wrappers), like a real ``LD_PRELOAD``-ed binary.

        ``on_complete`` (if given) runs after every rank returns and
        before the residual-event drain — the hook perpetual services
        (e.g. a Raft group's heartbeats) use to park themselves so the
        drain terminates.
        """

        def main(comm):
            runtime = self.build_runtime(comm, job, plan, config, global_namespace)
            shim = PosixShim(runtime)
            yield from shim.MPI_Init()
            result = yield from rank_main(shim, comm)
            yield from shim.MPI_Finalize()
            return result

        mpi_job = launch(
            self.env, job.spec.nprocs, main, node_of_rank=job.rank_to_node
        )
        # Run until every rank returns (or one fails): running to queue
        # exhaustion instead would spin forever on background-thread
        # timers if a rank dies without reaching MPI_Finalize.
        self.env.run_until_complete(mpi_job.done)
        mpi_job.done.value  # re-raises if any rank failed
        if on_complete is not None:
            on_complete()
        self.env.run()  # drain residual background events
        return mpi_job

    # -- measurement helpers ---------------------------------------------------------------

    def aggregate_write_bandwidth(self) -> float:
        """Peak hardware write bandwidth across all SSDs (the paper's
        efficiency denominator)."""
        return sum(
            ssd.spec.write_bandwidth
            for devices in self.all_ssds.values() for ssd in devices
        )

    def aggregate_read_bandwidth(self) -> float:
        return sum(
            ssd.spec.read_bandwidth
            for devices in self.all_ssds.values() for ssd in devices
        )

    def bytes_per_server(self) -> List[int]:
        """Stored-byte load per storage node (Figure 7(b)'s input)."""
        return [
            int(sum(s.counters.get("bytes_written") for s in self.all_ssds[node.name]))
            for node in self.cluster.storage_nodes()
        ]
