"""Incremental checkpointing (§II-B, Ferreira et al. [31]).

"Techniques such as incremental checkpointing ... have been proposed.
While these approaches reduce checkpoint overhead, they still rely on
existing inefficient IO subsystems. Thus, these works are complementary
to the designs proposed in this paper and can be combined for improved
performance."

This module combines them: application state is divided into fixed-size
*regions* hashed per checkpoint interval (libhashckpt-style); only dirty
regions are written, plus a compact manifest. Restart reconstructs state
from the newest *full* checkpoint overlaid with the increments since.

The dirty pattern is synthetic but seeded-deterministic: each interval
the application touches a caller-chosen fraction of its regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Set

import numpy as np

from repro.sim.engine import Event

__all__ = ["IncrementalConfig", "IncrementalCheckpointer"]

#: CPU to hash one region (xxhash-class throughput ~10 GB/s).
HASH_BW = 10e9
#: Fixed manifest entry per region (hash + offset).
MANIFEST_ENTRY_BYTES = 24


@dataclass(frozen=True)
class IncrementalConfig:
    state_bytes: int
    region_bytes: int = 1 << 20  # 1 MiB hash granularity
    dirty_fraction: float = 0.3
    full_interval: int = 5  # every k-th checkpoint is full

    def __post_init__(self) -> None:
        if not 0.0 <= self.dirty_fraction <= 1.0:
            raise ValueError("dirty_fraction must be in [0, 1]")
        if self.region_bytes <= 0 or self.state_bytes <= 0:
            raise ValueError("sizes must be positive")
        if self.full_interval < 1:
            raise ValueError("full_interval must be >= 1")

    @property
    def regions(self) -> int:
        return max(1, -(-self.state_bytes // self.region_bytes))


@dataclass
class _CheckpointMeta:
    step: int
    full: bool
    regions_written: int
    nbytes: int


class IncrementalCheckpointer:
    """Hash-based incremental checkpointing for one rank over a shim."""

    def __init__(self, shim, config: IncrementalConfig, rank: int = 0, seed: int = 0):
        self.shim = shim
        self.config = config
        self.rank = rank
        self.rng = np.random.default_rng((seed, rank))
        self.history: List[_CheckpointMeta] = []
        self._dir_made = False
        self.bytes_written = 0

    def _path(self, step: int) -> str:
        return f"/ckpt/rank{self.rank:05d}_inc{step:06d}.dat"

    def _dirty_regions(self, step: int) -> Set[int]:
        count = int(round(self.config.dirty_fraction * self.config.regions))
        chosen = self.rng.choice(
            self.config.regions, size=min(count, self.config.regions), replace=False
        )
        return set(int(c) for c in chosen)

    def is_full(self, step: int) -> bool:
        return step % self.config.full_interval == 0

    def write_checkpoint(self, step: int) -> Generator[Event, Any, _CheckpointMeta]:
        """Hash all regions, write dirty ones (or everything on a full)."""
        env = self.shim.env
        config = self.config
        if not self._dir_made:
            from repro.errors import FileExists

            try:
                yield from self.shim.mkdir("/ckpt")
            except FileExists:
                pass
            self._dir_made = True
        # Hashing pass over the whole state (the incremental tax).
        yield env.timeout(config.state_bytes / HASH_BW)
        if self.is_full(step):
            regions = set(range(config.regions))
        else:
            regions = self._dirty_regions(step)
        nbytes = sum(
            min(config.region_bytes,
                config.state_bytes - r * config.region_bytes)
            for r in regions
        )
        manifest = config.regions * MANIFEST_ENTRY_BYTES
        fd = yield from self.shim.open(self._path(step), "w")
        yield from self.shim.write(fd, max(1, nbytes + manifest))
        yield from self.shim.fsync(fd)
        yield from self.shim.close(fd)
        meta = _CheckpointMeta(step, self.is_full(step), len(regions), nbytes + manifest)
        self.history.append(meta)
        self.bytes_written += meta.nbytes
        return meta

    def restore(self) -> Generator[Event, Any, int]:
        """Read newest full checkpoint + all increments after it."""
        full_index = max(
            (i for i, m in enumerate(self.history) if m.full), default=None
        )
        if full_index is None:
            from repro.errors import RecoveryError

            raise RecoveryError("no full checkpoint to restore from")
        total = 0
        for meta in self.history[full_index:]:
            fd = yield from self.shim.open(self._path(meta.step), "r")
            yield from self.shim.read(fd, meta.nbytes)
            yield from self.shim.close(fd)
            total += meta.nbytes
        return total
