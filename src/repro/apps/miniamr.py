"""miniAMR proxy: adaptive mesh refinement checkpointing (§IV-A).

"Most applications in the ECP application suite, including AMG, Ember,
ExaMiniMD, and miniAMR have similar behavior and are likely to show
similar improvements as CoMD."

miniAMR differs from CoMD in one way that matters to a storage balancer:
adaptive refinement makes per-rank state *unequal* and *time-varying* —
ranks near the refinement front carry more blocks, and the distribution
drifts between checkpoints. The proxy models block counts with a seeded
log-normal skew that re-mixes every interval, so the balancer faces the
worst case for round-robin placement: equal file *counts* but unequal
file *sizes*. The `ext_skewed_balance` experiment quantifies how much of
Figure 7(b)'s "perfect balance" survives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from repro.apps.checkpoint import CheckpointStats, nn_checkpoint
from repro.bench import calibration as cal
from repro.sim.engine import Event

__all__ = ["MiniAMRConfig", "MiniAMRProxy"]


@dataclass(frozen=True)
class MiniAMRConfig:
    """One miniAMR run's shape."""

    mean_blocks_per_rank: int = 512
    block_state_bytes: int = 256 * 1024  # one mesh block's checkpoint state
    checkpoints: int = 10
    #: sigma of the log-normal block-count skew (0 = CoMD-like, equal).
    refinement_skew: float = 0.6
    #: fraction of blocks re-refined (re-drawn) each interval.
    churn: float = 0.3
    directory: str = "/ckpt"

    def __post_init__(self) -> None:
        if self.mean_blocks_per_rank < 1 or self.block_state_bytes <= 0:
            raise ValueError("block counts/sizes must be positive")
        if self.refinement_skew < 0:
            raise ValueError("refinement_skew must be >= 0")
        if not 0.0 <= self.churn <= 1.0:
            raise ValueError("churn must be in [0, 1]")

    @property
    def mean_checkpoint_bytes(self) -> int:
        return self.mean_blocks_per_rank * self.block_state_bytes


class MiniAMRProxy:
    """Runs the refine/compute/checkpoint loop of miniAMR on one rank."""

    def __init__(self, config: MiniAMRConfig, seed: int = 0):
        self.config = config
        self.seed = seed

    def _initial_blocks(self, rng: np.random.Generator) -> float:
        config = self.config
        if config.refinement_skew == 0:
            return float(config.mean_blocks_per_rank)
        # Log-normal with the requested sigma, normalised to the mean.
        draw = rng.lognormal(mean=0.0, sigma=config.refinement_skew)
        normaliser = float(np.exp(config.refinement_skew**2 / 2.0))
        return config.mean_blocks_per_rank * draw / normaliser

    def _refine(self, blocks: float, rng: np.random.Generator) -> float:
        """Re-draw a churn-fraction of the load (the moving front)."""
        fresh = self._initial_blocks(rng)
        return (1.0 - self.config.churn) * blocks + self.config.churn * fresh

    def rank_main(self, shim, comm) -> Generator[Event, Any, CheckpointStats]:
        env = shim.env
        config = self.config
        rng = np.random.default_rng((self.seed, comm.rank, 0xA312))
        stats = CheckpointStats()
        from repro.errors import FileExists

        try:
            yield from shim.mkdir(config.directory)
        except FileExists:
            pass
        blocks = self._initial_blocks(rng)
        for step in range(config.checkpoints):
            # Compute scales with this rank's current block count.
            compute = blocks * config.block_state_bytes * 2.0e-11 + \
                blocks * 64 * cal.COMD_COMPUTE_SECONDS_PER_ATOM
            yield env.timeout(compute)
            stats.compute_time += compute
            nbytes = max(config.block_state_bytes, int(blocks) * config.block_state_bytes)
            yield from nn_checkpoint(
                shim, comm, step, nbytes, stats, directory=config.directory
            )
            blocks = self._refine(blocks, rng)
        return stats
