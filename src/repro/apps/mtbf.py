"""Failure-driven application campaigns (the paper's §I motivation).

"Prior work estimates that their [exascale systems'] mean time between
failure (MTBF) will be less than 30 minutes. Exascale applications must
protect themselves from unavoidable failures by checkpointing internal
state to persistent storage."

This module closes the loop the paper motivates but does not simulate:
given an MTBF, a storage system, and a checkpoint interval, run a long
application campaign with random (exponential) failures — every failure
rolls the application back to its last completed checkpoint and replays
the lost work after a restart read. The output is *effective progress*
(useful compute over wall time), which is what faster checkpointing
actually buys at exascale.

:func:`young_interval` / :func:`daly_interval` give the classic optimal
checkpoint periods, so the campaign can also validate that the measured
optimum lands near Daly's prediction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Generator, Iterable, List, Optional

import numpy as np

from repro.faults.model import NodeCrash, blast_radius
from repro.faults.timeline import FaultTimeline
from repro.sim.engine import Event

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "FailureCampaign",
    "daly_interval",
    "young_interval",
]


def young_interval(mtbf: float, checkpoint_cost: float) -> float:
    """Young's first-order optimal checkpoint period: sqrt(2 * C * M)."""
    if mtbf <= 0 or checkpoint_cost <= 0:
        raise ValueError("mtbf and checkpoint_cost must be positive")
    return math.sqrt(2.0 * checkpoint_cost * mtbf)


def daly_interval(mtbf: float, checkpoint_cost: float) -> float:
    """Daly's higher-order refinement of Young's period."""
    if mtbf <= 0 or checkpoint_cost <= 0:
        raise ValueError("mtbf and checkpoint_cost must be positive")
    if checkpoint_cost < mtbf / 2.0:
        ratio = checkpoint_cost / (2.0 * mtbf)
        return math.sqrt(2.0 * checkpoint_cost * mtbf) * (
            1.0 + math.sqrt(ratio) / 3.0 + ratio / 9.0
        ) - checkpoint_cost
    return mtbf  # degenerate regime: checkpoint as often as you can


@dataclass(frozen=True)
class CampaignConfig:
    """One campaign's parameters (all in simulated seconds/bytes)."""

    total_compute: float  # useful work the app must accumulate
    checkpoint_interval: float  # compute time between checkpoints
    checkpoint_bytes: int  # per-rank checkpoint size
    mtbf: float  # cluster-level mean time between failures
    restart_cost: float = 5.0  # scheduler requeue + relaunch overhead
    max_failures: int = 10_000

    def __post_init__(self) -> None:
        if min(self.total_compute, self.checkpoint_interval, self.mtbf) <= 0:
            raise ValueError("times must be positive")
        if self.checkpoint_bytes <= 0:
            raise ValueError("checkpoint_bytes must be positive")


@dataclass
class CampaignResult:
    """What happened over the campaign."""

    wall_time: float = 0.0
    compute_done: float = 0.0
    failures: int = 0
    checkpoints_written: int = 0
    restarts: int = 0
    lost_work: float = 0.0
    checkpoint_time: float = 0.0
    restart_time: float = 0.0

    @property
    def effective_progress(self) -> float:
        return self.compute_done / self.wall_time if self.wall_time > 0 else 0.0


class FailureCampaign:  # reproflow: ignore[FLOW103] (single campaign coroutine owns state)
    """Drives one rank's compute/checkpoint/fail/restart loop.

    The storage system is any intercepted-POSIX ``shim``; failures are
    exponential with the configured MTBF, drawn from a seeded stream so
    campaigns are reproducible and comparable across storage systems
    (common random numbers: the same failure times hit every system).

    ``fault_times`` switches the campaign to injector-fed mode: instead
    of sampling its own exponential clock, failures strike at the given
    *absolute* simulated times (e.g. from
    :func:`repro.faults.hazard.campaign_failure_times`, which draws the
    identical sequence for every system under comparison). A
    :class:`~repro.faults.timeline.FaultTimeline` may be passed to get
    one observable record per failure/rollback.
    """

    def __init__(
        self,
        shim,
        config: CampaignConfig,
        seed: int = 0,
        rank: int = 0,
        fault_times: Optional[Iterable[float]] = None,
        timeline: Optional[FaultTimeline] = None,
    ):
        self.shim = shim
        self.config = config
        self.rank = rank
        self.rng = np.random.default_rng((seed, rank, 0xFA11))
        self.result = CampaignResult()
        self.timeline = timeline
        self._fault_iter = iter(fault_times) if fault_times is not None else None
        self._dir_made = False
        self._kept: List[int] = []

    def _path(self, index: int) -> str:
        return f"/ckpt/rank{self.rank:05d}_c{index:06d}.dat"

    def _next_failure(self) -> float:
        return float(self.rng.exponential(self.config.mtbf))

    def _next_failure_at(self) -> float:
        """Absolute time of the next strike (inf when the injector-fed
        schedule is exhausted)."""
        if self._fault_iter is not None:
            return next(self._fault_iter, float("inf"))
        return self.shim.env.now + self._next_failure()

    def _fail_and_restart(
        self, lost: float, last_ckpt_index: Optional[int]
    ) -> Generator[Event, Any, float]:
        """One failure's aftermath: account the lost work, pay the
        scheduler requeue, restore from the last durable checkpoint.
        Returns the next failure time."""
        env = self.shim.env
        result = self.result
        result.failures += 1
        result.lost_work += lost
        record = None
        if self.timeline is not None:
            fault = NodeCrash(f"campaign-rank{self.rank:05d}")
            record = self.timeline.record(fault, env.now, blast_radius(fault))
            self.timeline.mark_detected(record, env.now)
        yield env.timeout(self.config.restart_cost)
        if last_ckpt_index is not None:
            t0 = env.now
            yield from self._restore(last_ckpt_index)
            result.restart_time += env.now - t0
            result.restarts += 1
        if record is not None:
            self.timeline.mark_recovered(
                record,
                env.now,
                level=1,
                restored_from="last durable checkpoint",
                bytes_replayed=(
                    self.config.checkpoint_bytes if last_ckpt_index is not None else 0
                ),
                ranks_restarted=1,
                note="campaign rollback + restart read",
            )
        return self._next_failure_at()

    def run(self) -> Generator[Event, Any, CampaignResult]:
        """Run to completion (or the failure cap); returns the result."""
        env = self.shim.env
        config = self.config
        result = self.result
        start = env.now
        if not self._dir_made:
            from repro.errors import FileExists

            try:
                yield from self.shim.mkdir("/ckpt")
            except FileExists:
                pass
            self._dir_made = True

        next_failure_at = self._next_failure_at()
        saved_progress = 0.0  # compute captured by the last durable ckpt
        segment_done = 0.0  # compute since that checkpoint
        last_ckpt_index: Optional[int] = None

        while saved_progress + segment_done < config.total_compute:
            if result.failures >= config.max_failures:
                break
            # Work until the next checkpoint boundary or failure.
            remaining = config.total_compute - saved_progress - segment_done
            until_ckpt = min(config.checkpoint_interval - segment_done, remaining)
            if env.now + until_ckpt >= next_failure_at:
                # Fail mid-segment: lose the segment, restart.
                worked = max(0.0, next_failure_at - env.now)
                yield env.timeout(worked)
                next_failure_at = yield from self._fail_and_restart(
                    segment_done + worked, last_ckpt_index
                )
                segment_done = 0.0
                continue
            yield env.timeout(until_ckpt)
            segment_done += until_ckpt
            result.compute_done = saved_progress + segment_done
            if saved_progress + segment_done >= config.total_compute:
                break  # done; no final checkpoint needed
            if segment_done >= config.checkpoint_interval:
                # Checkpoint; a failure during the dump loses the segment.
                index = result.checkpoints_written
                t0 = env.now
                try_failed = False
                yield from self._checkpoint(index)
                if env.now >= next_failure_at:
                    # The failure hit during the dump: checkpoint invalid.
                    try_failed = True
                result.checkpoint_time += env.now - t0
                if try_failed:
                    next_failure_at = yield from self._fail_and_restart(
                        segment_done, last_ckpt_index
                    )
                    segment_done = 0.0
                    continue
                result.checkpoints_written += 1
                last_ckpt_index = index
                saved_progress += segment_done
                segment_done = 0.0
                # Garbage-collect: keep the newest two checkpoints (the
                # live one plus a fallback), unlink everything older.
                self._kept.append(index)
                while len(self._kept) > 2:
                    victim = self._kept.pop(0)
                    yield from self.shim.unlink(self._path(victim))
        result.compute_done = min(
            config.total_compute, saved_progress + segment_done
        )
        result.wall_time = env.now - start
        return result

    # -- storage operations ---------------------------------------------------------

    def _checkpoint(self, index: int) -> Generator[Event, Any, None]:
        fd = yield from self.shim.open(self._path(index), "w")
        yield from self.shim.write(fd, self.config.checkpoint_bytes)
        yield from self.shim.fsync(fd)
        yield from self.shim.close(fd)

    def _restore(self, index: int) -> Generator[Event, Any, None]:
        fd = yield from self.shim.open(self._path(index), "r")
        yield from self.shim.read(fd, self.config.checkpoint_bytes)
        yield from self.shim.close(fd)
