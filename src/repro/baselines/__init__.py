"""Baseline storage systems the paper compares against (§IV).

Every baseline runs over the *same* simulated SSDs and fabric as
NVMe-CR and differs exactly where the paper says it differs:

* :mod:`posixfs`   — ext4 / XFS: kernel data path, page cache + fsync
  writeback, journaling (Figure 7(c)).
* :mod:`spdk`      — raw SPDK: userspace data path, no filesystem
  (Figure 7(c)'s lower bound).
* :mod:`orangefs`  — striping, shared namespace, layered server stack
  (Figures 1, 7(b), 8(b), 9).
* :mod:`glusterfs` — jump-consistent-hash placement, serialised
  directory entries (Figures 1, 7(b), 8(b), 9).
* :mod:`crail`     — SPDK data plane but a single metadata server
  (Figures 7(c)/8(a) comparisons).
* :mod:`lustre`    — the PFS second tier for multi-level checkpointing
  (Table II).
* :mod:`burstfs`   — a node-local burst buffer (BurstFS/UnifyFS-class),
  the §II-B design NVMe-CR's disaggregation argument contrasts with.

All clients expose the same duck-typed intercepted-POSIX surface as
:class:`~repro.core.interception.PosixShim`, so the CoMD proxy and the
checkpoint drivers run unmodified against any of them.
"""

from repro.baselines.burstfs import BurstBufferCluster
from repro.baselines.common import BaselineClient, StorageServer
from repro.baselines.crail import CrailCluster
from repro.baselines.glusterfs import GlusterFSCluster
from repro.baselines.lustre import LustreCluster
from repro.baselines.orangefs import OrangeFSCluster
from repro.baselines.posixfs import KernelFSClient
from repro.baselines.spdk import RawSPDKClient

__all__ = [
    "BaselineClient",
    "BurstBufferCluster",
    "CrailCluster",
    "GlusterFSCluster",
    "KernelFSClient",
    "LustreCluster",
    "OrangeFSCluster",
    "RawSPDKClient",
    "StorageServer",
]
