"""Node-local burst-buffer baseline (BurstFS/UnifyFS-class, §II-B).

"Other works like PapyrusKV, UnifyCR, and BurstFS present a burst buffer
design using node local storage to accelerate C/R IO as opposed to
NVMe-CR that is targeted towards a disaggregated setup."

Each *compute* node gets a local SSD; ranks checkpoint to their node's
device at local speed and a background drainer pushes data to a PFS.
The design trades exactly what the paper's balancer refuses to trade:
the checkpoint lives in the *same failure domain* as the process it
protects. The comparison bench quantifies both sides:

* checkpoint dumps are fast (no fabric, node-local bandwidth scales
  with compute nodes);
* a compute-node failure takes the newest local checkpoints with it —
  recovery falls back to whatever the drainer had pushed to the PFS,
  losing up to a full drain lag of work.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Set

from repro.baselines.lustre import LustreCluster
from repro.bench import calibration as cal
from repro.errors import BadFileDescriptor, FileNotFound, OutOfSpace, RecoveryError
from repro.io.qos import QoSClass
from repro.nvme.commands import Payload
from repro.nvme.device import SSD, SSDSpec, generic_nand_ssd
from repro.sim.engine import Environment, Event
from repro.sim.rng import RngHub
from repro.obs.metrics import Counter
from repro.units import GiB, KiB

__all__ = ["BurstBufferCluster", "BurstBufferClient"]


@dataclass
class _BFile:
    path: str
    node: str
    size: int = 0
    offset: int = -1
    drained: bool = False


@dataclass
class _BFD:
    fd: int
    file: _BFile
    pos: int = 0
    open_: bool = True


class BurstBufferCluster:
    """One local SSD per compute node + a PFS drain target."""

    def __init__(
        self,
        env: Environment,
        compute_nodes: List[str],
        pfs: Optional[LustreCluster] = None,
        node_ssd_spec: Optional[SSDSpec] = None,
        namespace_bytes: int = GiB(64),
        seed: int = 0,
    ):
        self.env = env
        self.pfs = pfs if pfs is not None else LustreCluster(env)
        rng = RngHub(seed)
        spec = node_ssd_spec or generic_nand_ssd()
        self.node_ssds: Dict[str, SSD] = {}
        self.node_namespaces: Dict[str, int] = {}
        self._cursors: Dict[str, int] = {}
        for node in compute_nodes:
            ssd = SSD(env, spec, f"local-{node}", rng=rng.stream(f"bb.{node}"))
            ns = ssd.create_namespace(namespace_bytes, owner_job="burstfs")
            self.node_ssds[node] = ssd
            self.node_namespaces[node] = ns.nsid
            self._cursors[node] = 0
        self.files: Dict[str, _BFile] = {}
        self.failed_nodes: Set[str] = set()
        self.counters = Counter()

    def allocate(self, node: str, nbytes: int) -> int:
        aligned = -(-nbytes // 4096) * 4096
        nsid = self.node_namespaces[node]
        limit = self.node_ssds[node].namespace(nsid).nbytes
        if self._cursors[node] + aligned > limit:
            raise OutOfSpace(f"burst buffer on {node} full")
        offset = self._cursors[node]
        self._cursors[node] += aligned
        return offset

    def client(self, name: str, node: str) -> "BurstBufferClient":
        return BurstBufferClient(self, name, node)

    # -- failure injection --------------------------------------------------------------

    def fail_node(self, node: str) -> None:
        """A compute node dies: its local burst buffer dies with it."""
        self.failed_nodes.add(node)
        self.node_ssds[node].power_fail()

    def drain_lag_files(self) -> int:
        return sum(1 for f in self.files.values() if not f.drained)


class BurstBufferClient:
    """One rank's burst-buffer mount on its own compute node."""

    def __init__(self, cluster: BurstBufferCluster, name: str, node: str):
        self.cluster = cluster
        self.env = cluster.env
        self.name = name
        self.node = node
        self.ssd = cluster.node_ssds[node]
        self.nsid = cluster.node_namespaces[node]
        self.counters = Counter()
        self._fds: Dict[int, _BFD] = {}
        self._fd_counter = itertools.count(3)

    # -- shim surface ----------------------------------------------------------------------

    def open(self, path: str, mode: str = "r") -> Generator[Event, Any, int]:
        yield self.env.timeout(cal.METADATA_OP_CPU)
        file = self.cluster.files.get(path)
        if file is None:
            if mode == "r":
                raise FileNotFound(path)
            file = _BFile(path=path, node=self.node)
            self.cluster.files[path] = file
            self.counters.add("creates")
        fd = _BFD(next(self._fd_counter), file)
        if mode == "a":
            fd.pos = file.size
        self._fds[fd.fd] = fd
        return fd.fd

    def _fd(self, fd: int) -> _BFD:
        entry = self._fds.get(fd)
        if entry is None or not entry.open_:
            raise BadFileDescriptor(f"fd {fd}")
        return entry

    def write(self, fd: int, data) -> Generator[Event, Any, int]:
        entry = self._fd(fd)
        nbytes = data if isinstance(data, int) else (
            data.nbytes if isinstance(data, Payload) else len(data)
        )
        payload = (
            data if isinstance(data, Payload)
            else Payload.synthetic(f"{self.name}:{entry.file.path}", nbytes)
            if isinstance(data, int)
            else Payload.of_bytes(data)
        )
        n_cmds = max(1, -(-nbytes // KiB(128)))
        yield self.env.timeout(n_cmds * cal.SPDK_SUBMIT_COST)
        offset = self.cluster.allocate(self.node, max(nbytes, 1))
        if entry.file.offset < 0:
            entry.file.offset = offset
        yield self.ssd.write(self.nsid, offset, payload, KiB(128), qos=QoSClass.CKPT_DATA)
        entry.pos += nbytes
        entry.file.size = max(entry.file.size, entry.pos)
        entry.file.drained = False
        self.counters.add("app_bytes_written", nbytes)
        return nbytes

    def pwrite(self, fd: int, data, offset: int) -> Generator[Event, Any, int]:
        entry = self._fd(fd)
        entry.pos = offset
        return (yield from self.write(fd, data))

    def read(self, fd: int, nbytes: int) -> Generator[Event, Any, List[Payload]]:
        entry = self._fd(fd)
        nbytes = max(0, min(nbytes, entry.file.size - entry.pos))
        if nbytes:
            file = entry.file
            if file.node in self.cluster.failed_nodes:
                if not file.drained:
                    raise RecoveryError(
                        f"{file.path}: burst buffer on {file.node} lost and "
                        f"file never drained to the PFS"
                    )
                yield from self.cluster.pfs.read_file(file.path)
            elif file.node == self.node:
                yield self.ssd.read(
                    self.nsid, max(file.offset, 0), nbytes, KiB(128),
                    qos=QoSClass.BEST_EFFORT,
                )
            else:
                # Cross-node read: remote ranks pull via the PFS copy.
                if not file.drained:
                    raise RecoveryError(
                        f"{file.path}: resides on {file.node}'s local buffer, "
                        f"not yet drained — unreachable from {self.node}"
                    )
                yield from self.cluster.pfs.read_file(file.path)
        entry.pos += nbytes
        self.counters.add("app_bytes_read", nbytes)
        return [Payload.synthetic(entry.file.path, nbytes)] if nbytes else []

    def pread(self, fd: int, nbytes: int, offset: int) -> Generator[Event, Any, List[Payload]]:
        entry = self._fd(fd)
        entry.pos = offset
        return (yield from self.read(fd, nbytes))

    def fsync(self, fd: int) -> Generator[Event, Any, None]:
        self._fd(fd)
        yield self.ssd.flush(self.nsid)

    def close(self, fd: int) -> Generator[Event, Any, None]:
        entry = self._fd(fd)
        yield self.env.timeout(0)
        entry.open_ = False
        del self._fds[fd]

    def mkdir(self, path: str, mode: int = 0o755) -> Generator[Event, Any, None]:
        yield self.env.timeout(cal.METADATA_OP_CPU)

    def unlink(self, path: str) -> Generator[Event, Any, None]:
        yield self.env.timeout(cal.METADATA_OP_CPU)
        self.cluster.files.pop(path, None)

    def stat(self, path: str) -> _BFile:
        file = self.cluster.files.get(path)
        if file is None:
            raise FileNotFound(path)
        return file

    # -- draining -------------------------------------------------------------------------

    def drain(self, path: str) -> Generator[Event, Any, None]:
        """Push one file's data from the local buffer to the PFS."""
        file = self.stat(path)
        yield self.ssd.read(
            self.nsid, max(file.offset, 0), file.size, KiB(128),
            qos=QoSClass.BEST_EFFORT,
        )
        yield from self.cluster.pfs.write_file(path, file.size)
        file.drained = True
        self.cluster.counters.add("drained_bytes", file.size)
