"""Shared machinery for distributed baseline filesystems.

A baseline *cluster* owns one :class:`StorageServer` per storage node —
a namespace on that node's SSD, a bump allocator over it, and an IO
service resource modelling the server's software stack throughput
ceiling ("these storage systems overlay multiple software layers over
POSIX filesystems which decrease the peak attainable bandwidth", §I-A).

A baseline *client* (one per rank) implements the same duck-typed
intercepted-POSIX surface as :class:`~repro.core.interception.PosixShim`
so workloads are system-agnostic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.errors import BadFileDescriptor, FileExists, FileNotFound, InvalidArgument, OutOfSpace
from repro.io.qos import QoSClass
from repro.nvme.commands import Payload
from repro.nvme.device import SSD
from repro.nvme.namespace import Namespace
from repro.bench import calibration as cal
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource
from repro.obs.metrics import Counter

__all__ = ["StorageServer", "BaselineFile", "BaselineClient"]


class StorageServer:  # reproflow: ignore[FLOW103] (one server coroutine per instance)
    """One storage node of a distributed baseline filesystem."""

    def __init__(
        self,
        env: Environment,
        node_name: str,
        ssd: SSD,
        namespace: Namespace,
        io_service_time: float,
        io_chunk_bytes: int,
        io_parallelism: int = 1,
    ):
        self.env = env
        self.node_name = node_name
        self.ssd = ssd
        self.namespace = namespace
        self.io_service_time = io_service_time
        self.io_chunk_bytes = io_chunk_bytes
        self.io_resource = Resource(env, capacity=io_parallelism)
        self._cursor = 0
        self.counters = Counter()

    def _allocate(self, nbytes: int) -> int:
        aligned = -(-nbytes // 4096) * 4096
        if self._cursor + aligned > self.namespace.nbytes:
            raise OutOfSpace(f"{self.node_name}: baseline namespace full")
        offset = self._cursor
        self._cursor += aligned
        return offset

    def write_chunk(
        self,
        payload: Payload,
        command_size: Optional[int] = None,
        qos: QoSClass = QoSClass.CKPT_DATA,
    ) -> Generator[Event, Any, int]:
        """Serve one chunk through the server stack, then hit the device.

        The service resource is held for the software time only; device
        transfers from different requests overlap (the device itself is
        the shared fair-share resource). Returns the device offset.
        Baselines speak the envelope's traffic classes too, so the qos
        experiment's per-class accounting covers every system.
        """
        n_chunks = max(1, -(-payload.nbytes // self.io_chunk_bytes))
        yield from self.io_resource.serve(n_chunks * self.io_service_time)
        offset = self._allocate(payload.nbytes)
        yield self.ssd.write(
            self.namespace.nsid, offset, payload,
            command_size or self.io_chunk_bytes, qos=qos,
        )
        self.counters.add("bytes", payload.nbytes)
        return offset

    def read_chunk(
        self,
        offset: int,
        nbytes: int,
        command_size: Optional[int] = None,
        qos: QoSClass = QoSClass.BEST_EFFORT,
    ) -> Generator[Event, Any, None]:
        n_chunks = max(1, -(-nbytes // self.io_chunk_bytes))
        yield from self.io_resource.serve(n_chunks * self.io_service_time)
        yield self.ssd.read(
            self.namespace.nsid, offset, nbytes,
            command_size or self.io_chunk_bytes, qos=qos,
        )


@dataclass
class BaselineFile:
    """Server-side file record of a baseline filesystem."""

    path: str
    size: int = 0
    # (server_index, device_offset, nbytes) pieces in file order.
    placement: List[tuple] = field(default_factory=list)
    # Lazily-created per-file write lock (shared-namespace POSIX
    # semantics: concurrent writers serialise — the N-1 pattern tax).
    lock: Optional[Resource] = None
    writers: set = field(default_factory=set)


@dataclass
class _FD:
    fd: int
    file: BaselineFile
    pos: int = 0
    open_: bool = True


class BaselineClient:
    """Common fd-table plumbing; subclasses implement the data/metadata
    paths via ``_do_create``, ``_do_write``, ``_do_read``, ``_do_fsync``,
    ``_do_unlink``, ``_do_mkdir``."""

    def __init__(self, env: Environment, name: str, files: Dict[str, BaselineFile],
                 dirs: set, counters: Optional[Counter] = None):
        self.env = env
        self.name = name
        self.files = files  # shared, global namespace!
        self.dirs = dirs
        self.counters = counters if counters is not None else Counter()
        self._fds: Dict[int, _FD] = {}
        self._fd_counter = itertools.count(3)

    # -- shim surface ---------------------------------------------------------------

    def open(self, path: str, mode: str = "r") -> Generator[Event, Any, int]:
        if mode not in ("r", "w", "a", "x"):
            raise InvalidArgument(f"unsupported mode {mode!r}")
        file = self.files.get(path)
        if mode == "r":
            if file is None:
                raise FileNotFound(path)
        elif mode == "x" and file is not None:
            raise FileExists(path)
        elif file is None:
            # Reserve the name *before* the create's simulated time
            # elapses: O_CREAT is atomic, so concurrent creators of the
            # same path must converge on one file object.
            file = BaselineFile(path=path)
            self.files[path] = file
            yield from self._do_create(path)
            self.counters.add("creates")
        elif mode == "w":
            file.size = 0  # truncate; no create cost
        fd = _FD(next(self._fd_counter), file)
        if mode == "a":
            fd.pos = file.size
        self._fds[fd.fd] = fd
        self.counters.add("opens")
        return fd.fd

    def _fd(self, fd: int) -> _FD:
        entry = self._fds.get(fd)
        if entry is None or not entry.open_:
            raise BadFileDescriptor(f"fd {fd}")
        return entry

    def _file_lock(self, file: BaselineFile, nbytes: int) -> Generator[Event, Any, None]:
        """POSIX shared-file range locking (see SHARED_FILE_LOCK_SERVICE).

        Only files with more than one writer pay: the first writer of a
        fresh file proceeds lock-free (N-N is unaffected); once a second
        writer appears, every 1 MiB lock unit serialises on the file's
        lock — the N-1 collapse."""
        file.writers.add(self.name)
        if len(file.writers) < 2:
            return
        if file.lock is None:
            file.lock = Resource(self.env, capacity=1)
        units = max(1, -(-nbytes // cal.SHARED_FILE_LOCK_UNIT))
        yield from file.lock.serve(units * cal.SHARED_FILE_LOCK_SERVICE)

    def write(self, fd: int, data) -> Generator[Event, Any, int]:
        entry = self._fd(fd)
        payload = self._payload(data, entry)
        yield from self._file_lock(entry.file, payload.nbytes)
        written = yield from self._do_write(entry.file, entry.pos, payload)
        entry.pos += written
        entry.file.size = max(entry.file.size, entry.pos)
        self.counters.add("app_bytes_written", written)
        return written

    def pwrite(self, fd: int, data, offset: int) -> Generator[Event, Any, int]:
        entry = self._fd(fd)
        payload = self._payload(data, entry)
        yield from self._file_lock(entry.file, payload.nbytes)
        written = yield from self._do_write(entry.file, offset, payload)
        entry.file.size = max(entry.file.size, offset + written)
        self.counters.add("app_bytes_written", written)
        return written

    def read(self, fd: int, nbytes: int) -> Generator[Event, Any, List[Payload]]:
        entry = self._fd(fd)
        nbytes = max(0, min(nbytes, entry.file.size - entry.pos))
        if nbytes:
            yield from self._do_read(entry.file, entry.pos, nbytes)
        entry.pos += nbytes
        self.counters.add("app_bytes_read", nbytes)
        return [Payload.synthetic(f"{entry.file.path}@{entry.pos}", nbytes)] if nbytes else []

    def pread(self, fd: int, nbytes: int, offset: int) -> Generator[Event, Any, List[Payload]]:
        entry = self._fd(fd)
        nbytes = max(0, min(nbytes, entry.file.size - offset))
        if nbytes:
            yield from self._do_read(entry.file, offset, nbytes)
        return [Payload.synthetic(f"{entry.file.path}@{offset}", nbytes)] if nbytes else []

    def fsync(self, fd: int) -> Generator[Event, Any, None]:
        entry = self._fd(fd)
        yield from self._do_fsync(entry.file)

    def close(self, fd: int) -> Generator[Event, Any, None]:
        entry = self._fd(fd)
        entry.open_ = False
        del self._fds[fd]
        yield self.env.timeout(0)

    def mkdir(self, path: str, mode: int = 0o755) -> Generator[Event, Any, None]:
        if path in self.dirs:
            raise FileExists(path)
        yield from self._do_mkdir(path)
        self.dirs.add(path)

    def unlink(self, path: str) -> Generator[Event, Any, None]:
        file = self.files.get(path)
        if file is None:
            raise FileNotFound(path)
        yield from self._do_unlink(file)
        del self.files[path]

    def stat(self, path: str) -> BaselineFile:
        file = self.files.get(path)
        if file is None:
            raise FileNotFound(path)
        return file

    def listdir(self, path: str) -> List[str]:
        prefix = path.rstrip("/") + "/"
        return sorted(
            p[len(prefix):] for p in self.files if p.startswith(prefix) and "/" not in p[len(prefix):]
        )

    # -- helpers -------------------------------------------------------------------------

    def _payload(self, data, entry: _FD) -> Payload:
        if isinstance(data, Payload):
            return data
        if isinstance(data, bytes):
            return Payload.of_bytes(data)
        if isinstance(data, int):
            return Payload.synthetic(f"{self.name}:{entry.file.path}:{entry.pos}", data)
        raise InvalidArgument(f"unsupported write data {type(data)!r}")

    # -- subclass hooks --------------------------------------------------------------------

    def _do_create(self, path: str) -> Generator[Event, Any, None]:
        """Charge the system-specific create cost (the file object is
        already reserved by ``open``; any return value is ignored)."""
        raise NotImplementedError

    def _do_write(self, file: BaselineFile, offset: int, payload: Payload) -> Generator[Event, Any, int]:
        raise NotImplementedError

    def _do_read(self, file: BaselineFile, offset: int, nbytes: int) -> Generator[Event, Any, None]:
        raise NotImplementedError

    def _do_fsync(self, file: BaselineFile) -> Generator[Event, Any, None]:
        yield self.env.timeout(0)

    def _do_mkdir(self, path: str) -> Generator[Event, Any, None]:
        yield self.env.timeout(0)

    def _do_unlink(self, file: BaselineFile) -> Generator[Event, Any, None]:
        yield self.env.timeout(0)
