"""Crail model: SPDK/NVMf data plane + a single metadata server.

§IV: "its publicly available version only supports a single NVMe
server" and "Crail uses a single metadata server which becomes a
bottleneck at high-concurrency". §IV-F: despite the same SPDK data
path, Crail runs 5-10 % behind NVMe-CR on remote access because every
block allocation is an RPC to the metadata server carrying inode-sized
payloads — the traffic metadata provenance eliminates.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Any, Dict, Generator, List

from repro.apps.deployment import Deployment
from repro.bench import calibration as cal
from repro.errors import BadFileDescriptor, FileNotFound, OutOfSpace
from repro.fabric.nvmf import NVMfInitiator
from repro.io.qos import QoSClass
from repro.nvme.commands import Payload
from repro.sim.engine import Event
from repro.sim.resources import Resource
from repro.obs.metrics import Counter
from repro.units import KiB

__all__ = ["CrailCluster", "CrailClient"]


@dataclass
class _CFile:
    path: str
    size: int = 0
    blocks: int = 0  # block count allocated via the MDS


@dataclass
class _CFD:
    fd: int
    file: _CFile
    pos: int = 0
    open_: bool = True


class CrailCluster:
    """One NVMf storage server + one metadata server."""

    def __init__(self, deployment: Deployment, namespace_bytes: int, storage_node: str = None):
        self.env = deployment.env
        self.deployment = deployment
        node = storage_node or deployment.cluster.storage_nodes()[0].name
        self.storage_node = node
        self.ssd = deployment.ssds[node]
        self.namespace = self.ssd.create_namespace(namespace_bytes, owner_job="crail")
        self.target = deployment.targets[node][0]
        # The single metadata server (runs on the storage node).
        self.mds = Resource(self.env, capacity=1)
        self.mds_node = node
        self.files: Dict[str, _CFile] = {}
        self._cursor = 0
        self.counters = Counter()

    def allocate(self, nbytes: int) -> int:
        aligned = -(-nbytes // 4096) * 4096
        if self._cursor + aligned > self.namespace.nbytes:
            raise OutOfSpace("crail namespace full")
        offset = self._cursor
        self._cursor += aligned
        return offset

    def client(self, name: str, node_name: str) -> "CrailClient":
        return CrailClient(self, name, node_name)


class CrailClient:
    """One rank's Crail endpoint (shim-compatible)."""

    def __init__(self, cluster: CrailCluster, name: str, node_name: str):
        self.cluster = cluster
        self.env = cluster.env
        self.name = name
        self.node_name = node_name
        self.counters = Counter()
        self._fds: Dict[int, _CFD] = {}
        self._fd_counter = itertools.count(3)
        initiator = NVMfInitiator(self.env, node_name, cluster.deployment.fabric)
        self.session = initiator.connect(cluster.target)

    # -- metadata RPC -------------------------------------------------------------------

    def _mds_rpc(self, wire_bytes: int = 0) -> Generator[Event, Any, None]:
        """One round trip to the single metadata server."""
        fabric = self.cluster.deployment.fabric
        rtt = fabric.round_trip(self.node_name, self.cluster.mds_node)
        wire = wire_bytes / fabric.spec.link_bandwidth
        yield self.env.timeout(rtt + wire)
        yield from self.cluster.mds.serve(cal.CRAIL_MDS_SERVICE)
        self.counters.add("mds_rpcs")
        self.counters.add("mds_wire_bytes", wire_bytes)

    # -- shim surface ---------------------------------------------------------------------

    def open(self, path: str, mode: str = "r") -> Generator[Event, Any, int]:
        yield from self._mds_rpc(cal.CRAIL_INODE_WIRE_BYTES)
        file = self.cluster.files.get(path)
        if file is None:
            if mode == "r":
                raise FileNotFound(path)
            file = _CFile(path=path)
            self.cluster.files[path] = file
            self.counters.add("creates")
        fd = _CFD(next(self._fd_counter), file)
        if mode == "a":
            fd.pos = file.size
        self._fds[fd.fd] = fd
        return fd.fd

    def _fd(self, fd: int) -> _CFD:
        entry = self._fds.get(fd)
        if entry is None or not entry.open_:
            raise BadFileDescriptor(f"fd {fd}")
        return entry

    def write(self, fd: int, data) -> Generator[Event, Any, int]:
        entry = self._fd(fd)
        nbytes = data if isinstance(data, int) else (
            data.nbytes if isinstance(data, Payload) else len(data)
        )
        payload = (
            data if isinstance(data, Payload)
            else Payload.synthetic(f"{self.name}:{entry.file.path}:{entry.pos}", nbytes)
            if isinstance(data, int)
            else Payload.of_bytes(data)
        )
        # Block allocation: one MDS RPC per Crail block, inode-sized
        # payloads each way. This is the 5-10 % of Figure 8(a).
        end_blocks = math.ceil((entry.pos + nbytes) / cal.CRAIL_BLOCK_BYTES)
        new_blocks = max(0, end_blocks - entry.file.blocks)
        for _ in range(new_blocks):
            yield from self._mds_rpc(cal.CRAIL_INODE_WIRE_BYTES)
        entry.file.blocks = end_blocks
        n_cmds = max(1, math.ceil(nbytes / KiB(128)))
        yield self.env.timeout(n_cmds * cal.SPDK_SUBMIT_COST)
        offset = self.cluster.allocate(max(nbytes, 1))
        yield self.session.write(
            self.cluster.namespace.nsid, offset, payload, KiB(128),
            qos=QoSClass.CKPT_DATA,
        )
        entry.pos += nbytes
        entry.file.size = max(entry.file.size, entry.pos)
        self.counters.add("app_bytes_written", nbytes)
        return nbytes

    def pwrite(self, fd: int, data, offset: int) -> Generator[Event, Any, int]:
        entry = self._fd(fd)
        entry.pos = offset
        return (yield from self.write(fd, data))

    def read(self, fd: int, nbytes: int) -> Generator[Event, Any, List[Payload]]:
        entry = self._fd(fd)
        nbytes = max(0, min(nbytes, entry.file.size - entry.pos))
        if nbytes:
            # Block lookups batched per read but still via the MDS.
            yield from self._mds_rpc(cal.CRAIL_INODE_WIRE_BYTES)
            n_cmds = max(1, math.ceil(nbytes / KiB(128)))
            yield self.env.timeout(n_cmds * cal.SPDK_SUBMIT_COST)
            yield self.session.read(
                self.cluster.namespace.nsid, 0, nbytes, KiB(128),
                qos=QoSClass.BEST_EFFORT,
            )
        entry.pos += nbytes
        self.counters.add("app_bytes_read", nbytes)
        return [Payload.synthetic(entry.file.path, nbytes)] if nbytes else []

    def pread(self, fd: int, nbytes: int, offset: int) -> Generator[Event, Any, List[Payload]]:
        entry = self._fd(fd)
        entry.pos = offset
        return (yield from self.read(fd, nbytes))

    def fsync(self, fd: int) -> Generator[Event, Any, None]:
        self._fd(fd)
        yield self.session.flush(self.cluster.namespace.nsid)

    def close(self, fd: int) -> Generator[Event, Any, None]:
        entry = self._fd(fd)
        yield from self._mds_rpc()  # close updates the inode
        entry.open_ = False
        del self._fds[fd]

    def mkdir(self, path: str, mode: int = 0o755) -> Generator[Event, Any, None]:
        yield from self._mds_rpc(cal.CRAIL_INODE_WIRE_BYTES)

    def unlink(self, path: str) -> Generator[Event, Any, None]:
        yield from self._mds_rpc(cal.CRAIL_INODE_WIRE_BYTES)
        self.cluster.files.pop(path, None)

    def stat(self, path: str) -> _CFile:
        file = self.cluster.files.get(path)
        if file is None:
            raise FileNotFound(path)
        return file
