"""GlusterFS model: consistent-hash placement + decentralised bricks.

What the paper says GlusterFS does (and this model reproduces):

* distributes *whole files* to bricks by consistent hashing — high load
  CoV at low file counts (Figure 7(b), citing Lamping-Veach [17]);
* no central metadata server (decentralised; the best baseline in
  Figure 9), but creates append to the single common directory file,
  serialising (Figure 8(b): ~18x fewer creates/s than NVMe-CR);
* FUSE + translator stack per chunk caps per-brick throughput at ~84 %
  of hardware (Figure 1);
* lookups on open stampede the hashed-dht path at 448 readers — the
  recovery dip of Figure 9(d);
* near-zero per-server metadata (Table I: 3.5 MB).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from repro.apps.deployment import Deployment
from repro.bench import calibration as cal
from repro.baselines.common import BaselineClient, BaselineFile, StorageServer
from repro.hashing.jump import jump_hash
from repro.io.qos import QoSClass
from repro.nvme.commands import Payload
from repro.sim.engine import Event
from repro.sim.resources import Resource

__all__ = ["GlusterFSCluster", "GlusterFSClient"]


class GlusterFSCluster:
    """Cluster-wide GlusterFS state (bricks + DHT)."""

    def __init__(self, deployment: Deployment, namespace_bytes: int):
        self.env = deployment.env
        self.deployment = deployment
        self.servers: List[StorageServer] = []
        for node in deployment.cluster.storage_nodes():
            ssd = deployment.ssds[node.name]
            ns = ssd.create_namespace(namespace_bytes, owner_job="glusterfs")
            self.servers.append(
                StorageServer(
                    self.env, node.name, ssd, ns,
                    io_service_time=cal.GLUSTERFS_SERVER_SERVICE,
                    io_chunk_bytes=cal.GLUSTERFS_CHUNK_BYTES,
                )
            )
        self.directory_lock = Resource(self.env, capacity=1)
        self.lookup_path = Resource(self.env, capacity=1)
        self.files: Dict[str, BaselineFile] = {}
        self.dirs: set = {"/"}

    def client(self, name: str) -> "GlusterFSClient":
        return GlusterFSClient(self, name)

    def brick_of(self, path: str) -> int:
        return jump_hash(path, len(self.servers))

    # -- Table I accounting ------------------------------------------------------------

    def metadata_bytes_per_server(self) -> float:
        """Hash-ring bookkeeping only — tiny and file-count independent."""
        return float(cal.GLUSTERFS_SERVER_METADATA_BYTES)

    def bytes_per_server(self) -> List[int]:
        return [int(s.counters.get("bytes")) for s in self.servers]


class GlusterFSClient(BaselineClient):
    """One rank's FUSE mount."""

    def __init__(self, cluster: GlusterFSCluster, name: str):
        super().__init__(cluster.env, name, cluster.files, cluster.dirs)
        self.cluster = cluster

    # -- metadata path ------------------------------------------------------------------

    def open(self, path: str, mode: str = "r") -> Generator[Event, Any, int]:
        if mode == "r":
            # DHT lookup before the parent resolves the brick.
            yield from self.cluster.lookup_path.serve(cal.GLUSTERFS_LOOKUP_SERVICE)
        return (yield from super().open(path, mode))

    def _do_create(self, path: str) -> Generator[Event, Any, BaselineFile]:
        yield from self.cluster.directory_lock.serve(cal.GLUSTERFS_DIR_ENTRY_SERVICE)
        return BaselineFile(path=path)

    def _do_mkdir(self, path: str) -> Generator[Event, Any, None]:
        yield from self.cluster.directory_lock.serve(cal.GLUSTERFS_DIR_ENTRY_SERVICE)

    def _do_unlink(self, file: BaselineFile) -> Generator[Event, Any, None]:
        yield from self.cluster.directory_lock.serve(cal.GLUSTERFS_DIR_ENTRY_SERVICE)

    # -- data path -----------------------------------------------------------------------

    def _do_write(self, file: BaselineFile, offset: int, payload: Payload) -> Generator[Event, Any, int]:
        if payload.nbytes == 0:
            return 0
        server = self.cluster.servers[self.cluster.brick_of(file.path)]
        chunk_bytes = cal.GLUSTERFS_CHUNK_BYTES
        n_chunks = max(1, -(-payload.nbytes // chunk_bytes))
        # FUSE + translator client path, serialised per client.
        yield self.env.timeout(n_chunks * cal.GLUSTERFS_PER_REQUEST_COST)
        device_offset = yield from server.write_chunk(payload)
        file.placement.append((self.cluster.brick_of(file.path), device_offset, payload.nbytes))
        return payload.nbytes

    def _do_read(self, file: BaselineFile, offset: int, nbytes: int) -> Generator[Event, Any, None]:
        server = self.cluster.servers[self.cluster.brick_of(file.path)]
        chunk_bytes = cal.GLUSTERFS_CHUNK_BYTES
        n_chunks = max(1, -(-nbytes // chunk_bytes))
        yield self.env.timeout(n_chunks * cal.GLUSTERFS_PER_REQUEST_COST)
        yield from server.io_resource.serve(n_chunks * cal.GLUSTERFS_SERVER_READ_SERVICE)
        yield server.ssd.read(
            server.namespace.nsid, 0, nbytes, chunk_bytes,
            qos=QoSClass.BEST_EFFORT,
        )

    def _do_fsync(self, file: BaselineFile) -> Generator[Event, Any, None]:
        yield self.env.timeout(cal.GLUSTERFS_PER_REQUEST_COST)
