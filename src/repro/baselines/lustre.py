"""Lustre model: the slow-but-reliable second checkpoint tier.

§IV-A: "Lustre is used as the PFS and is configured with 4 separate
storage servers, each using one 12 Gbps RAID controller." Each OSS is a
serial pipe at RAID bandwidth; files stripe across all four. Redundancy
(the property multi-level checkpointing buys) is modelled as the tier
simply *surviving* failures injected into the NVMe tier — its clients
expose ``write_file``/``read_file`` for
:class:`~repro.core.multilevel.MultiLevelCheckpointer`.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

from repro.bench import calibration as cal
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource
from repro.sim.trace import Counter
from repro.errors import FileNotFound

__all__ = ["LustreCluster"]


class LustreCluster:
    """Four OSSes behind RAID controllers + one MDS. Durable by design."""

    def __init__(self, env: Environment, servers: int = cal.LUSTRE_SERVERS):
        self.env = env
        self.servers = [Resource(env, capacity=1) for _ in range(servers)]
        self.mds = Resource(env, capacity=1)
        self.files: Dict[str, int] = {}
        self.counters = Counter()

    # -- MultiLevelCheckpointer client surface -----------------------------------------

    def write_file(self, path: str, nbytes: int) -> Generator[Event, Any, None]:
        """Striped write: RAID bandwidth is the bottleneck per OSS."""
        yield from self.mds.serve(cal.LUSTRE_PER_REQUEST_COST)  # open+layout
        stripe = cal.LUSTRE_STRIPE_SIZE
        per_server = [0] * len(self.servers)
        at = 0
        while at < nbytes:
            take = min(stripe, nbytes - at)
            per_server[(at // stripe) % len(self.servers)] += take
            at += take
        events = []
        for server, load in zip(self.servers, per_server):
            if load > 0:
                events.append(self.env.process(self._oss_write(server, load)))
        if events:
            yield self.env.all_of(events)
        self.files[path] = nbytes
        self.counters.add("bytes_written", nbytes)

    def _oss_write(self, server: Resource, nbytes: int):
        # The RAID controller is a serial pipe: hold the OSS for the
        # transfer duration (this is what makes Lustre the slow tier).
        yield from server.serve(
            nbytes / cal.LUSTRE_SERVER_BANDWIDTH + cal.LUSTRE_PER_REQUEST_COST
        )

    def read_file(self, path: str) -> Generator[Event, Any, int]:
        nbytes = self.files.get(path)
        if nbytes is None:
            raise FileNotFound(path)
        yield from self.mds.serve(cal.LUSTRE_PER_REQUEST_COST)
        stripe = cal.LUSTRE_STRIPE_SIZE
        per_server = [0] * len(self.servers)
        at = 0
        while at < nbytes:
            take = min(stripe, nbytes - at)
            per_server[(at // stripe) % len(self.servers)] += take
            at += take
        events = []
        for server, load in zip(self.servers, per_server):
            if load > 0:
                events.append(self.env.process(self._oss_write(server, load)))
        if events:
            yield self.env.all_of(events)
        self.counters.add("bytes_read", nbytes)
        return nbytes

    def aggregate_bandwidth(self) -> float:
        return len(self.servers) * cal.LUSTRE_SERVER_BANDWIDTH
