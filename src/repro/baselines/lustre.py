"""Lustre model: the slow-but-reliable second checkpoint tier.

§IV-A: "Lustre is used as the PFS and is configured with 4 separate
storage servers, each using one 12 Gbps RAID controller." Each OSS is a
serial pipe at RAID bandwidth; files stripe across all four. Redundancy
(the property multi-level checkpointing buys) is modelled as the tier
simply *surviving* failures injected into the NVMe tier — its clients
expose ``write_file``/``read_file`` for
:class:`~repro.core.multilevel.MultiLevelCheckpointer`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Generator, List

from repro.bench import calibration as cal
from repro.nvme.commands import Payload
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource
from repro.obs.metrics import Counter
from repro.errors import (
    BadFileDescriptor,
    FileExists,
    FileNotFound,
    InvalidArgument,
)

__all__ = ["LustreCluster", "LustreClient"]


class LustreCluster:
    """Four OSSes behind RAID controllers + one MDS. Durable by design."""

    def __init__(self, env: Environment, servers: int = cal.LUSTRE_SERVERS):
        self.env = env
        self.servers = [Resource(env, capacity=1) for _ in range(servers)]
        self.mds = Resource(env, capacity=1)
        self.files: Dict[str, int] = {}
        self.dirs: set = set()
        self.counters = Counter()

    def client(self, name: str) -> "LustreClient":
        """An intercepted-POSIX client over the striped file path."""
        return LustreClient(self, name)

    # -- MultiLevelCheckpointer client surface -----------------------------------------

    def write_file(self, path: str, nbytes: int) -> Generator[Event, Any, None]:
        """Striped write: RAID bandwidth is the bottleneck per OSS."""
        yield from self.mds.serve(cal.LUSTRE_PER_REQUEST_COST)  # open+layout
        stripe = cal.LUSTRE_STRIPE_SIZE
        per_server = [0] * len(self.servers)
        at = 0
        while at < nbytes:
            take = min(stripe, nbytes - at)
            per_server[(at // stripe) % len(self.servers)] += take
            at += take
        events = []
        for server, load in zip(self.servers, per_server):
            if load > 0:
                events.append(self.env.process(self._oss_write(server, load)))
        if events:
            yield self.env.all_of(events)
        self.files[path] = nbytes
        self.counters.add("bytes_written", nbytes)

    def _oss_write(self, server: Resource, nbytes: int):
        # The RAID controller is a serial pipe: hold the OSS for the
        # transfer duration (this is what makes Lustre the slow tier).
        yield from server.serve(
            nbytes / cal.LUSTRE_SERVER_BANDWIDTH + cal.LUSTRE_PER_REQUEST_COST
        )

    def read_file(self, path: str) -> Generator[Event, Any, int]:
        nbytes = self.files.get(path)
        if nbytes is None:
            raise FileNotFound(path)
        yield from self.mds.serve(cal.LUSTRE_PER_REQUEST_COST)
        stripe = cal.LUSTRE_STRIPE_SIZE
        per_server = [0] * len(self.servers)
        at = 0
        while at < nbytes:
            take = min(stripe, nbytes - at)
            per_server[(at // stripe) % len(self.servers)] += take
            at += take
        events = []
        for server, load in zip(self.servers, per_server):
            if load > 0:
                events.append(self.env.process(self._oss_write(server, load)))
        if events:
            yield self.env.all_of(events)
        self.counters.add("bytes_read", nbytes)
        return nbytes

    def aggregate_bandwidth(self) -> float:
        return len(self.servers) * cal.LUSTRE_SERVER_BANDWIDTH


@dataclass
class _LustreFD:
    fd: int
    path: str
    mode: str
    size: int  # bytes this handle will have on flush
    dirty: bool = False
    open_: bool = True


class LustreClient:
    """POSIX-flavoured adapter so shim-driven workloads (campaigns,
    :func:`sysmatrix`, the resilience experiment) can run against the
    PFS tier directly.

    Lustre clients buffer dirty pages; the striped RPCs happen at
    ``fsync``/``close`` via :meth:`LustreCluster.write_file`, which is
    where the RAID-bound OSS cost lands — matching how the multi-level
    checkpointer already drives this tier.
    """

    def __init__(self, cluster: LustreCluster, name: str):
        self.cluster = cluster
        self.env = cluster.env
        self.name = name
        self.counters = Counter()
        self._fds: Dict[int, _LustreFD] = {}
        self._fd_counter = itertools.count(3)

    # -- shim surface -------------------------------------------------------

    def open(self, path: str, mode: str = "r") -> Generator[Event, Any, int]:
        if mode not in ("r", "w", "a", "x"):
            raise InvalidArgument(f"unsupported mode {mode!r}")
        existing = self.cluster.files.get(path)
        if mode == "r" and existing is None:
            raise FileNotFound(path)
        if mode == "x" and existing is not None:
            raise FileExists(path)
        yield from self.cluster.mds.serve(cal.LUSTRE_PER_REQUEST_COST)
        size = existing or 0
        if mode == "w":
            size = 0
        entry = _LustreFD(next(self._fd_counter), path, mode, size)
        self._fds[entry.fd] = entry
        self.counters.add("opens")
        return entry.fd

    def _fd(self, fd: int) -> _LustreFD:
        entry = self._fds.get(fd)
        if entry is None or not entry.open_:
            raise BadFileDescriptor(f"fd {fd}")
        return entry

    def write(self, fd: int, data) -> Generator[Event, Any, int]:
        entry = self._fd(fd)
        if entry.mode == "r":
            raise InvalidArgument(f"fd {fd} opened read-only")
        nbytes = data.nbytes if isinstance(data, Payload) else (
            len(data) if isinstance(data, bytes) else int(data)
        )
        entry.size += nbytes
        entry.dirty = True
        self.counters.add("app_bytes_written", nbytes)
        yield self.env.timeout(0)  # buffered in the client page cache
        return nbytes

    def fsync(self, fd: int) -> Generator[Event, Any, None]:
        entry = self._fd(fd)
        if entry.dirty:
            yield from self.cluster.write_file(entry.path, entry.size)
            entry.dirty = False
        else:
            yield self.env.timeout(0)

    def close(self, fd: int) -> Generator[Event, Any, None]:
        entry = self._fd(fd)
        if entry.dirty:  # close flushes what fsync did not
            yield from self.cluster.write_file(entry.path, entry.size)
            entry.dirty = False
        else:
            yield self.env.timeout(0)
        entry.open_ = False
        del self._fds[fd]

    def read(self, fd: int, nbytes: int) -> Generator[Event, Any, List[Payload]]:
        entry = self._fd(fd)
        total = yield from self.cluster.read_file(entry.path)
        got = min(nbytes, total)
        self.counters.add("app_bytes_read", got)
        return [Payload.synthetic(f"{entry.path}@0", got)] if got else []

    def mkdir(self, path: str, mode: int = 0o755) -> Generator[Event, Any, None]:
        if path in self.cluster.dirs:
            raise FileExists(path)
        yield from self.cluster.mds.serve(cal.LUSTRE_PER_REQUEST_COST)
        self.cluster.dirs.add(path)

    def unlink(self, path: str) -> Generator[Event, Any, None]:
        if path not in self.cluster.files:
            raise FileNotFound(path)
        yield from self.cluster.mds.serve(cal.LUSTRE_PER_REQUEST_COST)
        del self.cluster.files[path]

    def stat(self, path: str) -> int:
        nbytes = self.cluster.files.get(path)
        if nbytes is None:
            raise FileNotFound(path)
        return nbytes
