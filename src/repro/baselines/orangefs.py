"""OrangeFS model: striping + distributed metadata + layered servers.

What the paper says OrangeFS does (and this model reproduces):

* stripes file data across all storage servers (Figure 7(b): good
  balance at low concurrency, unlike consistent hashing);
* layers its servers over kernel filesystems, capping per-server
  throughput well below the device (Figure 1: peaks at ~41 %);
* keeps a *shared global namespace*: creates visit distributed metadata
  servers *and* append to a single common directory file, serialising
  (Figure 8(b): ~7x fewer creates/s than NVMe-CR at 448 procs);
* stores inode + striping layout per file — the ~2.6 GB/server metadata
  of Table I.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from repro.apps.deployment import Deployment
from repro.bench import calibration as cal
from repro.baselines.common import BaselineClient, BaselineFile, StorageServer
from repro.hashing.jump import jump_hash
from repro.io.qos import QoSClass
from repro.nvme.commands import Payload
from repro.sim.engine import Event
from repro.sim.resources import Resource

__all__ = ["OrangeFSCluster", "OrangeFSClient"]


class OrangeFSCluster:
    """Cluster-wide OrangeFS state over a deployment's storage nodes."""

    def __init__(self, deployment: Deployment, namespace_bytes: int):
        self.env = deployment.env
        self.deployment = deployment
        self.servers: List[StorageServer] = []
        for node in deployment.cluster.storage_nodes():
            ssd = deployment.ssds[node.name]
            ns = ssd.create_namespace(namespace_bytes, owner_job="orangefs")
            self.servers.append(
                StorageServer(
                    self.env, node.name, ssd, ns,
                    io_service_time=cal.ORANGEFS_SERVER_SERVICE,
                    io_chunk_bytes=cal.ORANGEFS_STRIPE_SIZE,
                )
            )
        # Metadata distributed across all servers...
        self.metadata = Resource(self.env, capacity=len(self.servers))
        # ...but the common directory file is a single serialisation point.
        self.directory_lock = Resource(self.env, capacity=1)
        self.files: Dict[str, BaselineFile] = {}
        self.dirs: set = {"/"}
        self.file_count_high_water = 0
        self.stripe_records_high_water = 0

    def client(self, name: str) -> "OrangeFSClient":
        return OrangeFSClient(self, name)

    # -- Table I accounting -----------------------------------------------------------

    def metadata_bytes_per_server(self) -> float:
        """Inodes plus per-stripe layout records (Table I: OrangeFS "has
        high overhead as it needs to store both file metadata and
        striping information" — dominated by the stripe maps)."""
        return (
            self.file_count_high_water * cal.ORANGEFS_FILE_METADATA_BYTES
            + self.stripe_records_high_water * cal.ORANGEFS_PER_STRIPE_METADATA
        )

    def bytes_per_server(self) -> List[int]:
        return [int(s.counters.get("bytes")) for s in self.servers]


class OrangeFSClient(BaselineClient):
    """One rank's OrangeFS mount."""

    def __init__(self, cluster: OrangeFSCluster, name: str):
        super().__init__(cluster.env, name, cluster.files, cluster.dirs)
        self.cluster = cluster

    # -- metadata path ---------------------------------------------------------------

    def _metadata_visit(self) -> Generator[Event, Any, None]:
        yield from self.cluster.metadata.serve(cal.ORANGEFS_MDS_SERVICE)

    def _do_create(self, path: str) -> Generator[Event, Any, BaselineFile]:
        yield from self._metadata_visit()
        yield from self.cluster.directory_lock.serve(cal.ORANGEFS_DIR_ENTRY_SERVICE)
        self.cluster.file_count_high_water += 1
        return BaselineFile(path=path)

    def _do_mkdir(self, path: str) -> Generator[Event, Any, None]:
        yield from self._metadata_visit()

    def _do_unlink(self, file: BaselineFile) -> Generator[Event, Any, None]:
        yield from self._metadata_visit()
        yield from self.cluster.directory_lock.serve(cal.ORANGEFS_DIR_ENTRY_SERVICE)

    # -- data path ------------------------------------------------------------------------

    def _stripe_plan(self, file: BaselineFile, offset: int, nbytes: int):
        """(server_index, nbytes) stripes, round-robin from a hash start."""
        stripe = cal.ORANGEFS_STRIPE_SIZE
        nservers = len(self.cluster.servers)
        start = jump_hash(file.path, nservers)
        plan = []
        at = offset
        end = offset + nbytes
        while at < end:
            take = min(stripe - (at % stripe), end - at)
            server = (start + at // stripe) % nservers
            plan.append((server, take))
            at += take
        return plan

    def _aggregate_plan(self, file: BaselineFile, offset: int, nbytes: int):
        """Fold the stripe plan into (server_index, total_bytes, stripes)
        — one IO per server instead of one per stripe (identical timing,
        three orders of magnitude fewer simulation events)."""
        totals: Dict[int, List[int]] = {}
        for server_index, take in self._stripe_plan(file, offset, nbytes):
            entry = totals.setdefault(server_index, [0, 0])
            entry[0] += take
            entry[1] += 1
        return [(s, t, n) for s, (t, n) in sorted(totals.items())]

    def _do_write(self, file: BaselineFile, offset: int, payload: Payload) -> Generator[Event, Any, int]:
        if payload.nbytes == 0:
            return 0
        plan = self._aggregate_plan(file, offset, payload.nbytes)
        total_stripes = sum(n for _s, _t, n in plan)
        # Client request-protocol cost, serialised in the client.
        yield self.env.timeout(total_stripes * cal.ORANGEFS_PER_REQUEST_COST)
        events = []
        consumed = 0
        for server_index, take, _stripes in plan:
            server = self.cluster.servers[server_index]
            chunk = payload.slice(consumed, take)
            events.append(self.env.process(self._server_write(server, file, server_index, chunk)))
            consumed += take
        yield self.env.all_of(events)
        file.placement.append(("striped", total_stripes))
        self.cluster.stripe_records_high_water += total_stripes
        return payload.nbytes

    def _server_write(self, server: StorageServer, file: BaselineFile, server_index: int, chunk: Payload):
        yield from server.write_chunk(chunk)

    def _do_read(self, file: BaselineFile, offset: int, nbytes: int) -> Generator[Event, Any, None]:
        plan = self._aggregate_plan(file, offset, nbytes)
        yield self.env.timeout(sum(n for _s, _t, n in plan) * cal.ORANGEFS_PER_REQUEST_COST)
        events = []
        for server_index, take, _stripes in plan:
            server = self.cluster.servers[server_index]
            events.append(self.env.process(self._server_read(server, take)))
        yield self.env.all_of(events)

    def _server_read(self, server: StorageServer, nbytes: int):
        # Read service is lighter than write service (no allocation, no
        # journal on the backend FS) — Figure 9's recovery efficiencies.
        n_chunks = max(1, -(-nbytes // server.io_chunk_bytes))
        yield from server.io_resource.serve(n_chunks * cal.ORANGEFS_SERVER_READ_SERVICE)
        yield server.ssd.read(
            server.namespace.nsid, 0, nbytes, server.io_chunk_bytes,
            qos=QoSClass.BEST_EFFORT,
        )

    def _do_fsync(self, file: BaselineFile) -> Generator[Event, Any, None]:
        # Servers persist on write; fsync is a round trip per dfile server.
        yield self.env.timeout(cal.ORANGEFS_PER_REQUEST_COST)
