"""Local kernel filesystems: ext4 and XFS over a node-local NVMe SSD.

The Figure 7(c) comparators. The write path is the classic kernel one
(Figure 2's left half): trap, VFS, copy into the page cache; ``fsync``
then pays writeback (512 KiB bios through the block layer), journaling,
and allocation:

* **ext4** allocates per 4 KiB block under a shared block-group lock —
  the manycore serialisation of Min et al. [16]; ordered-mode journal
  costs per MB. Net: ~83 % slower than NVMe-CR at 28-process full
  subscription, ~79 % of time in the kernel.
* **XFS** allocates per multi-MB extent under its AG lock and uses
  delayed logging. Net: ~19 % slower than NVMe-CR, ~76.5 % kernel time.

Clients on one node share the filesystem instance: the allocation lock
and the device are the shared resources; page-cache state is per-client
dirty accounting (sloppy but sufficient — checkpoint files don't share
pages).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Generator, List

from repro.bench import calibration as cal
from repro.errors import BadFileDescriptor, FileNotFound, InvalidArgument, OutOfSpace
from repro.nvme.commands import Payload
from repro.nvme.device import SSD
from repro.nvme.namespace import Namespace
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource
from repro.io.qos import QoSClass
from repro.obs.metrics import Counter
from repro.units import MiB

__all__ = ["KernelFilesystem", "KernelFSClient"]


@dataclass
class _KFile:
    path: str
    size: int = 0
    dirty_bytes: int = 0
    allocated_bytes: int = 0


@dataclass
class _KFD:
    fd: int
    file: _KFile
    pos: int = 0
    open_: bool = True


class KernelFilesystem:
    """One mounted ext4/XFS instance on one SSD (shared by its node's
    processes)."""

    def __init__(self, env: Environment, ssd: SSD, namespace: Namespace, variant: str):
        if variant not in ("ext4", "xfs"):
            raise InvalidArgument(f"variant must be ext4|xfs, got {variant}")
        self.env = env
        self.ssd = ssd
        self.namespace = namespace
        self.variant = variant
        self.alloc_lock = Resource(env, capacity=1)
        self.journal = Resource(env, capacity=1)
        self.files: Dict[str, _KFile] = {}
        self._cursor = 0
        self.counters = Counter()

    def client(self, name: str) -> "KernelFSClient":
        return KernelFSClient(self, name)

    def allocate(self, nbytes: int) -> int:
        aligned = -(-nbytes // 4096) * 4096
        if self._cursor + aligned > self.namespace.nbytes:
            raise OutOfSpace(f"{self.variant} filesystem full")
        offset = self._cursor
        self._cursor += aligned
        return offset

    # -- variant-specific allocation cost (held under the shared lock) -----------------

    def allocation_units(self, nbytes: int) -> int:
        if self.variant == "ext4":
            return -(-nbytes // 4096)  # per block
        return -(-nbytes // cal.XFS_EXTENT_BYTES)  # per extent

    def allocation_cost(self, nbytes: int) -> float:
        unit = cal.EXT4_PER_BLOCK_ALLOC if self.variant == "ext4" else cal.XFS_PER_EXTENT_ALLOC
        return self.allocation_units(nbytes) * unit

    def journal_cost(self, nbytes: int) -> float:
        per_mb = (
            cal.EXT4_JOURNAL_COST_PER_MB
            if self.variant == "ext4"
            else cal.XFS_JOURNAL_COST_PER_MB
        )
        return (nbytes / MiB(1)) * per_mb


class KernelFSClient:
    """One process's view of the kernel filesystem (shim-compatible)."""

    def __init__(self, kfs: KernelFilesystem, name: str):
        self.kfs = kfs
        self.env = kfs.env
        self.name = name
        self.counters = Counter()
        self._fds: Dict[int, _KFD] = {}
        self._fd_counter = itertools.count(3)

    # -- cost helpers -------------------------------------------------------------------

    def _kernel(self, seconds: float) -> Event:
        """Charge time spent in the kernel (tracked for Figure 7(c))."""
        self.counters.add("kernel_time", seconds)
        return self.env.timeout(seconds)

    # -- shim surface ----------------------------------------------------------------------

    def open(self, path: str, mode: str = "r") -> Generator[Event, Any, int]:
        yield self._kernel(cal.SYSCALL_TRAP_COST + cal.KERNEL_IO_PATH_COST)
        file = self.kfs.files.get(path)
        if file is None:
            if mode == "r":
                raise FileNotFound(path)
            file = _KFile(path=path)
            self.kfs.files[path] = file
            self.counters.add("creates")
        elif mode == "w":
            file.size = 0
            file.dirty_bytes = 0
        fd = _KFD(next(self._fd_counter), file)
        if mode == "a":
            fd.pos = file.size
        self._fds[fd.fd] = fd
        return fd.fd

    def _fd(self, fd: int) -> _KFD:
        entry = self._fds.get(fd)
        if entry is None or not entry.open_:
            raise BadFileDescriptor(f"fd {fd}")
        return entry

    def write(self, fd: int, data) -> Generator[Event, Any, int]:
        """Buffered write: trap + page-cache copy. Fast — the bill comes
        at fsync."""
        entry = self._fd(fd)
        nbytes = data if isinstance(data, int) else (
            data.nbytes if isinstance(data, Payload) else len(data)
        )
        yield self._kernel(
            cal.SYSCALL_TRAP_COST
            + cal.KERNEL_IO_PATH_COST
            + nbytes / cal.PAGE_CACHE_COPY_BW
        )
        entry.file.dirty_bytes += nbytes
        entry.pos += nbytes
        entry.file.size = max(entry.file.size, entry.pos)
        self.counters.add("app_bytes_written", nbytes)
        return nbytes

    def pwrite(self, fd: int, data, offset: int) -> Generator[Event, Any, int]:
        entry = self._fd(fd)
        entry.pos = offset
        return (yield from self.write(fd, data))

    def fsync(self, fd: int) -> Generator[Event, Any, None]:
        """Writeback + allocation + journal. All kernel time."""
        entry = self._fd(fd)
        file = entry.file
        dirty = file.dirty_bytes
        t0 = self.env.now
        yield self._kernel(cal.SYSCALL_TRAP_COST)
        if dirty > 0:
            file.dirty_bytes = 0
            # Delayed allocation happens at writeback, under the shared lock.
            new_bytes = max(0, file.size - file.allocated_bytes)
            if new_bytes > 0:
                file.allocated_bytes = file.size
                lock_hold = self.kfs.allocation_cost(new_bytes)
                wait_start = self.env.now
                request = self.kfs.alloc_lock.request()
                yield request
                # Contended kernel-lock time (spinning in the allocator)
                # counts as kernel time — the Min et al. [16] collapse.
                self.counters.add("kernel_time", self.env.now - wait_start)
                try:
                    yield self._kernel(lock_hold)
                finally:
                    self.kfs.alloc_lock.release(request)
            # Block-layer submission: one bio per 512 KiB.
            bios = max(1, -(-dirty // cal.KERNEL_MAX_BIO_BYTES))
            yield self._kernel(bios * cal.KERNEL_IO_PATH_COST)
            offset = self.kfs.allocate(dirty)
            payload = Payload.synthetic(f"{self.name}:{file.path}:{offset}", dirty)
            write_start = self.env.now
            yield self.kfs.ssd.write(
                self.kfs.namespace.nsid, offset, payload, cal.KERNEL_MAX_BIO_BYTES,
                qos=QoSClass.CKPT_DATA,
            )
            # Blocked in the kernel for the whole device wait.
            self.counters.add("kernel_time", self.env.now - write_start)
            # Journal commit (ordered/delayed logging), serialised;
            # waiting for the running transaction is kernel time too.
            commit = self.kfs.journal_cost(dirty)
            jwait = self.env.now
            jreq = self.kfs.journal.request()
            yield jreq
            self.counters.add("kernel_time", self.env.now - jwait)
            try:
                yield self._kernel(commit)
            finally:
                self.kfs.journal.release(jreq)
            flush_start = self.env.now
            yield self.kfs.ssd.flush(self.kfs.namespace.nsid)
            self.counters.add("kernel_time", self.env.now - flush_start)
        self.counters.add("fsyncs")
        self.counters.add("fsync_wall", self.env.now - t0)

    def read(self, fd: int, nbytes: int) -> Generator[Event, Any, List[Payload]]:
        entry = self._fd(fd)
        nbytes = max(0, min(nbytes, entry.file.size - entry.pos))
        if nbytes:
            bios = max(1, -(-nbytes // cal.KERNEL_MAX_BIO_BYTES))
            yield self._kernel(
                cal.SYSCALL_TRAP_COST
                + bios * cal.KERNEL_IO_PATH_COST
                + nbytes / cal.PAGE_CACHE_COPY_BW
            )
            read_start = self.env.now
            yield self.kfs.ssd.read(
                self.kfs.namespace.nsid, 0, nbytes, cal.KERNEL_MAX_BIO_BYTES,
                qos=QoSClass.BEST_EFFORT,
            )
            self.counters.add("kernel_time", self.env.now - read_start)
        entry.pos += nbytes
        self.counters.add("app_bytes_read", nbytes)
        return [Payload.synthetic(f"{entry.file.path}", nbytes)] if nbytes else []

    def pread(self, fd: int, nbytes: int, offset: int) -> Generator[Event, Any, List[Payload]]:
        entry = self._fd(fd)
        entry.pos = offset
        return (yield from self.read(fd, nbytes))

    def close(self, fd: int) -> Generator[Event, Any, None]:
        entry = self._fd(fd)
        yield self._kernel(cal.SYSCALL_TRAP_COST)
        entry.open_ = False
        del self._fds[fd]

    def mkdir(self, path: str, mode: int = 0o755) -> Generator[Event, Any, None]:
        yield self._kernel(cal.SYSCALL_TRAP_COST + cal.KERNEL_IO_PATH_COST)

    def unlink(self, path: str) -> Generator[Event, Any, None]:
        yield self._kernel(cal.SYSCALL_TRAP_COST + cal.KERNEL_IO_PATH_COST)
        self.kfs.files.pop(path, None)

    def stat(self, path: str) -> _KFile:
        file = self.kfs.files.get(path)
        if file is None:
            raise FileNotFound(path)
        return file

    def kernel_fraction(self, wall_time: float, app_kernel_time: float = 0.0) -> float:
        """Fraction of wall time spent in the kernel (Figure 7(c))."""
        if wall_time <= 0:
            raise InvalidArgument("wall_time must be positive")
        return min(1.0, (self.counters.get("kernel_time") + app_kernel_time) / wall_time)
