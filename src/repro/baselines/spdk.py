"""Raw SPDK: the userspace data path with no filesystem at all.

Figure 7(c)'s lower bound — "Compared to SPDK, NVMe-CR has no
noticeable overhead", but "SPDK alone cannot handle all the IO
challenges (POSIX compliance, metadata management, and private
namespace)". The client mimics the shim surface while keeping only an
in-memory name table: creates cost nothing durable, writes go straight
to the device through a bump allocator.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Any, Dict, Generator, List

from repro.bench import calibration as cal
from repro.errors import BadFileDescriptor, FileNotFound, OutOfSpace
from repro.fabric.transport import Transport
from repro.io.qos import QoSClass
from repro.nvme.commands import Payload
from repro.sim.engine import Environment, Event
from repro.obs.metrics import Counter
from repro.units import KiB

__all__ = ["RawSPDKClient"]


@dataclass
class _SFile:
    path: str
    size: int = 0
    offset: int = -1  # device offset of the (single-extent) file


@dataclass
class _SFD:
    fd: int
    file: _SFile
    pos: int = 0
    open_: bool = True


class RawSPDKClient:
    """Direct bdev access with a volatile name table (shim-compatible)."""

    def __init__(
        self,
        env: Environment,
        transport: Transport,
        nsid: int,
        region_offset: int,
        region_bytes: int,
        name: str = "spdk",
        io_size: int = KiB(128),
    ):
        self.env = env
        self.transport = transport
        self.nsid = nsid
        self.region_offset = region_offset
        self.region_bytes = region_bytes
        self.name = name
        self.io_size = io_size
        self.counters = Counter()
        self.files: Dict[str, _SFile] = {}
        self._fds: Dict[int, _SFD] = {}
        self._fd_counter = itertools.count(3)
        self._cursor = 0

    def _allocate(self, nbytes: int) -> int:
        aligned = -(-nbytes // 4096) * 4096
        if self._cursor + aligned > self.region_bytes:
            raise OutOfSpace("SPDK bdev region full")
        offset = self.region_offset + self._cursor
        self._cursor += aligned
        return offset

    # -- shim surface -------------------------------------------------------------------

    def open(self, path: str, mode: str = "r") -> Generator[Event, Any, int]:
        yield self.env.timeout(0)  # no kernel, no metadata IO
        file = self.files.get(path)
        if file is None:
            if mode == "r":
                raise FileNotFound(path)
            file = _SFile(path=path)
            self.files[path] = file
            self.counters.add("creates")
        fd = _SFD(next(self._fd_counter), file)
        if mode == "a":
            fd.pos = file.size
        self._fds[fd.fd] = fd
        return fd.fd

    def _fd(self, fd: int) -> _SFD:
        entry = self._fds.get(fd)
        if entry is None or not entry.open_:
            raise BadFileDescriptor(f"fd {fd}")
        return entry

    def write(self, fd: int, data) -> Generator[Event, Any, int]:
        entry = self._fd(fd)
        nbytes = data if isinstance(data, int) else (
            data.nbytes if isinstance(data, Payload) else len(data)
        )
        payload = data if isinstance(data, Payload) else Payload.synthetic(
            f"{self.name}:{entry.file.path}:{entry.pos}", nbytes
        ) if isinstance(data, int) else Payload.of_bytes(data)
        n_cmds = max(1, math.ceil(nbytes / self.io_size))
        yield self.env.timeout(n_cmds * cal.SPDK_SUBMIT_COST)
        # Each write is its own extent from the bump allocator; the name
        # table remembers only the first (reads are timing-faithful, and
        # durability of content is not SPDK's job — that's the point).
        offset = self._allocate(max(nbytes, 1))
        if entry.file.offset < 0:
            entry.file.offset = offset
        yield self.transport.write(
            self.nsid, offset, payload, self.io_size, qos=QoSClass.CKPT_DATA
        )
        entry.pos += nbytes
        entry.file.size = max(entry.file.size, entry.pos)
        self.counters.add("app_bytes_written", nbytes)
        return nbytes

    def pwrite(self, fd: int, data, offset: int) -> Generator[Event, Any, int]:
        entry = self._fd(fd)
        entry.pos = offset
        return (yield from self.write(fd, data))

    def read(self, fd: int, nbytes: int) -> Generator[Event, Any, List[Payload]]:
        entry = self._fd(fd)
        nbytes = max(0, min(nbytes, entry.file.size - entry.pos))
        if nbytes:
            n_cmds = max(1, math.ceil(nbytes / self.io_size))
            yield self.env.timeout(n_cmds * cal.SPDK_SUBMIT_COST)
            yield self.transport.read(
                self.nsid, max(entry.file.offset, 0), nbytes, self.io_size,
                qos=QoSClass.BEST_EFFORT,
            )
        entry.pos += nbytes
        self.counters.add("app_bytes_read", nbytes)
        return [Payload.synthetic(entry.file.path, nbytes)] if nbytes else []

    def pread(self, fd: int, nbytes: int, offset: int) -> Generator[Event, Any, List[Payload]]:
        entry = self._fd(fd)
        entry.pos = offset
        return (yield from self.read(fd, nbytes))

    def fsync(self, fd: int) -> Generator[Event, Any, None]:
        self._fd(fd)
        yield self.transport.flush(self.nsid)

    def close(self, fd: int) -> Generator[Event, Any, None]:
        entry = self._fd(fd)
        yield self.env.timeout(0)
        entry.open_ = False
        del self._fds[fd]

    def mkdir(self, path: str, mode: int = 0o755) -> Generator[Event, Any, None]:
        yield self.env.timeout(0)

    def unlink(self, path: str) -> Generator[Event, Any, None]:
        yield self.env.timeout(0)
        self.files.pop(path, None)

    def stat(self, path: str) -> _SFile:
        file = self.files.get(path)
        if file is None:
            raise FileNotFound(path)
        return file
