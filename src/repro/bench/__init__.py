"""Experiment harness: calibration constants, runners, and one entry
point per paper table/figure."""
