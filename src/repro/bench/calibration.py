"""Every calibrated constant in the reproduction, with provenance.

Single source of truth: nothing outside this module hard-codes a
performance number. Constants fall into three classes:

1. **Datasheet / literature values** — device and fabric numbers quoted
   by the paper or its citations.
2. **Measured-systems folklore** — syscall and filesystem path costs
   from the microbenchmark literature (Min et al. [16] for manycore FS
   scalability, lmbench-class syscall costs).
3. **Fitted values** — a handful of software-path constants tuned so the
   simulated baseline systems land near the paper's measured ratios
   (e.g. OrangeFS peaking at ~41 % of hardware bandwidth, Figure 1).
   Each fitted value names the figure it was fitted against.
"""

from __future__ import annotations

from repro.units import GB_per_s, Gbit_per_s, GiB, KiB, MiB, ns, us

# ---------------------------------------------------------------------------
# Userspace (SPDK / NVMe-CR) client-side path — §III-D
# ---------------------------------------------------------------------------

#: CPU cost to build, submit, and poll-complete one NVMe command from
#: userspace (SPDK's advertised ~0.4 us submission path).
SPDK_SUBMIT_COST = us(0.4)

#: O(1) circular-pool hugeblock allocation (§III-E, "Hugeblocks").
BLOCK_ALLOC_COST = us(0.15)

#: CPU to format + coalesce one operation-log record (§III-E).
LOG_APPEND_CPU = us(0.3)

#: Control-plane CPU per metadata operation: B+Tree lookup/insert,
#: inode update, permission check. Fitted against Figure 8(b)'s
#: NVMe-CR create rate being hardware-bound, not software-bound.
METADATA_OP_CPU = us(1.0)

# ---------------------------------------------------------------------------
# Kernel path — Figure 2's nvme_rdma stack and local kernel filesystems
# ---------------------------------------------------------------------------

#: Trap + return for one syscall (lmbench-class number on Skylake).
SYSCALL_TRAP_COST = us(1.3)

#: VFS + block layer + kernel NVMe driver per IO request; the "multiple
#: software layers" of §I-A. Fitted against Figure 7(c): XFS 19 % slower
#: than NVMe-CR at 512 MB with ~76.5 % kernel time.
KERNEL_IO_PATH_COST = us(2.6)

#: Page-cache copy bandwidth (one memcpy of the write payload).
PAGE_CACHE_COPY_BW = GB_per_s(9.0)

#: Kernel filesystems submit block-layer requests at up to 512 KiB
#: after merging; their effective command size on the device.
KERNEL_MAX_BIO_BYTES = 512 * 1024

#: ext4 ordered-mode journal: commit record + metadata blocks per fsync
#: window. Fitted against Figure 7(c): ext4 83 % slower than NVMe-CR.
EXT4_JOURNAL_COST_PER_MB = us(840)

#: XFS delayed-logging equivalent — extent-based, much cheaper. Fitted
#: against Figure 7(c): XFS 19 % slower than NVMe-CR.
XFS_JOURNAL_COST_PER_MB = us(95)

#: Per-4KiB-block allocation under the shared block-group lock in ext4
#: (serialises across concurrent writers — the manycore collapse of
#: Min et al. [16]). Fitted against Figure 7(c): ext4 ~83 % slower than
#: NVMe-CR at 28-process full subscription.
EXT4_PER_BLOCK_ALLOC = us(1.2)

#: XFS allocates per extent (one per large append), also under a shared
#: AG lock but visited ~1000x less often.
XFS_PER_EXTENT_ALLOC = us(12.0)

#: Largest contiguous extent XFS carves per allocation call.
XFS_EXTENT_BYTES = 8 * MiB(1)

# ---------------------------------------------------------------------------
# NVMe SSD device specs — §IV-A testbed hardware (moved here from
# repro.nvme.device so the spec factories carry no literal numbers)
# ---------------------------------------------------------------------------

#: Intel Optane P4800X (the paper's device): 375 GB, ~2.2 GB/s
#: sequential write, ~2.4 GB/s read (datasheet).
P4800X_CAPACITY_BYTES = 375 * 10**9
P4800X_WRITE_BANDWIDTH = GB_per_s(2.2)
P4800X_READ_BANDWIDTH = GB_per_s(2.4)

#: Controller serialisation per command: 2.0 us reproduces the ~500 K
#: IOPS small-write ceiling (4 KiB / 2.0 us ~= 2.05 GB/s, ~7 % below
#: the sequential ceiling — the device-side half of Figure 7(a)'s
#: small-block penalty).
P4800X_PER_COMMAND_COST = us(2.0)
P4800X_FLUSH_COST = us(5.0)

#: 3D-XPoint media access: ~10 us read/write latency (datasheet).
P4800X_ACCESS_LATENCY = us(10.0)
P4800X_MAX_HW_QUEUES = 32

#: Generic NAND TLC datacenter SSD with a capacitor-backed DRAM write
#: buffer (vendor-class numbers; exercises the burst/drain and
#: power-loss capacitance paths the Optane spec never reaches).
NAND_SSD_CAPACITY_BYTES = 2 * 10**12
NAND_SSD_WRITE_BANDWIDTH = GB_per_s(1.4)
NAND_SSD_READ_BANDWIDTH = GB_per_s(3.0)
NAND_SSD_PER_COMMAND_COST = us(4.0)
NAND_SSD_FLUSH_COST = us(10.0)

#: NAND program into the DRAM buffer path.
NAND_SSD_ACCESS_LATENCY = us(25.0)
NAND_SSD_RAM_BUFFER_BYTES = GiB(1)
NAND_SSD_RAM_WRITE_BANDWIDTH = GB_per_s(3.2)

#: Spec-level defaults shared by every SSD model: media access latency
#: when a spec does not override it, and the command-granular
#: arbitration-jitter coefficient (§IV-B "a large block size will
#: increase the waiting time for each hardware IO queue"; fitted to the
#: mild large-block upturn of Figure 7(a)).
SSD_DEFAULT_ACCESS_LATENCY = us(10.0)
SSD_ARBITRATION_BETA = 0.25

# ---------------------------------------------------------------------------
# Byte-addressable NVM tier — JASS (arXiv:2301.11511) models checkpoint
# placement against Optane DC PMM-class persistent memory
# ---------------------------------------------------------------------------

#: Random load latency of Optane DC PMM (~300 ns, the widely reproduced
#: Izraelevitz et al. characterisation JASS builds on).
NVM_READ_LATENCY = ns(300)

#: Store latency to the ADR-protected write-pending queue (~100 ns);
#: persistence is asynchronous behind it.
NVM_WRITE_LATENCY = ns(100)

#: CLWB + sfence persist barrier closing one checkpoint region
#: (folklore: a few hundred ns once the stores are queued).
NVM_PERSIST_BARRIER = ns(500)

#: Per-DIMM sustained bandwidth: reads ~6.6 GB/s, writes ~2.3 GB/s —
#: the asymmetry JASS's placement model keys on.
NVM_READ_BANDWIDTH = GB_per_s(6.6)
NVM_WRITE_BANDWIDTH = GB_per_s(2.3)

#: One 128 GB module per node (the smallest DC PMM SKU).
NVM_CAPACITY_BYTES = 128 * 10**9

#: Internal access granularity (the 256 B "XPLine"): sub-line stores
#: pay a device-side read-modify-write.
NVM_LINE_BYTES = 256

# ---------------------------------------------------------------------------
# CXL-SSD tier — OpenCXD (arXiv:2508.11477) validates a load/store
# window + device-side DRAM cache model against a real CXL-SSD device
# ---------------------------------------------------------------------------

#: CXL.mem round trip through the host bridge and device controller
#: for one window access (~600 ns, the far-memory class OpenCXD cites).
CXL_LINK_LATENCY = ns(600)

#: Effective x8 CXL 2.0 link bandwidth into the device cache
#: (32 GB/s raw, ~26 GB/s effective after protocol overhead).
CXL_LINK_BANDWIDTH = GB_per_s(26.0)

#: Device-side DRAM cache in front of the flash backend; misses fetch
#: whole flash pages.
CXL_CACHE_BYTES = MiB(512)
CXL_CACHE_LINE_BYTES = KiB(4)

#: First-access fill penalty when a load window misses the device
#: cache: one flash page read (fast-NAND class, ~8 us).
CXL_MISS_LATENCY = us(8.0)

#: Flash backend behind the cache: sustained read/program bandwidth
#: (dirty cache lines drain to flash at the program rate — the same
#: token-bucket burst/drain shape as a capacitor-backed NVMe SSD).
CXL_FLASH_READ_BANDWIDTH = GB_per_s(5.0)
CXL_FLASH_WRITE_BANDWIDTH = GB_per_s(2.0)

#: 2 TB usable flash capacity behind the window.
CXL_CAPACITY_BYTES = 2 * 10**12

# ---------------------------------------------------------------------------
# Distributed baselines — §II-B / §IV
# ---------------------------------------------------------------------------

#: OrangeFS stripe unit (pvfs2 default ballpark).
ORANGEFS_STRIPE_SIZE = 64 * KiB(1)

#: Client-side OrangeFS request path per stripe (BMI + request proto).
#: Caps one client at ~1.4 GB/s — why single clients can't saturate.
ORANGEFS_PER_REQUEST_COST = us(45)

#: Server-side software service per stripe, layered over a kernel FS.
#: Fitted against Figure 1: per-server ceiling = stripe/service =
#: 64 KiB / 72 us ~= 0.91 GB/s = 41 % of the P4800X's 2.2 GB/s.
ORANGEFS_SERVER_SERVICE = us(72)

#: Server-side read service per stripe. Fitted against Figure 9(b):
#: recovery efficiency ~0.85 => 64 KiB / (0.85 * 2.4 GB/s) ~= 32 us.
ORANGEFS_SERVER_READ_SERVICE = us(32)

#: OrangeFS metadata op (create: inode + dfile handles), distributed
#: across all servers' metadata instances, plus the single common
#: directory-file append that serialises creates (§IV-G). Fitted
#: against Figure 8(b): ~7x fewer creates/s than NVMe-CR at 448.
ORANGEFS_MDS_SERVICE = us(120)
ORANGEFS_DIR_ENTRY_SERVICE = us(14)

#: GlusterFS FUSE+translator client stack per 128 KiB chunk.
GLUSTERFS_CHUNK_BYTES = 128 * KiB(1)
GLUSTERFS_PER_REQUEST_COST = us(14)

#: GlusterFS brick (server) service per chunk. The end-to-end peak of
#: Figure 1 (~84 %) is the per-brick ceiling *compounded with* hash
#: imbalance across bricks (busiest brick finishes last), so the
#: per-brick ceiling sits higher: 128 KiB / 62 us ~= 2.1 GB/s = 96 % of
#: device peak, yielding ~84 % end-to-end at 448 processes.
GLUSTERFS_SERVER_SERVICE = us(62)

#: Brick read service per chunk: recovery efficiency ~0.9 (Figure 9(d))
#: => 128 KiB / (0.9 * 2.4 GB/s) ~= 61 us.
GLUSTERFS_SERVER_READ_SERVICE = us(61)

#: Directory-entry append per create — "both must add file entries to a
#: single common directory file which effectively serializes file
#: creates" (§IV-G). Fitted against Figure 8(b): ~18x fewer creates/s
#: than NVMe-CR at 448 procs.
GLUSTERFS_DIR_ENTRY_SERVICE = us(36)

#: Per-open lookup on GlusterFS's distributed hash lookup path; the
#: serialised influx at 448 readers is the Figure 9(d) recovery dip.
GLUSTERFS_LOOKUP_SERVICE = us(150)

#: Crail: SPDK data plane like ours, but block allocation and lookups
#: are RPCs to a *single* metadata server, shipping inode-sized
#: payloads over the fabric (§IV-F: 5-10 % slower than NVMe-CR; the
#: single MDS "becomes a bottleneck at high-concurrency", §IV-A).
CRAIL_MDS_SERVICE = us(25)
CRAIL_INODE_WIRE_BYTES = 4 * KiB(1)
CRAIL_BLOCK_BYTES = MiB(1)

#: Shared-file write serialisation on POSIX distributed filesystems:
#: once a file has concurrent writers, every lock unit (1 MiB range)
#: takes the file's range/metadata lock — the N-1 pattern pain PLFS
#: [24] exists to solve. Single-writer files never pay (N-N unaffected).
SHARED_FILE_LOCK_SERVICE = us(800)
SHARED_FILE_LOCK_UNIT = MiB(1)

#: Lustre second tier for multi-level checkpointing (§IV-A: 4 servers,
#: each behind one 12 Gb/s RAID controller).
LUSTRE_SERVER_BANDWIDTH = Gbit_per_s(12)
LUSTRE_SERVERS = 4
LUSTRE_PER_REQUEST_COST = us(55)
LUSTRE_STRIPE_SIZE = MiB(1)

# ---------------------------------------------------------------------------
# Metadata sizes — Table I / §IV-G accounting
# ---------------------------------------------------------------------------

#: In-DRAM inode footprint of NVMe-CR (conventional inode + block list
#: head; §III-E "inodes to store file metadata").
NVMECR_INODE_BYTES = 256

#: One B+Tree node (order-64 node of name->ino mappings).
NVMECR_BTREE_NODE_BYTES = 4096

#: Compact operation-log record (§III-E: "Only the syscall type and its
#: parameters need to be added to the log").
NVMECR_LOG_RECORD_BYTES = 64

#: Physical-logging record for the provenance ablation: a full inode
#: image plus block map page, the "large sized physical log records"
#: other systems ship (§III-E).
PHYSICAL_LOG_RECORD_BYTES = 4096

#: Under physical logging, one 4 KiB record covers this many data
#: blocks (inode image + bitmap page per group). Fitted against
#: Figure 7(d): metadata provenance recovers up to ~17 % by removing
#: this journal traffic from the data path.
PHYSICAL_LOG_BLOCKS_PER_RECORD = 4

#: OrangeFS per-file inode/handle metadata on its servers.
ORANGEFS_FILE_METADATA_BYTES = 6 * KiB(1)

#: OrangeFS per-stripe layout record, replicated to every dfile server.
#: Fitted against Table I: 4480 files x ~2440 stripes x 240 B ~= 2.6 GB
#: per server at 448 processes.
ORANGEFS_PER_STRIPE_METADATA = 240

#: GlusterFS keeps only hash-ring bookkeeping per server (Table I: 3.5 MB).
GLUSTERFS_SERVER_METADATA_BYTES = int(3.5 * MiB(1))

# ---------------------------------------------------------------------------
# Application model — CoMD (§IV-A, §IV-H)
# ---------------------------------------------------------------------------

#: Checkpoint bytes per atom. Weak scaling: 32K atoms/process and 10
#: checkpoints make 700 GB total over 448 processes => 156.25 MB per
#: process-checkpoint => ~4.8 KiB per atom (position+velocity+force
#: history in CoMD's double-precision state).
COMD_BYTES_PER_ATOM = 5120

#: Compute time per atom for one *block of timesteps between
#: checkpoints* (not a single step). Fitted against Table II: with
#: 32K atoms/rank the progress rates 0.252/0.402/0.423 imply ~2.9 s of
#: compute per checkpoint interval => ~90 us per atom per interval.
COMD_COMPUTE_SECONDS_PER_ATOM = 9.0e-5

# ---------------------------------------------------------------------------
# NVMe-CR runtime defaults — §III
# ---------------------------------------------------------------------------

#: The paper's chosen hugeblock size (§IV-B).
DEFAULT_HUGEBLOCK = 32 * KiB(1)

#: Data-plane batching: one app-level write is submitted as pipelined
#: command batches of at most this size.
MAX_BATCH_BYTES = 8 * MiB(1)

#: Operation-log region reserved on each partition.
LOG_REGION_BYTES = 16 * MiB(1)

#: Reserved region for internal-state checkpoints (§III-E "the runtime
#: checkpoints internal DRAM state ... to a reserved region"). Two
#: slots for atomic A/B updates.
STATE_REGION_BYTES = 64 * MiB(1)

#: Background checkpointer threshold: free log records below this
#: fraction (with no open files) triggers a state checkpoint.
LOG_FREE_THRESHOLD = 0.25
