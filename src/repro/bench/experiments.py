"""One entry point per table and figure of the paper's evaluation (§IV).

Every function builds fresh substrate state, runs the workload the paper
describes, and returns a :class:`ResultTable` whose rows mirror the
paper's series. Default parameters are scaled to finish in seconds to a
couple of minutes on a laptop; pass the paper-scale values explicitly
where noted. EXPERIMENTS.md records paper-vs-measured for every row.

Storage systems are built through :mod:`repro.systems`, so the
cross-system figures accept a ``systems=(...)`` tuple of registered
names — ``repro run fig8b --systems nvmecr crail glusterfs`` compares
any backend without touching experiment code.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.apps.checkpoint import CheckpointStats
from repro.apps.comd import CoMDConfig, CoMDProxy
from repro.baselines.lustre import LustreCluster
from repro.bench import calibration as cal
from repro.bench.harness import ResultTable, dump_files
from repro.core.config import RuntimeConfig
from repro.core.control_plane import GlobalNamespaceService
from repro.core.multilevel import MultiLevelCheckpointer
from repro.metrics import coefficient_of_variation, efficiency
from repro.systems import SystemHandle
from repro.systems import build as build_system
from repro.systems import get as get_system
from repro.units import GiB, KiB, MiB

__all__ = [
    "fig1_motivation",
    "fig7a_hugeblock_sweep",
    "fig7a_plan",
    "fig7b_load_imbalance",
    "fig7c_direct_access",
    "fig7d_drilldown",
    "fig8a_nvmf_overhead",
    "fig8b_create_rate",
    "fig9_plan",
    "fig9_scaling",
    "tab1_metadata_overhead",
    "tab2_multilevel",
    "sysmatrix",
    "ablation_coalescing",
    "ablation_distributors",
    "run_all",
]

_DEFAULT_PROCS = (28, 56, 112, 224, 448)


def _bench_config(**overrides) -> RuntimeConfig:
    """Experiment-sized reserved regions (library defaults are larger)."""
    base = dict(log_region_bytes=MiB(4), state_region_bytes=MiB(16))
    base.update(overrides)
    return RuntimeConfig(**base)


def _run_comd(
    system: str,
    nprocs: int,
    comd: CoMDProxy,
    seed: int,
    devices: Optional[int] = None,
    bytes_per_device: Optional[int] = None,
    config: Optional[RuntimeConfig] = None,
    with_recovery: bool = False,
) -> Tuple[SystemHandle, List[CheckpointStats]]:
    """Run the CoMD proxy on any registered system; (handle, per-rank stats)."""
    if system == "nvmecr":
        needed = bytes_per_device or _device_quota(nprocs, comd, devices or 8)
        handle = build_system(
            "nvmecr", nprocs=nprocs, seed=seed, devices=devices or 8,
            bytes_per_device=needed, config=config or _bench_config(),
            job_name="comd",
        )
    else:
        per_server = comd.config.total_checkpoint_bytes(nprocs) // 2 + GiB(1)
        handle = build_system(
            system, nprocs=nprocs, namespace_bytes=per_server, seed=seed
        )

    def rank_main(shim, comm):
        stats = yield from comd.rank_main(shim, comm)
        if with_recovery:
            recovery = yield from comd.restart_main(shim, comm)
            stats.restart_times.extend(recovery.restart_times)
            stats.bytes_read += recovery.bytes_read
        return stats

    return handle, handle.run_ranks(rank_main)


def _device_quota(nprocs: int, comd: CoMDProxy, devices: int) -> int:
    per_rank = comd.config.checkpoint_bytes_per_rank * comd.config.checkpoints
    ranks_per_device = -(-nprocs // devices)
    # data + per-rank reserved metadata regions, 1.5x slack.
    per_rank_total = int(1.5 * per_rank) + MiB(64)
    return max(GiB(1), ranks_per_device * per_rank_total)


# ===========================================================================
# Figure 1 — motivation: weak-scaling checkpoint bandwidth vs hardware peak
# ===========================================================================


def fig1_motivation(
    procs: Iterable[int] = _DEFAULT_PROCS,
    atoms_per_rank: int = 32_000,
    seed: int = 1,
    systems: Sequence[str] = ("orangefs", "glusterfs"),
) -> ResultTable:
    """Weak-scaling checkpoint bandwidth of OrangeFS and GlusterFS.

    Paper anchor: "At best, OrangeFS and GlusterFS can only achieve 41%
    and 84% of the peak hardware bandwidth" (§I-A, Figure 1).
    """
    table = ResultTable(
        "Figure 1: weak-scaling checkpoint bandwidth (fraction of hw peak)",
        ["procs"] + [f"{s}_GBps" for s in systems] + ["hw_peak_GBps"]
        + [f"{s}_frac" for s in systems],
    )
    nbytes = atoms_per_rank * cal.COMD_BYTES_PER_ATOM
    for p in procs:
        row: Dict[str, float] = {}
        for kind in systems:
            handle = build_system(
                kind, nprocs=p, namespace_bytes=nbytes * p // 2 + GiB(1),
                seed=seed,
            )
            elapsed = handle.makespan(dump_files(nbytes))
            row[kind] = p * nbytes / elapsed
            row["peak"] = handle.aggregate_write_bandwidth()
        table.add(
            p, *(row[s] / 1e9 for s in systems), row["peak"] / 1e9,
            *(row[s] / row["peak"] for s in systems),
        )
    table.note("paper: OrangeFS peaks at ~41% and GlusterFS at ~84% of hw peak")
    return table


# ===========================================================================
# Figure 7(a) — optimal hugeblock size
# ===========================================================================


def _fig7a_unit(block: int, nprocs: int, file_bytes: int, seed: int) -> dict:
    """One Figure 7(a) cell: a fresh MicroFS fleet at one hugeblock size.

    Top-level and keyword-driven so :class:`repro.exec.SimUnit` can name
    it by import path and ship it to a worker process.
    """
    config = _bench_config(hugeblock_bytes=block)
    fleet = build_system(
        "microfs", nprocs=nprocs, config=config,
        partition_bytes=2 * file_bytes + MiB(64), seed=seed,
    )
    return {
        "block": block,
        "time_s": fleet.makespan(dump_files(file_bytes)),
        "pool_bytes": fleet.cluster.instances[0].pool.footprint_bytes(),
    }


def fig7a_plan(
    block_sizes: Iterable[int] = (KiB(4), KiB(8), KiB(16), KiB(32), KiB(64),
                                  KiB(128), KiB(512), MiB(2)),
    nprocs: int = 28,
    file_bytes: int = MiB(512),
    seed: int = 2,
) -> "ExecutionPlan":
    """Figure 7(a) as an execution plan: one unit per hugeblock size."""
    from repro.exec import ExecutionPlan, SimUnit

    blocks = list(block_sizes)
    units = [
        SimUnit(
            index=i,
            label=f"fig7a/block={block // 1024}K",
            fn="repro.bench.experiments:_fig7a_unit",
            params={"block": block, "nprocs": nprocs,
                    "file_bytes": file_bytes, "seed": seed},
            weight=float(max(1, file_bytes // block)),
        )
        for i, block in enumerate(blocks)
    ]

    def reduce(results) -> ResultTable:
        table = ResultTable(
            f"Figure 7(a): checkpoint time vs hugeblock size "
            f"({nprocs} procs x {file_bytes // MiB(1)} MiB)",
            ["block", "time_s", "vs_32K", "pool_bytes", "blocks_per_file"],
        )
        times = {r.payload["block"]: r.payload["time_s"] for r in results}
        base = times[KiB(32)] if KiB(32) in times else min(times.values())
        for result in results:
            block = result.payload["block"]
            table.add(
                f"{block // 1024}K", times[block], times[block] / base,
                result.payload["pool_bytes"], -(-file_bytes // block),
            )
        table.note(
            "paper: 32K optimal; 4K ~7% slower; 8x pool-size reduction 4K->32K")
        return table

    return ExecutionPlan(title="fig7a", units=units, reduce=reduce)


def fig7a_hugeblock_sweep(
    block_sizes: Iterable[int] = (KiB(4), KiB(8), KiB(16), KiB(32), KiB(64),
                                  KiB(128), KiB(512), MiB(2)),
    nprocs: int = 28,
    file_bytes: int = MiB(512),
    seed: int = 2,
    executor: Optional["Executor"] = None,
) -> ResultTable:
    """Checkpoint time vs hugeblock size, full-subscription local run.

    Paper anchor: "32KB is the optimal size ... 7% improvement in
    latency [over 4KB] ... 8x reduction in the size of the block pool"
    (§IV-B, Figure 7(a)).

    With an ``executor`` the sweep runs as an execution plan (each block
    size is an independent unit with its own seeded environment), so it
    can scale out across worker processes; results are bit-identical to
    the classic sequential loop for any shard count.
    """
    plan = fig7a_plan(block_sizes, nprocs=nprocs, file_bytes=file_bytes,
                      seed=seed)
    if executor is not None:
        result = executor.execute(plan)
        table = result.value
        table.execution = result
        return table
    from repro.exec import run_unit

    return plan.reduce([run_unit(unit) for unit in plan.units])


# ===========================================================================
# Figure 7(b) — load imbalance (coefficient of variation)
# ===========================================================================


def fig7b_load_imbalance(
    procs: Iterable[int] = _DEFAULT_PROCS,
    atoms_per_rank: int = 8_000,
    seed: int = 3,
    systems: Sequence[str] = ("nvmecr", "orangefs", "glusterfs"),
) -> ResultTable:
    """Per-server load CoV for NVMe-CR, OrangeFS, GlusterFS.

    Paper anchor: "NVMe-CR achieves perfect load balancing regardless of
    the level of concurrency"; GlusterFS's consistent hashing "has high
    standard deviation at low concurrency" (§IV-C, Figure 7(b)).
    """
    table = ResultTable(
        "Figure 7(b): load-imbalance coefficient of variation",
        ["procs"] + list(systems),
    )
    comd = CoMDProxy(CoMDConfig(atoms_per_rank=atoms_per_rank, checkpoints=1))
    for p in procs:
        covs: Dict[str, float] = {}
        for kind in systems:
            if kind == "nvmecr":
                # NVMe-CR allocates devices by the §III-F ratio rule
                # (56-112 procs per SSD), so process counts divide
                # evenly across the devices it was actually granted.
                devices = max(1, -(-p // 56))
                handle, _ = _run_comd("nvmecr", p, comd, seed, devices=devices)
                used = [b for b in handle.load_per_server() if b > 0]
                covs[kind] = coefficient_of_variation(used)
            else:
                handle, _ = _run_comd(kind, p, comd, seed)
                covs[kind] = coefficient_of_variation(handle.load_per_server())
        table.add(p, *(covs[s] for s in systems))
    table.note("paper: NVMe-CR ~0 everywhere; GlusterFS worst at low concurrency")
    return table


# ===========================================================================
# Figure 7(c) — direct access: NVMe-CR vs ext4 vs XFS vs raw SPDK (local)
# ===========================================================================


def fig7c_direct_access(
    sizes: Iterable[int] = (MiB(64), MiB(128), MiB(256), MiB(512)),
    nprocs: int = 28,
    seed: int = 4,
) -> ResultTable:
    """Full-subscription local dump time + kernel-time share.

    Paper anchors (§IV-D): at 512 MB NVMe-CR beats XFS by 19% and ext4
    by 83%; kernel time 10% (NVMe-CR) vs 76.5% (XFS) vs 79% (ext4);
    NVMe-CR ~= raw SPDK.
    """
    table = ResultTable(
        "Figure 7(c): local full-subscription dump time (s)",
        ["size_MiB", "nvmecr", "spdk", "xfs", "ext4",
         "xfs_vs_nvmecr", "ext4_vs_nvmecr", "kern%_nvmecr", "kern%_xfs", "kern%_ext4"],
    )
    for nbytes in sizes:
        results: Dict[str, float] = {}
        kernel_frac: Dict[str, float] = {}
        # NVMe-CR fleet.
        fleet = build_system(
            "microfs", nprocs=nprocs, config=_bench_config(),
            partition_bytes=2 * nbytes + MiB(64), seed=seed,
        )
        results["nvmecr"] = fleet.makespan(dump_files(nbytes))
        # The benchmark's own non-IO syscalls (malloc, init/finalize):
        # the paper attributes NVMe-CR's 10% kernel share to these.
        app_kernel = 0.10 * results["nvmecr"]
        kernel_frac["nvmecr"] = app_kernel / results["nvmecr"]
        # Raw SPDK.
        spdk = build_system(
            "spdk", nprocs=nprocs, bytes_per_client=2 * nbytes + MiB(64),
            seed=seed,
        )
        results["spdk"] = spdk.makespan(dump_files(nbytes))
        # Kernel filesystems.
        for variant in ("xfs", "ext4"):
            kfs = build_system(
                variant, nprocs=nprocs, bytes_per_client=2 * nbytes + MiB(64),
                seed=seed,
            )
            results[variant] = kfs.makespan(dump_files(nbytes))
            kernel_frac[variant] = sum(
                c.kernel_fraction(results[variant], app_kernel_time=app_kernel)
                for c in kfs.clients
            ) / len(kfs.clients)
        table.add(
            nbytes // MiB(1), results["nvmecr"], results["spdk"],
            results["xfs"], results["ext4"],
            results["xfs"] / results["nvmecr"] - 1.0,
            results["ext4"] / results["nvmecr"] - 1.0,
            kernel_frac["nvmecr"], kernel_frac["xfs"], kernel_frac["ext4"],
        )
    table.note("paper @512MB: XFS +19%, ext4 +83%, SPDK ~= NVMe-CR; "
               "kernel time 10%/76.5%/79% for NVMe-CR/XFS/ext4")
    return table


# ===========================================================================
# Figure 7(d) — drilldown: optimisations one by one
# ===========================================================================

_DRILLDOWN_STAGES: List[Tuple[str, RuntimeConfig]] = [
    ("base (kernel, global ns, physical log, 4K)", RuntimeConfig.drilldown_base()),
    ("+userspace & private ns", RuntimeConfig(
        userspace_direct=True, private_namespace=True,
        metadata_provenance=False, hugeblocks=False, log_coalescing=False)),
    ("+metadata provenance", RuntimeConfig(
        userspace_direct=True, private_namespace=True,
        metadata_provenance=True, hugeblocks=False, log_coalescing=True)),
    ("+hugeblocks", RuntimeConfig()),
]


def fig7d_drilldown(
    procs: Iterable[int] = (28, 112, 448),
    atoms_per_rank: int = 16_000,
    write_chunk: int = MiB(4),
    seed: int = 5,
) -> ResultTable:
    """Checkpoint time as optimisations stack up.

    Paper anchors (§IV-E): userspace+private namespace up to 44% (higher
    at scale); metadata provenance up to 17%; hugeblocks up to 62%
    (mostly at low concurrency).
    """
    table = ResultTable(
        "Figure 7(d): drilldown — checkpoint time (s) per optimisation stage",
        ["procs"] + [name for name, _cfg in _DRILLDOWN_STAGES],
    )
    nbytes = atoms_per_rank * cal.COMD_BYTES_PER_ATOM
    for p in procs:
        row: List[float] = []
        for stage_name, stage_config in _DRILLDOWN_STAGES:
            config = stage_config.with_(
                log_region_bytes=MiB(64), state_region_bytes=MiB(64),
            )
            from repro.apps.deployment import Deployment

            dep = Deployment(seed=seed)
            global_ns = (
                GlobalNamespaceService(dep.env)
                if not config.private_namespace else None
            )
            quota = max(GiB(1), (-(-p // 8)) * (2 * nbytes + MiB(160)))
            handle = build_system(
                "nvmecr", nprocs=p, deployment=dep, devices=8,
                bytes_per_device=quota, config=config,
                global_namespace=global_ns, job_name="drill",
            )

            def rank_main(shim, comm):
                stats = CheckpointStats()
                yield from shim.mkdir("/ckpt")
                yield from comm.barrier()
                t0 = shim.env.now
                fd = yield from shim.open(f"/ckpt/rank{comm.rank:05d}.dat", "w")
                remaining = nbytes
                while remaining > 0:
                    take = min(write_chunk, remaining)
                    yield from shim.write(fd, take)
                    remaining -= take
                yield from shim.fsync(fd)
                yield from shim.close(fd)
                yield from comm.barrier()
                stats.checkpoint_times.append(shim.env.now - t0)
                stats.bytes_written = nbytes
                return stats

            row.append(
                max(s.checkpoint_time for s in handle.run_ranks(rank_main))
            )
        table.add(p, *row)
    table.note("paper: +userspace/private-ns up to 44% (grows with scale); "
               "+provenance up to 17%; +hugeblocks up to 62% (low concurrency)")
    return table


# ===========================================================================
# Figure 8(a) — NVMf overhead: local vs remote vs Crail
# ===========================================================================


def fig8a_nvmf_overhead(
    sizes: Iterable[int] = (MiB(64), MiB(128), MiB(256), MiB(512)),
    nprocs: int = 28,
    seed: int = 6,
) -> ResultTable:
    """Full-subscription dump on a local vs NVMf-remote SSD, and Crail.

    Paper anchors (§IV-F): remote overhead < 3.5% regardless of size;
    Crail 5-10% slower than NVMe-CR despite the same SPDK data plane.
    """
    table = ResultTable(
        "Figure 8(a): NVMf overhead (s)",
        ["size_MiB", "local", "remote", "crail",
         "remote_overhead", "crail_vs_nvmecr"],
    )
    for nbytes in sizes:
        times: Dict[str, float] = {}
        for mode, system in (("local", "microfs"), ("remote", "microfs-remote")):
            fleet = build_system(
                system, nprocs=nprocs, config=_bench_config(),
                partition_bytes=2 * nbytes + MiB(64), seed=seed,
            )
            times[mode] = fleet.makespan(dump_files(nbytes))
        crail = build_system(
            "crail", nprocs=nprocs,
            namespace_bytes=(2 * nbytes) * nprocs + GiB(1), seed=seed,
        )
        times["crail"] = crail.makespan(dump_files(nbytes))
        table.add(
            nbytes // MiB(1), times["local"], times["remote"], times["crail"],
            times["remote"] / times["local"] - 1.0,
            times["crail"] / times["remote"] - 1.0,
        )
    table.note("paper: remote overhead < 3.5%; Crail 5-10% above NVMe-CR")
    return table


# ===========================================================================
# Figure 8(b) — file create throughput
# ===========================================================================


def fig8b_create_rate(
    procs: Iterable[int] = _DEFAULT_PROCS,
    creates_per_proc: int = 10,
    seed: int = 7,
    systems: Sequence[str] = ("nvmecr", "orangefs", "glusterfs"),
) -> ResultTable:
    """N-N file create throughput at scale.

    Paper anchor (§IV-G): "NVMe-CR provides 7x and 18x higher create
    performance at 448 processes" vs OrangeFS and GlusterFS.
    """
    others = (
        [s for s in systems if s != "nvmecr"] if "nvmecr" in systems else []
    )
    table = ResultTable(
        "Figure 8(b): file creates per second",
        ["procs"] + list(systems)
        + [f"nvmecr_vs_{get_system(s).short}" for s in others],
    )

    def create_work(i, client, count=creates_per_proc):
        for k in range(count):
            fd = yield from client.open(f"/ckpt/r{i:05d}_f{k:03d}.dat", "w")
            yield from client.close(fd)

    for p in procs:
        rates: Dict[str, float] = {}
        for kind in systems:
            if kind == "nvmecr":
                # NVMe-CR through the full runtime.
                handle = build_system(
                    "nvmecr", nprocs=p, seed=seed, devices=8,
                    bytes_per_device=GiB(2), config=_bench_config(),
                    job_name="creates",
                )

                def rank_main(shim, comm):
                    yield from shim.mkdir("/ckpt")
                    yield from comm.barrier()
                    t0 = shim.env.now
                    yield from create_work(comm.rank, shim)
                    yield from comm.barrier()
                    return shim.env.now - t0

                rates[kind] = p * creates_per_proc / max(handle.run_ranks(rank_main))
            else:
                handle = build_system(
                    kind, nprocs=p, namespace_bytes=GiB(4), seed=seed
                )
                elapsed = handle.makespan(lambda i, c: create_work(i, c))
                rates[kind] = p * creates_per_proc / elapsed
        table.add(
            p, *(rates[s] for s in systems),
            *(rates["nvmecr"] / rates[s] for s in others),
        )
    table.note("paper @448: NVMe-CR 7x OrangeFS and 18x GlusterFS")
    return table


# ===========================================================================
# Figure 9 — strong/weak scaling checkpoint & recovery efficiency
# ===========================================================================


def _fig9_unit(mode: str, p: int, system: str, checkpoints: int,
               atoms_per_rank: int, seed: int) -> dict:
    """One Figure 9 cell: one system at one scale, fresh substrate.

    The sequential loop shares one :class:`CoMDProxy` across the systems
    at a given scale; the proxy is stateless (its rank RNGs derive from
    ``(seed, rank)`` at use), so building a fresh one per cell is
    bit-identical and makes the cell a self-contained, picklable unit.
    """
    if mode == "weak":
        config = CoMDConfig(atoms_per_rank=atoms_per_rank,
                            checkpoints=checkpoints)
    else:
        config = CoMDConfig.strong_scaling(p, checkpoints=checkpoints)
    comd = CoMDProxy(config, seed=seed)
    nbytes = config.checkpoint_bytes_per_rank
    handle, stats = _run_comd(system, p, comd, seed, with_recovery=True)
    ckpt_eff, rec_eff = _efficiencies(handle, p, nbytes, checkpoints, stats)
    return {"procs": p, "system": system, "ckpt": ckpt_eff, "rec": rec_eff}


def fig9_plan(
    mode: str = "weak",
    procs: Iterable[int] = (56, 112, 224, 448),
    checkpoints: int = 3,
    atoms_per_rank: int = 32_000,
    seed: int = 8,
    systems: Sequence[str] = ("nvmecr", "orangefs", "glusterfs"),
) -> "ExecutionPlan":
    """Figure 9 as an execution plan: one unit per (scale, system) cell.

    Unit weight is the process count, so LPT shard assignment puts the
    448-rank cells on different workers first — the knob that turns the
    quadratic-ish scaling sweep into near-linear scale-out.
    """
    from repro.exec import ExecutionPlan, SimUnit

    if mode not in ("weak", "strong"):
        raise ValueError(f"mode must be weak|strong, got {mode!r}")
    scales = list(procs)
    units = []
    for i, (p, system) in enumerate(
            (p, s) for p in scales for s in systems):
        units.append(SimUnit(
            index=i,
            label=f"fig9{mode}/p={p}/{system}",
            fn="repro.bench.experiments:_fig9_unit",
            params={"mode": mode, "p": p, "system": system,
                    "checkpoints": checkpoints,
                    "atoms_per_rank": atoms_per_rank, "seed": seed},
            weight=float(p),
        ))

    def reduce(results) -> ResultTable:
        shorts = [get_system(s).short for s in systems]
        table = ResultTable(
            f"Figure 9 ({mode} scaling): checkpoint / recovery efficiency",
            ["procs"] + [f"ckpt_{s}" for s in shorts]
            + [f"rec_{s}" for s in shorts],
        )
        cells = {(r.payload["procs"], r.payload["system"]): r.payload
                 for r in results}
        for p in scales:
            table.add(
                p,
                *(cells[(p, s)]["ckpt"] for s in systems),
                *(cells[(p, s)]["rec"] for s in systems),
            )
        table.note("paper weak@448: NVMe-CR 0.96 ckpt / 0.99 recovery; "
                   "GlusterFS ~13% lower ckpt; GlusterFS recovery dips at 448")
        return table

    return ExecutionPlan(title=f"fig9{mode}", units=units, reduce=reduce)


def fig9_scaling(
    mode: str = "weak",
    procs: Iterable[int] = (56, 112, 224, 448),
    checkpoints: int = 3,
    atoms_per_rank: int = 32_000,
    atoms_total: int = 16_384_000,
    seed: int = 8,
    systems: Sequence[str] = ("nvmecr", "orangefs", "glusterfs"),
    executor: Optional["Executor"] = None,
) -> ResultTable:
    """Checkpoint and recovery efficiency (Figures 9(a)-(d)).

    Efficiency = application-visible IO bandwidth / aggregate SSD peak.
    Paper anchor: NVMe-CR reaches 0.96 (checkpoint) and 0.99 (recovery)
    at 448 processes weak scaling; GlusterFS ~13% behind; OrangeFS far
    behind at scale; GlusterFS recovery dips at 448.

    With an ``executor`` the sweep runs as an execution plan — each
    (scale, system) cell is an independent unit — and can scale out
    across worker processes with bit-identical results.
    """
    if mode not in ("weak", "strong"):
        raise ValueError(f"mode must be weak|strong, got {mode!r}")
    plan = fig9_plan(mode, procs=procs, checkpoints=checkpoints,
                     atoms_per_rank=atoms_per_rank, seed=seed, systems=systems)
    if executor is not None:
        result = executor.execute(plan)
        table = result.value
        table.execution = result
        return table
    from repro.exec import run_unit

    return plan.reduce([run_unit(unit) for unit in plan.units])


def _efficiencies(handle, nprocs, nbytes, checkpoints, stats) -> Tuple[float, float]:
    total = nprocs * nbytes * checkpoints
    ckpt_time = max(s.checkpoint_time for s in stats)
    rec_time = max(s.restart_time for s in stats)
    write_eff = efficiency(total, ckpt_time, handle.aggregate_write_bandwidth())
    read_eff = efficiency(total, rec_time, handle.aggregate_read_bandwidth())
    return write_eff, read_eff


# ===========================================================================
# Table I — metadata overhead
# ===========================================================================


def tab1_metadata_overhead(
    nprocs: int = 448,
    atoms_per_rank: int = 32_000,
    checkpoints: int = 10,
    seed: int = 9,
    systems: Sequence[str] = ("orangefs", "glusterfs"),
) -> ResultTable:
    """Metadata storage overhead with CoMD.

    Paper anchor (Table I): OrangeFS ~2686 MB per storage node,
    GlusterFS 3.5 MB per node, NVMe-CR ~445 MB per runtime (reserved
    log + internal-state regions); DRAM < 512 MB per instance.
    """
    table = ResultTable(
        "Table I: metadata overhead (MB)",
        ["system", "scope", "metadata_MB"],
    )
    comd = CoMDProxy(CoMDConfig(atoms_per_rank=atoms_per_rank, checkpoints=checkpoints))
    # NVMe-CR with paper-scale reserved regions: the runtime provisions
    # its state region to hold the full DRAM image twice (A/B slots).
    # All instances are symmetric, so one probe instance running the
    # per-rank workload yields the per-runtime footprint.
    config = _bench_config(
        log_region_bytes=MiB(29), state_region_bytes=MiB(416)
    )
    fleet = build_system(
        "microfs", nprocs=1, config=config, partition_bytes=GiB(4), seed=seed
    )
    shim = fleet.clients[0]

    def probe():
        yield from shim.mkdir("/ckpt")
        for step in range(checkpoints):
            fd = yield from shim.open(f"/ckpt/s{step:03d}.dat", "w")
            yield from shim.write(fd, comd.config.checkpoint_bytes_per_rank)
            yield from shim.close(fd)

    fleet.env.run_until_complete(fleet.env.process(probe()))
    footprint = fleet.cluster.instances[0].footprint()
    table.add("NVMe-CR", "per runtime", footprint.ssd_bytes() / 1e6)
    table.add("NVMe-CR (DRAM)", "per runtime", footprint.dram_bytes() / 1e6)

    for kind in systems:
        handle = build_system(
            kind, nprocs=nprocs, seed=seed,
            namespace_bytes=comd.config.total_checkpoint_bytes(nprocs) // 2 + GiB(1),
        )
        for step in range(checkpoints):
            handle.makespan(
                dump_files(comd.config.checkpoint_bytes_per_rank, step=step)
            )
        table.add(
            kind, "per storage node", handle.metadata_bytes_per_server() / 1e6
        )
    table.note("paper: OrangeFS 2686.25 / GlusterFS 3.5 per node; "
               "NVMe-CR 445.25 per runtime, DRAM < 512 MB")
    return table


# ===========================================================================
# Table II — multi-level checkpointing
# ===========================================================================


def tab2_multilevel(
    nprocs: int = 448,
    atoms_per_rank: int = 32_000,
    checkpoints: int = 10,
    pfs_interval: int = 10,
    seed: int = 10,
    systems: Sequence[str] = ("orangefs", "glusterfs", "nvmecr"),
) -> ResultTable:
    """Multi-level checkpointing: one checkpoint in ten goes to Lustre.

    Paper anchor (Table II @448): checkpoint 85.9/44.5/39.5 s, recovery
    3.6/4.5/3.6 s, progress 0.252/0.402/0.423 for OrangeFS/GlusterFS/
    NVMe-CR.
    """
    from repro.apps.deployment import Deployment

    table = ResultTable(
        "Table II: multi-level checkpointing at scale",
        ["system", "checkpoint_s", "recovery_s", "progress_rate"],
    )
    nbytes = atoms_per_rank * cal.COMD_BYTES_PER_ATOM
    compute_phase = atoms_per_rank * cal.COMD_COMPUTE_SECONDS_PER_ATOM

    def run(system: str) -> Tuple[float, float, float]:
        dep = Deployment(seed=seed)
        lustre = LustreCluster(dep.env)

        if system == "nvmecr":
            quota = _device_quota(nprocs, CoMDProxy(
                CoMDConfig(atoms_per_rank=atoms_per_rank, checkpoints=checkpoints)), 8)
            handle = build_system(
                "nvmecr", nprocs=nprocs, deployment=dep, devices=8,
                bytes_per_device=quota, config=_bench_config(), job_name="ml",
            )
        else:
            per_server = nbytes * checkpoints * nprocs // 2 + GiB(1)
            handle = build_system(
                system, nprocs=nprocs, namespace_bytes=per_server,
                deployment=dep,
            )

        def rank_main(shim, comm):
            return (yield from _multilevel_rank(
                shim, comm, lustre, nbytes,
                checkpoints, pfs_interval, compute_phase,
            ))

        ranks = handle.run_ranks(rank_main)
        ckpt = max(r["checkpoint"] for r in ranks)
        rec = max(r["recovery"] for r in ranks)
        compute = checkpoints * compute_phase
        progress = compute / (compute + ckpt)
        return ckpt, rec, progress

    for system in systems:
        ckpt, rec, progress = run(system)
        table.add(get_system(system).title, ckpt, rec, progress)
    table.note("paper: ckpt 85.9/44.5/39.5 s; recovery 3.6/4.5/3.6 s; "
               "progress 0.252/0.402/0.423")
    return table


def _multilevel_rank(shim, comm, lustre, nbytes, checkpoints, pfs_interval, compute_phase):
    """One rank's compute/checkpoint loop with a Lustre second tier."""
    env = shim.env
    from repro.errors import FileExists

    try:
        yield from shim.mkdir("/ckpt")
    except FileExists:
        pass
    mlc = MultiLevelCheckpointer(shim, lustre, pfs_interval=pfs_interval, rank=comm.rank)
    mlc._dir_made = True
    ckpt_total = 0.0
    for step in range(checkpoints):
        yield env.timeout(compute_phase)
        yield from comm.barrier()
        t0 = env.now
        yield from mlc.write_checkpoint(step, nbytes)
        yield from comm.barrier()
        ckpt_total += env.now - t0
    # Recovery: read the newest fast-tier checkpoint back (Table II
    # times normal recovery; cascading failure is Lustre's job).
    yield from comm.barrier()
    t0 = env.now
    yield from mlc.recover_latest(prefer_level=1)
    yield from comm.barrier()
    recovery = env.now - t0
    return {"checkpoint": ckpt_total, "recovery": recovery}


# ===========================================================================
# Cross-system matrix: every registered backend under one N-N workload
# ===========================================================================


def sysmatrix(
    nprocs: int = 8,
    nbytes: int = MiB(64),
    systems: Optional[Sequence[str]] = None,
    seed: int = 13,
) -> ResultTable:
    """One N-N write/fsync/read-back pass over every registered system.

    Not a paper artefact: a registry exerciser. Every backend runs the
    same rank program through :meth:`SystemHandle.run_ranks`, so a
    backend that drifts from the shim contract fails here before it can
    skew a calibrated figure.
    """
    from repro.systems import names as system_names

    chosen = tuple(systems) if systems else tuple(system_names())
    table = ResultTable(
        "System matrix: N-N write+fsync then read-back",
        ["system", "kind", "write_s", "read_s", "write_GiBps"],
    )

    def rank_main(shim, comm):
        env = shim.env
        path = f"/m{comm.rank:04d}.dat"
        yield from comm.barrier()
        t0 = env.now
        fd = yield from shim.open(path, "w")
        yield from shim.write(fd, nbytes)
        yield from shim.fsync(fd)
        yield from shim.close(fd)
        yield from comm.barrier()
        write_s = env.now - t0
        t1 = env.now
        fd = yield from shim.open(path, "r")
        yield from shim.read(fd, nbytes)
        yield from shim.close(fd)
        yield from comm.barrier()
        return write_s, env.now - t1

    for name in chosen:
        handle = _build_for_matrix(name, nprocs, nbytes, seed)
        ranks = handle.run_ranks(rank_main)
        write_s = max(r[0] for r in ranks)
        read_s = max(r[1] for r in ranks)
        spec = get_system(name)
        table.add(
            spec.title, spec.kind, write_s, read_s,
            nprocs * nbytes / write_s / GiB(1),
        )
    table.note(f"{nprocs} ranks x {nbytes // MiB(1)} MiB per rank")
    return table


def _build_for_matrix(name: str, nprocs: int, nbytes: int, seed: int) -> SystemHandle:
    """Provision each backend generously enough for one N-N pass."""
    spare = 2 * nbytes + MiB(64)
    if name in ("nvmecr", "nvmecr-raft", "nvmecr-tiered"):
        per_device = max(GiB(1), -(-nprocs // 8) * spare)
        return build_system(
            name, nprocs=nprocs, seed=seed, devices=8,
            bytes_per_device=per_device, config=_bench_config(),
            job_name="matrix",
        )
    if name in ("microfs", "microfs-remote"):
        return build_system(
            name, nprocs=nprocs, config=_bench_config(),
            partition_bytes=spare, seed=seed,
        )
    if name in ("xfs", "ext4", "spdk"):
        return build_system(name, nprocs=nprocs, bytes_per_client=spare, seed=seed)
    if name == "burstfs":
        return build_system(name, nprocs=nprocs, namespace_bytes=2 * spare, seed=seed)
    return build_system(
        name, nprocs=nprocs, namespace_bytes=nprocs * spare + GiB(1), seed=seed
    )


# ===========================================================================
# Ablations called out in DESIGN.md
# ===========================================================================


def ablation_coalescing(
    writes: int = 64,
    chunk: int = KiB(256),
    seed: int = 11,
) -> ResultTable:
    """Log record coalescing on/off: records written and replayed.

    Paper anchor (§IV-I): without coalescing recovery takes 4 s; with it,
    recovery is near-instantaneous.
    """
    from repro.core.data_plane import DataPlane
    from repro.core.microfs.recovery import recover

    table = ResultTable(
        "Ablation: log record coalescing",
        ["coalescing", "log_records", "replayed", "recovery_s"],
    )
    for enabled in (True, False):
        handle = build_system(
            "microfs", nprocs=1, config=_bench_config(log_coalescing=enabled),
            partition_bytes=GiB(1), seed=seed,
        )
        fleet = handle.cluster
        shim = handle.clients[0]

        def workload():
            fd = yield from shim.open("/big.dat", "w")
            for _ in range(writes):
                yield from shim.write(fd, chunk)
            yield from shim.close(fd)

        fleet.env.run_until_complete(fleet.env.process(workload()))
        fs = fleet.instances[0]
        data_plane = DataPlane(
            fleet.env, fs.data_plane.transport, fleet.namespace.nsid, fleet.config
        )

        def do_recover():
            return (yield from recover(
                fleet.env, fleet.config, data_plane,
                fs.partition,
            ))

        _fs2, report = fleet.env.run_until_complete(fleet.env.process(do_recover()))
        table.add(
            enabled, fs.oplog.record_count, report.records_replayed, report.duration
        )
    table.note("paper: coalescing makes runtime recovery near-instantaneous "
               "(4 s -> ~0 at 448 procs)")
    return table


def ablation_distributors(
    nfiles: int = 112,
    servers: int = 8,
    seed: int = 12,
) -> ResultTable:
    """Placement-policy CoV: round-robin vs jump hash vs vnode ring.

    DESIGN.md design-decision #5: why the balancer is round-robin.
    """
    import numpy as np

    from repro.hashing import HashRing, jump_hash

    table = ResultTable(
        "Ablation: data distributors (load CoV over servers)",
        ["policy", "cov"],
    )
    names = [f"/ckpt/rank{i:05d}.dat" for i in range(nfiles)]
    loads_rr = np.zeros(servers)
    for i in range(nfiles):
        loads_rr[i % servers] += 1
    table.add("round-robin (NVMe-CR)", coefficient_of_variation(loads_rr))
    loads_jump = np.zeros(servers)
    for name in names:
        loads_jump[jump_hash(name, servers)] += 1
    table.add("jump hash (GlusterFS)", coefficient_of_variation(loads_jump))
    ring = HashRing([f"s{i}" for i in range(servers)], vnodes=64)
    members = {m: i for i, m in enumerate(ring.members())}
    loads_ring = np.zeros(servers)
    for name in names:
        loads_ring[members[ring.lookup(name)]] += 1
    table.add("vnode ring (64 vnodes)", coefficient_of_variation(loads_ring))
    return table


# ===========================================================================


def run_all(fast: bool = True) -> List[ResultTable]:
    """Run every experiment at (by default) reduced scale; print tables."""
    procs = (28, 56, 112) if fast else _DEFAULT_PROCS
    big_procs = (28, 112) if fast else (28, 112, 448)
    tables = [
        fig1_motivation(procs=procs),
        fig7a_hugeblock_sweep(nprocs=28 if fast else 28,
                              file_bytes=MiB(128) if fast else MiB(512)),
        fig7b_load_imbalance(procs=procs),
        fig7c_direct_access(
            sizes=(MiB(64), MiB(256)) if fast else (MiB(64), MiB(128), MiB(256), MiB(512))
        ),
        fig7d_drilldown(procs=big_procs),
        fig8a_nvmf_overhead(
            sizes=(MiB(64), MiB(256)) if fast else (MiB(64), MiB(128), MiB(256), MiB(512))
        ),
        fig8b_create_rate(procs=procs),
        fig9_scaling("weak", procs=(56, 112) if fast else (56, 112, 224, 448)),
        fig9_scaling("strong", procs=(56, 112) if fast else (56, 112, 224, 448)),
        tab1_metadata_overhead(nprocs=112 if fast else 448),
        tab2_multilevel(nprocs=112 if fast else 448, checkpoints=5 if fast else 10),
        sysmatrix(nprocs=8 if fast else 28, nbytes=MiB(16) if fast else MiB(64)),
        ablation_coalescing(),
        ablation_distributors(),
    ]
    for t in tables:
        t.show()
    return tables
