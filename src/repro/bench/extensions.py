"""Extension experiments beyond the paper's tables.

These quantify (a) the cache layer the paper names as future work (§V)
and (b) the complementary §II-B techniques combined with NVMe-CR —
incremental checkpointing and compression — so a downstream user can see
where each pays off on this runtime.
"""

from __future__ import annotations

from typing import Iterable

from repro.apps.compression import CompressionSpec, compressed_checkpoint
from repro.apps.incremental import IncrementalCheckpointer, IncrementalConfig
from repro.bench.harness import ResultTable
from repro.core.cache import CachedMicroFS
from repro.systems import build as build_system
from repro.units import GiB, MiB

__all__ = [
    "ext_burst_buffer",
    "ext_cache_layer",
    "ext_compression",
    "ext_incremental",
    "ext_mtbf_campaign",
    "ext_n1_pattern",
    "ext_skewed_balance",
]


def ext_cache_layer(
    nprocs: int = 14,
    nbytes: int = MiB(64),
    cache_bytes: int = MiB(128),
    seed: int = 31,
) -> ResultTable:
    """Cache layer (§V future work): restart-read time and checkpoint
    time under no cache / write-through / write-back."""
    table = ResultTable(
        "Extension: DRAM cache layer over NVMe-CR",
        ["config", "ckpt_s", "restart_s", "hit_rate"],
    )
    for mode in ("none", "write-through", "write-back"):
        handle = build_system(
            "microfs", nprocs=nprocs, partition_bytes=4 * nbytes + MiB(64), seed=seed
        )
        fleet = handle.cluster
        env = handle.env
        finish = {"ckpt": [], "read": []}

        def work(i, shim, mode=mode, finish=finish, fleet=fleet, env=env):
            target = shim._fs if mode == "none" else CachedMicroFS(
                shim._fs, cache_bytes, policy=mode
            )
            fd = yield from target.open("/ckpt.dat", create=True)
            yield from target.write(fd, nbytes)
            yield from target.fsync(fd)
            finish["ckpt"].append(env.now)
            # Immediate restart read (warm state).
            yield from target.pread(fd, nbytes, 0)
            yield from target.close(fd)
            finish["read"].append(env.now)
            if mode != "none":
                fleet.hit_rates = getattr(fleet, "hit_rates", [])
                fleet.hit_rates.append(target.hit_rate())

        for i, shim in enumerate(handle.clients):
            env.process(work(i, shim))
        env.run()
        ckpt = max(finish["ckpt"])
        restart = max(finish["read"]) - ckpt
        hit = (sum(fleet.hit_rates) / len(fleet.hit_rates)
               if getattr(fleet, "hit_rates", None) else 0.0)
        table.add(mode, ckpt, restart, hit)
    table.note("write-through: device-speed ckpt, DRAM-speed warm restart; "
               "write-back buys perceived write latency but pays at fsync")
    return table


def ext_incremental(
    dirty_fractions: Iterable[float] = (0.1, 0.3, 0.6, 1.0),
    state_bytes: int = MiB(128),
    checkpoints: int = 8,
    seed: int = 32,
) -> ResultTable:
    """Incremental checkpointing on NVMe-CR: volume and time vs dirty
    fraction (libhashckpt [31] combined with this runtime)."""
    table = ResultTable(
        "Extension: incremental checkpointing (hash-based)",
        ["dirty_frac", "bytes_vs_full", "time_s", "restore_s"],
    )
    for fraction in dirty_fractions:
        handle = build_system("microfs", nprocs=1, partition_bytes=GiB(2), seed=seed)
        shim = handle.clients[0]
        env = handle.env
        config = IncrementalConfig(
            state_bytes=state_bytes, dirty_fraction=fraction, full_interval=checkpoints
        )
        inc = IncrementalCheckpointer(shim, config, seed=seed)

        def scenario():
            t0 = env.now
            for step in range(checkpoints):
                yield from inc.write_checkpoint(step)
            ckpt_time = env.now - t0
            t1 = env.now
            yield from inc.restore()
            return ckpt_time, env.now - t1

        ckpt_time, restore_time = env.run_until_complete(env.process(scenario()))
        table.add(
            fraction,
            inc.bytes_written / (checkpoints * state_bytes),
            ckpt_time,
            restore_time,
        )
    table.note("volume and time scale with the dirty fraction; restore pays "
               "for reading the increment chain")
    return table


def ext_compression(
    procs: Iterable[int] = (1, 7, 14, 28),
    nbytes: int = MiB(64),
    seed: int = 33,
) -> ResultTable:
    """Compression crossover: zstd-class compression wins once the SSD is
    shared (IO-bound) and loses when a rank owns the device (CPU-bound)."""
    table = ResultTable(
        "Extension: checkpoint compression crossover",
        ["procs", "plain_s", "zstd_s", "speedup"],
    )
    spec = CompressionSpec.zstd()
    for p in procs:
        times = {}
        for compress in (False, True):
            handle = build_system(
                "microfs", nprocs=p, partition_bytes=4 * nbytes + MiB(64), seed=seed
            )
            env = handle.env
            finish = []

            def work(i, shim, compress=compress, env=env, finish=finish):
                if compress:
                    yield from compressed_checkpoint(shim, "/c.dat", nbytes, spec)
                else:
                    fd = yield from shim.open("/c.dat", "w")
                    yield from shim.write(fd, nbytes)
                    yield from shim.fsync(fd)
                    yield from shim.close(fd)
                finish.append(env.now)

            for i, shim in enumerate(handle.clients):
                env.process(work(i, shim))
            env.run()
            times[compress] = max(finish)
        table.add(p, times[False], times[True], times[False] / times[True])
    table.note("speedup < 1 at low concurrency (CPU-bound), > 1 once the "
               "device is the bottleneck")
    return table


def ext_burst_buffer(
    nranks: int = 8,
    nbytes: int = MiB(64),
    seed: int = 34,
) -> ResultTable:
    """Node-local burst buffer vs disaggregated NVMe-CR under failure.

    The §II-B contrast: BurstFS-class local buffers dump fast, but a
    compute-node failure destroys its undrained checkpoints; NVMe-CR's
    balancer keeps checkpoints on a *partner* failure domain, so the
    same failure loses nothing.
    """
    from repro.errors import RecoveryError

    table = ResultTable(
        "Extension: node-local burst buffer vs disaggregated NVMe-CR",
        ["system", "ckpt_s", "survives_node_failure"],
    )

    # --- BurstFS-class node-local buffers --------------------------------
    bb_handle = build_system(
        "burstfs", nprocs=nranks, namespace_bytes=4 * nbytes + MiB(64), seed=seed
    )
    bb = bb_handle.cluster
    env = bb_handle.env
    nodes = [f"comp{i:02d}" for i in range(nranks)]
    finish = []

    def bb_work(i):
        client = bb_handle.clients[i]
        fd = yield from client.open(f"/ckpt{i}", "w")
        yield from client.write(fd, nbytes)
        yield from client.fsync(fd)
        yield from client.close(fd)
        finish.append(env.now)

    for i in range(nranks):
        env.process(bb_work(i))
    env.run()
    bb_time = max(finish)
    # Node 0 dies before draining; its checkpoint is unrecoverable.
    bb.fail_node(nodes[0])
    survivor = bb.client("probe", nodes[1])

    def bb_recover():
        fd = yield from survivor.open("/ckpt0", "r")
        yield from survivor.read(fd, nbytes)

    try:
        env.run_until_complete(env.process(bb_recover()))
        bb_survives = True
    except RecoveryError:
        bb_survives = False
    table.add("burstfs (node-local)", bb_time, bb_survives)

    # --- NVMe-CR (disaggregated, partner failure domain) ------------------
    handle = build_system(
        "nvmecr", nprocs=nranks, seed=seed, devices=2,
        bytes_per_device=nranks * 2 * nbytes + MiB(512), job_name="bbcmp",
    )

    def rank_main(shim, comm):
        yield from shim.mkdir("/ckpt")
        yield from comm.barrier()
        t0 = shim.env.now
        fd = yield from shim.open("/ckpt/state.dat", "w")
        yield from shim.write(fd, nbytes)
        yield from shim.fsync(fd)
        yield from shim.close(fd)
        yield from comm.barrier()
        ckpt = shim.env.now - t0
        # A compute-node failure cannot touch the storage rack: the
        # checkpoint reads back fine (here, after the dump completes).
        fd = yield from shim.open("/ckpt/state.dat", "r")
        pieces = yield from shim.read(fd, nbytes)
        yield from shim.close(fd)
        return ckpt, sum(p.nbytes for p in pieces)

    results = handle.run_ranks(rank_main)
    ckpt = max(r[0] for r in results)
    survives = all(r[1] == nbytes for r in results)
    table.add("nvme-cr (disaggregated)", ckpt, survives)
    table.note("local buffers dump in parallel at node speed but share the "
               "process's failure domain; NVMe-CR pays the fabric and keeps "
               "the data on a partner domain")
    return table


def ext_mtbf_campaign(
    mtbf: float = 120.0,
    intervals: Iterable[float] = (2.0, 6.0, 12.0, 30.0, 90.0),
    total_compute: float = 600.0,
    nbytes: int = MiB(256),
    seed: int = 35,
) -> ResultTable:
    """Failure-driven campaign (the §I motivation, closed-loop).

    Sweeps the checkpoint interval under a short MTBF and reports
    effective progress; the measured optimum should sit near Daly's
    period for the measured checkpoint cost. Run on NVMe-CR.
    """
    from repro.apps.mtbf import CampaignConfig, FailureCampaign, daly_interval

    table = ResultTable(
        f"Extension: failure campaign (MTBF={mtbf:.0f}s, "
        f"{int(total_compute)}s of compute)",
        ["interval_s", "progress", "failures", "lost_work_s", "ckpt_cost_s"],
    )
    measured_cost = None
    for interval in intervals:
        handle = build_system(
            "microfs", nprocs=1, partition_bytes=8 * nbytes + MiB(64), seed=seed
        )
        shim = handle.clients[0]
        config = CampaignConfig(
            total_compute=total_compute, checkpoint_interval=interval,
            checkpoint_bytes=nbytes, mtbf=mtbf, restart_cost=1.0,
        )
        campaign = FailureCampaign(shim, config, seed=seed)
        result = handle.env.run_until_complete(handle.env.process(campaign.run()))
        cost = (result.checkpoint_time / result.checkpoints_written
                if result.checkpoints_written else 0.0)
        measured_cost = measured_cost or cost
        table.add(interval, result.effective_progress, result.failures,
                  result.lost_work, cost)
    if measured_cost:
        table.note(
            f"Daly-optimal interval for C={measured_cost:.2f}s, M={mtbf:.0f}s: "
            f"{daly_interval(mtbf, measured_cost):.1f}s"
        )
    return table


def ext_n1_pattern(
    nranks: int = 56,
    segment: int = MiB(16),
    seed: int = 36,
) -> ResultTable:
    """N-1 vs N-N on each system (§III-E / PLFS [24]).

    N-1: every rank writes its segment of ONE shared file. On a shared
    namespace, concurrent writers serialise on the file's lock — the
    pathology PLFS rewrites N-1 into N-N to avoid. NVMe-CR's private
    namespaces do that rewriting by construction, so its N-1 equals its
    N-N.
    """
    table = ResultTable(
        "Extension: N-1 (shared file) vs N-N (file per rank)",
        ["system", "n1_s", "nn_s", "n1_penalty"],
    )

    # --- NVMe-CR -----------------------------------------------------------
    times = {}
    for pattern in ("n1", "nn"):
        handle = build_system(
            "microfs", nprocs=nranks,
            partition_bytes=4 * segment + MiB(64), seed=seed,
        )
        env = handle.env
        finish = []

        def work(i, shim, pattern=pattern, env=env, finish=finish):
            path = "/shared.dat" if pattern == "n1" else f"/rank{i:05d}.dat"
            fd = yield from shim.open(path, "a")
            # Private namespace: the rank's segment starts at its own 0.
            yield from shim.pwrite(fd, segment, 0)
            yield from shim.fsync(fd)
            yield from shim.close(fd)
            finish.append(env.now)

        for i, shim in enumerate(handle.clients):
            env.process(work(i, shim))
        env.run()
        times[pattern] = max(finish)
    table.add("nvme-cr", times["n1"], times["nn"], times["n1"] / times["nn"])

    # --- OrangeFS (true shared file: one lock, rank-strided offsets) --------
    times = {}
    for pattern in ("n1", "nn"):
        handle = build_system(
            "orangefs", nprocs=nranks,
            namespace_bytes=nranks * 2 * segment + GiB(1), seed=seed,
        )
        env = handle.env
        finish = []

        def work(i, client, pattern=pattern, env=env, finish=finish):
            path = "/shared.dat" if pattern == "n1" else f"/rank{i:05d}.dat"
            fd = yield from client.open(path, "a")
            yield from client.pwrite(fd, segment, i * segment if pattern == "n1" else 0)
            yield from client.fsync(fd)
            yield from client.close(fd)
            finish.append(env.now)

        for i, client in enumerate(handle.clients):
            env.process(work(i, client))
        env.run()
        times[pattern] = max(finish)
    table.add("orangefs", times["n1"], times["nn"], times["n1"] / times["nn"])
    table.note("NVMe-CR private namespaces turn N-1 into N-N internally "
               "(no penalty); shared-namespace N-1 serialises on the file "
               "lock — the pathology PLFS [24] exists to fix")
    return table


def ext_skewed_balance(
    nprocs: int = 112,
    skews: Iterable[float] = (0.0, 0.3, 0.6, 1.0),
    seed: int = 37,
) -> ResultTable:
    """Load balance under AMR-skewed checkpoint sizes (miniAMR proxy).

    Figure 7(b)'s perfect balance assumes equal file sizes ("Since each
    process creates a file of the same size, the load on each server is
    then exactly equal"). miniAMR violates that: round-robin still beats
    hashing, but its CoV is no longer zero — quantified here.
    """
    from repro.apps.miniamr import MiniAMRConfig, MiniAMRProxy
    from repro.bench.experiments import _bench_config
    from repro.metrics import coefficient_of_variation

    table = ResultTable(
        "Extension: balance under AMR size skew (CoV of per-server load)",
        ["skew_sigma", "nvmecr_cov", "glusterfs_cov"],
    )
    for skew in skews:
        config = MiniAMRConfig(
            mean_blocks_per_rank=128, checkpoints=2, refinement_skew=skew
        )
        proxy = MiniAMRProxy(config, seed=seed)
        # NVMe-CR.
        quota = int(20 * config.mean_checkpoint_bytes * -(-nprocs // 8)) + GiB(1)
        nvmecr = build_system(
            "nvmecr", nprocs=nprocs, seed=seed, devices=8,
            bytes_per_device=quota, config=_bench_config(), job_name="amr",
        )
        nvmecr.run_ranks(proxy.rank_main)
        nvmecr_cov = coefficient_of_variation(
            [b for b in nvmecr.load_per_server() if b > 0]
        )
        # GlusterFS.
        gfs = build_system(
            "glusterfs", nprocs=nprocs, seed=seed,
            namespace_bytes=int(3 * config.mean_checkpoint_bytes * nprocs) + GiB(1),
        )
        gfs.run_ranks(proxy.rank_main)
        gfs_cov = coefficient_of_variation(gfs.load_per_server())
        table.add(skew, nvmecr_cov, gfs_cov)
    table.note("round-robin degrades gracefully with size skew and stays "
               "well below consistent hashing at every sigma")
    return table
