"""The failover experiment: control-plane availability under faults.

For each (system, fault rate) cell the experiment runs a steady stream
of metadata operations against the system's control-plane store while
the fault injector alternates the two consensus-level fault kinds —
:class:`~repro.faults.model.LeaderKill` and a minority
:class:`~repro.faults.model.NetworkPartition` — and reports:

* **availability gap** — the longest interval between consecutive
  acknowledged operations (how long the control plane was unable to
  commit),
* **recovery latency** — time from each fault strike to the first
  subsequent acknowledged operation (election + catch-up for the
  replicated store; component repair for the single-authority baseline),
* **zero metadata loss** — after the run, every acknowledged operation
  is verified against the surviving state, and all full replicas must
  agree by content digest (the replicated store's restore-vs-pre-fault
  check).

Running it against ``nvmecr`` (single authority) alongside
``nvmecr-raft`` shows the trade the ROADMAP names: the baseline's gap is
the full component repair time, the replicated control plane's is one
election timeout.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.bench.harness import ResultTable
from repro.faults.injector import FaultInjector
from repro.faults.model import Fault, LeaderKill, NetworkPartition
from repro.systems import build as build_system
from repro.units import GiB, MiB, ms

__all__ = ["failover"]

#: Client poll period while the single-authority baseline is down.
_DOWN_POLL = ms(2)


def _build(name: str, seed: int) -> Any:
    """One deployment-backed system, minimally provisioned (the failover
    workload is control-plane-only; no checkpoint data moves)."""
    kwargs: Dict[str, Any] = dict(
        nprocs=2, seed=seed, devices=2,
        bytes_per_device=max(GiB(1) // 8, 2 * MiB(64)), job_name="failover",
    )
    if name == "nvmecr-raft":
        kwargs.update(replicas=3, zones=2)
    return build_system(name, **kwargs)


def _run_cell(
    name: str,
    fault_rate: float,
    n_ops: int,
    op_interval: float,
    repair_after: float,
    seed: int,
) -> Dict[str, Any]:
    """One (system, fault rate) cell; returns the measured dict."""
    handle = _build(name, seed)
    env = handle.env
    dep = handle.deployment
    group = handle.extras.get("group")
    store = handle.extras.get("store")
    if store is None:
        from repro.core.control_plane import make_metadata_store

        store = make_metadata_store(env, "local")

    injector = FaultInjector(env, cluster=dep.cluster, seed=seed)
    if group is not None:
        injector.attach_consensus(group)

    # The single-authority baseline has no elections: a control-plane
    # fault takes the one authority down until its repair completes.
    down = {"flag": False}
    fault_times: List[float] = []

    def on_fault(record: Any, fault: Fault, radius: Any) -> None:
        fault_times.append(record.injected_at)
        if group is None:
            down["flag"] = True

    def on_repair(record: Any, fault: Fault, radius: Any) -> None:
        if group is None:
            down["flag"] = False

    injector.subscribe(on_fault)
    injector.subscribe_repair(on_repair)

    # Evenly spaced strikes, alternating kind — same schedule for every
    # system at a given rate (common random numbers discipline, with no
    # randomness needed at all).
    duration = n_ops * op_interval
    n_faults = int(fault_rate * duration)
    for k in range(n_faults):
        at = (k + 0.5) * duration / max(n_faults, 1)
        fault: Fault = (
            LeaderKill("control-plane") if k % 2 == 0
            else NetworkPartition("control-plane")
        )
        injector.at(at, fault, repair_after=repair_after)
    injector.start()

    shadow: Dict[str, Tuple[int, int]] = {}
    ack_times: List[float] = []

    def client():
        if group is not None:
            yield from group.wait_leader(timeout=1.0)
        ack_times.append(env.now)
        for i in range(n_ops):
            yield env.timeout(op_interval)
            while down["flag"]:
                yield env.timeout(_DOWN_POLL)
            key = f"/ckpt/epoch{i:05d}"
            value = (i, i * 4096)
            yield from store.set(key, value)
            shadow[key] = value
            ack_times.append(env.now)
            if i % 16 == 0:
                yield from store.add_grant(
                    f"job{i // 16}", (("stor00", 1, MiB(64)),)
                )
                ack_times.append(env.now)
        # Let outstanding repairs land and laggards catch up (snapshot
        # install / log replay), then freeze the consensus group so the
        # residual-event drain terminates.
        yield env.timeout(2.0 * repair_after + ms(300))
        if group is not None:
            group.stop()

    proc = env.process(client())
    env.run_until_complete(proc)
    env.run()

    # -- verification: zero metadata loss -----------------------------------
    lost = sum(
        1 for key, value in shadow.items() if store.get(key) != value
    )
    digest_ok = True
    leader_changes = 0
    if group is not None:
        digests = set(group.digests().values())
        digest_ok = len(digests) == 1
        leader_changes = sum(
            len(group.nodes[m].terms_led) for m in group.members
        )

    gaps = [
        b - a for a, b in zip(ack_times, ack_times[1:])
    ]
    recovery: List[float] = []
    for strike in fault_times:
        later = [t for t in ack_times if t > strike]
        if later:
            recovery.append(later[0] - strike)

    # Consensus-level latency distributions, read back from the obs
    # registry the Raft nodes populate (zeros for the single-authority
    # baseline, which holds no elections and commits nothing).
    elect_p99 = commit_p99 = 0.0
    appends = 0
    ctx = getattr(env, "obs", None)
    if ctx is not None:
        elect = ctx.metrics.histogram("consensus.election_latency_s")
        if elect.count:
            elect_p99 = elect.percentile(0.99)
        commit = ctx.metrics.histogram("consensus.commit_latency_s")
        if commit.count:
            commit_p99 = commit.percentile(0.99)
        appends = int(ctx.metrics.counter("consensus.append_entries").value)
    return dict(
        faults=len(fault_times),
        acked=len(shadow),
        avail_gap=max(gaps) if gaps else 0.0,
        mean_recovery=sum(recovery) / len(recovery) if recovery else 0.0,
        max_recovery=max(recovery) if recovery else 0.0,
        lost=lost,
        digest_ok=digest_ok,
        leader_changes=leader_changes,
        elect_p99=elect_p99,
        commit_p99=commit_p99,
        appends=appends,
    )


def failover(
    systems: Sequence[str] = ("nvmecr-raft",),
    fault_rates: Sequence[float] = (2.0, 5.0, 10.0),
    n_ops: int = 200,
    op_interval: float = ms(5),
    repair_after: float = ms(400),
    seed: int = 17,
) -> ResultTable:
    """Availability gap and recovery latency vs control-plane fault rate.

    Acceptance gate: with ``nvmecr-raft``, every cell must end with zero
    lost acknowledged operations and digest agreement across the full
    replicas — a leader kill and a minority partition are both survived.
    """
    table = ResultTable(
        "Failover: control-plane availability under leader kills and "
        "partitions",
        ["system", "faults_per_s", "faults", "ops_acked", "avail_gap_ms",
         "mean_rec_ms", "max_rec_ms", "elect_p99_ms", "commit_p99_ms",
         "appends", "lost_ops", "replicas_agree", "leader_changes"],
    )
    for name in systems:
        for rate in fault_rates:
            cell = _run_cell(
                name, rate, n_ops, op_interval, repair_after, seed
            )
            table.add(
                name, rate, cell["faults"], cell["acked"],
                cell["avail_gap"] * 1e3, cell["mean_recovery"] * 1e3,
                cell["max_recovery"] * 1e3, cell["elect_p99"] * 1e3,
                cell["commit_p99"] * 1e3, cell["appends"], cell["lost"],
                "yes" if cell["digest_ok"] else "NO",
                cell["leader_changes"],
            )
    table.note(
        "strikes alternate leader-kill / minority-partition on an even "
        "deterministic schedule; zero-loss = every acked op verified "
        "against surviving state"
    )
    return table
