"""Standalone MicroFS fleets for single-node experiments.

Figures 7(a), 7(c), and the local half of 8(a) run full-subscription on
*one node with one SSD* — no scheduler, no MPI. :class:`MicroFSFleet`
wires ``nprocs`` MicroFS instances over one device's partitions and
exposes shim-compatible clients for the generic drivers.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

import numpy as np

from repro.core.config import RuntimeConfig
from repro.core.control_plane import GlobalNamespaceService
from repro.core.data_plane import DataPlane
from repro.core.interception import PosixShim
from repro.core.microfs.fs import MicroFS
from repro.fabric.nvmf import NVMfInitiator, NVMfTarget
from repro.fabric.rdma import RdmaFabric, edr_infiniband
from repro.fabric.transport import FabricTransport, LocalPCIeTransport
from repro.nvme.device import SSD, SSDSpec, intel_p4800x
from repro.sim.engine import Environment, Event
from repro.topology.cluster import paper_testbed
from repro.topology.network import NetworkTopology
from repro.units import GiB

__all__ = ["MicroFSFleet", "StandaloneRuntime"]


class StandaloneRuntime:
    """The minimal runtime surface PosixShim needs, without MPI."""

    def __init__(self, env: Environment, fs: MicroFS):
        self.env = env
        self.fs = fs

    @property
    def microfs(self) -> MicroFS:
        return self.fs

    def init(self) -> Generator[Event, Any, None]:
        yield self.env.timeout(0)

    def finalize(self) -> Generator[Event, Any, None]:
        yield self.env.timeout(0)


class MicroFSFleet:
    """``nprocs`` MicroFS instances sharing one SSD."""

    def __init__(
        self,
        nprocs: int,
        config: Optional[RuntimeConfig] = None,
        partition_bytes: int = GiB(1),
        remote: bool = False,
        seed: int = 0,
        ssd_spec: Optional[SSDSpec] = None,
        global_namespace: bool = False,
    ):
        self.env = Environment()
        self.nprocs = nprocs
        self.config = config or RuntimeConfig()
        spec = ssd_spec or intel_p4800x()
        self.ssd = SSD(self.env, spec, "nvme0", rng=np.random.default_rng(seed))
        self.namespace = self.ssd.create_namespace(
            partition_bytes * nprocs, owner_job="fleet"
        )
        self.global_ns = (
            GlobalNamespaceService(self.env) if global_namespace else None
        )
        if remote:
            topo = NetworkTopology(paper_testbed())
            fabric = RdmaFabric(topo, edr_infiniband(), env=self.env)
            target = NVMfTarget(self.env, "stor00", self.ssd)

            def make_transport(i):
                initiator = NVMfInitiator(self.env, "comp00", fabric)
                return FabricTransport(initiator.connect(target))
        else:
            def make_transport(i):
                return LocalPCIeTransport(self.env, self.ssd)

        self.instances: List[MicroFS] = []
        self.clients: List[PosixShim] = []
        block = self.config.effective_block_bytes
        for rank in range(nprocs):
            partition = self.namespace.partition(rank, nprocs, block)
            data_plane = DataPlane(
                self.env, make_transport(rank), self.namespace.nsid, self.config
            )
            fs = MicroFS(
                self.env, self.config, data_plane, partition,
                instance_name=f"fleet.r{rank}",
                global_namespace=self.global_ns,
            )
            self.instances.append(fs)
            self.clients.append(PosixShim(StandaloneRuntime(self.env, fs)))
