"""Experiment running and paper-style table rendering.

Each figure/table function in :mod:`repro.bench.experiments` produces a
:class:`ResultTable` — rows printed the way the paper reports them, so a
bench run reads side-by-side against the original evaluation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, List, Optional, Sequence, Union

from repro.sim.engine import Environment

__all__ = ["ResultTable", "parallel_clients", "dump_files", "read_files",
           "write_bench_json"]


@dataclass
class ResultTable:
    """A named grid of results, one paper artefact each."""

    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.title}: row has {len(values)} cells, "
                f"table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> List[Any]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                if value == 0:
                    return "0"
                if abs(value) >= 1000 or abs(value) < 0.01:
                    return f"{value:.3g}"
                return f"{value:.3f}".rstrip("0").rstrip(".")
            return str(value)

        cells = [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells)) if cells else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        print(self.render())
        print()


def write_bench_json(
    name: str,
    table: ResultTable,
    wall_s: Optional[float] = None,
    meta: Optional[dict] = None,
    directory: Union[str, Path] = ".",
) -> Path:
    """Write ``BENCH_<name>.json`` — the machine-readable benchmark artefact.

    The CLI emits one for every perf-relevant run and CI uploads them,
    so regressions show up as a diffable artefact rather than a
    scrollback table.  ``meta`` carries run provenance (shard count,
    backend, merged fingerprint, host parallelism); ``wall_s`` is the
    end-to-end wall clock.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload: dict = {
        "name": name,
        "title": table.title,
        "columns": table.columns,
        "rows": table.rows,
        "notes": table.notes,
    }
    if wall_s is not None:
        payload["wall_s"] = wall_s
    if meta:
        payload["meta"] = meta
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True,
                               default=str) + "\n")
    return path


# ---------------------------------------------------------------------------
# Generic parallel-client drivers for baseline clusters
# ---------------------------------------------------------------------------


def parallel_clients(
    env: Environment,
    clients: Sequence[Any],
    work: Callable[[int, Any], Any],
) -> float:
    """Run ``work(i, client)`` (a generator factory) on every client
    concurrently; returns the makespan (max finish time - common start)."""
    start = env.now
    finishes: List[float] = []

    def proc(i, client):
        yield from work(i, client)
        finishes.append(env.now)

    for i, client in enumerate(clients):
        env.process(proc(i, client))
    env.run()
    if not finishes:
        raise RuntimeError("no client finished")
    return max(finishes) - start


def dump_files(nbytes: int, directory: str = "/ckpt", step: int = 0, fsync: bool = True):
    """Work factory: each client writes one N-N checkpoint file."""
    from repro.errors import FileExists

    def work(i, client):
        try:
            yield from client.mkdir(directory)
        except FileExists:
            pass
        path = f"{directory}/rank{i:05d}_step{step:04d}.dat"
        fd = yield from client.open(path, "w")
        yield from client.write(fd, nbytes)
        if fsync:
            yield from client.fsync(fd)
        yield from client.close(fd)

    return work


def read_files(nbytes: int, directory: str = "/ckpt", step: int = 0):
    """Work factory: each client reads its checkpoint back."""

    def work(i, client):
        path = f"{directory}/rank{i:05d}_step{step:04d}.dat"
        fd = yield from client.open(path, "r")
        yield from client.read(fd, nbytes)
        yield from client.close(fd)

    return work
