"""QoS arbitration and doorbell-batching experiment (``repro run qos``).

Two questions about the unified I/O pipeline:

1. *Does weighted arbitration protect the journal?*  Every rank bursts a
   checkpoint file (CKPT_DATA) while MicroFS journals metadata
   (JOURNAL) to the same device.  With FCFS arbitration the small
   journal writes queue behind megabyte data chunks; with NVMe
   WRR-style weighted arbitration (:class:`~repro.nvme.queues.WrrArbiter`)
   the journal class jumps the line.  The table reports per-class
   latency percentiles from :attr:`DataPlane.class_latencies` — exact
   sorted-sample percentiles, not histogram buckets, so the
   JOURNAL-p99 comparison is strict.

2. *Does doorbell batching cut fabric round trips?*  The same N-N burst
   over an NVMf-remote fleet with ``config.batching`` off vs on, at
   equal payload bytes; round trips are counted from ``nvmf.rtt``
   spans.

Only data-plane-backed systems (``nvmecr``, ``microfs``,
``microfs-remote``) have per-class latency accounting; baselines tag
their device commands with QoS classes but keep their own layered
queueing, so they are out of scope here.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.bench.harness import ResultTable
from repro.core.config import RuntimeConfig
from repro.errors import FileExists, UnknownSystem
from repro.io.qos import QoSClass
from repro.nvme.queues import WrrArbiter
from repro.obs.export import span_count
from repro.systems import build as build_system
from repro.units import MiB

__all__ = ["qos", "batching_round_trips"]

# Class display order: matches the arbiter's priority order.
_CLASS_ORDER = (
    QoSClass.JOURNAL,
    QoSClass.RECOVERY,
    QoSClass.CKPT_DATA,
    QoSClass.BEST_EFFORT,
)

_DATAPLANE_SYSTEMS = ("nvmecr", "microfs", "microfs-remote")


def _qos_config(**overrides) -> RuntimeConfig:
    return RuntimeConfig(
        log_region_bytes=MiB(4), state_region_bytes=MiB(16), **overrides
    )


def _percentile(sorted_values: List[float], q: float) -> float:
    """Exact nearest-rank percentile over a pre-sorted sample."""
    index = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[min(index, len(sorted_values) - 1)]


def _burst(shim, rank: int, file_bytes: int, steps: int):
    """One rank of the checkpoint burst: N-N dumps with journal traffic."""
    try:
        yield from shim.mkdir("/qos")
    except FileExists:
        pass
    for step in range(steps):
        path = f"/qos/rank{rank:05d}_step{step:02d}.dat"
        fd = yield from shim.open(path, "w")
        yield from shim.write(fd, file_bytes)
        yield from shim.fsync(fd)
        yield from shim.close(fd)


def _build(system: str, nprocs: int, file_bytes: int, steps: int, seed: int,
           config: RuntimeConfig):
    if system == "nvmecr":
        # One device: the whole burst contends at a single arbiter.
        # Each rank's partition must fit the log + state regions plus
        # the dumped data.
        per_rank = (config.log_region_bytes + config.state_region_bytes
                    + 2 * steps * file_bytes + MiB(16))
        return build_system(
            "nvmecr", nprocs=nprocs, seed=seed, devices=1,
            bytes_per_device=nprocs * per_rank,
            config=config, job_name="qos",
        )
    if system in ("microfs", "microfs-remote"):
        return build_system(
            system, nprocs=nprocs, config=config,
            partition_bytes=2 * steps * file_bytes + MiB(64), seed=seed,
        )
    raise UnknownSystem(
        f"qos experiment needs a data-plane system "
        f"({', '.join(_DATAPLANE_SYSTEMS)}), got {system!r}"
    )


def _install_arbiters(handle, mode: str) -> None:
    ssds = handle.extras.get("ssds")
    if not ssds and handle.deployment is not None:
        ssds = [
            ssd for devices in handle.deployment.all_ssds.values()
            for ssd in devices
        ]
    if not ssds:
        raise UnknownSystem(f"{handle.name}: no device inventory for arbitration")
    for ssd in ssds:
        ssd.arbiter = WrrArbiter(handle.env, mode=mode)


def _class_latencies(
    system: str, mode: str, nprocs: int, file_bytes: int, steps: int, seed: int
) -> Dict[QoSClass, List[float]]:
    """Run one burst under ``mode`` arbitration; per-class latency samples."""
    handle = _build(system, nprocs, file_bytes, steps, seed, _qos_config())
    _install_arbiters(handle, mode)
    planes: List = []

    def rank_main(shim, comm):
        planes.append(shim.runtime.microfs.data_plane)
        yield from _burst(shim, comm.rank, file_bytes, steps)

    handle.run_ranks(rank_main)
    merged: Dict[QoSClass, List[float]] = {}
    for plane in planes:
        for cls, values in plane.class_latencies.items():
            merged.setdefault(cls, []).extend(values)
    for values in merged.values():
        values.sort()
    return merged


def batching_round_trips(
    nprocs: int = 8,
    file_bytes: int = MiB(4),
    seed: int = 11,
) -> Dict[str, Dict[str, float]]:
    """NVMf round trips (``nvmf.rtt`` spans) with batching off vs on.

    Same fleet, same seed, same N-N burst over the fabric — the only
    difference is ``config.batching``.  The batch limit is lowered to
    1 MiB so each dump fans out into several chunks per envelope: the
    unbatched path rings the doorbell once per chunk, the batched path
    once per envelope.  Returns
    ``{"off"|"on": {"round_trips", "payload_bytes", "makespan_s"}}``;
    payload bytes must match between the two runs for the round-trip
    comparison to mean anything.
    """
    from repro.bench.harness import dump_files

    results: Dict[str, Dict[str, float]] = {}
    for label, flag in (("off", False), ("on", True)):
        handle = build_system(
            "microfs-remote", nprocs=nprocs,
            config=_qos_config(batching=flag, max_batch_bytes=MiB(1)),
            partition_bytes=2 * file_bytes + MiB(64), seed=seed,
        )
        handle.obs.enable_tracing()
        makespan = handle.makespan(dump_files(file_bytes, directory="/batch"))
        results[label] = {
            "round_trips": span_count(handle.obs, name="nvmf.rtt"),
            "payload_bytes": handle.obs.metrics.counter("nvmf.bytes").value,
            "makespan_s": makespan,
        }
    return results


def qos(
    nprocs: int = 16,
    file_bytes: int = MiB(2),
    steps: int = 2,
    seed: int = 11,
    systems: Sequence[str] = ("microfs",),
    modes: Sequence[str] = ("fcfs", "wrr"),
    batching: bool = False,
) -> ResultTable:
    """Per-class latency under FCFS vs WRR arbitration (+ batching note)."""
    table = ResultTable(
        f"QoS pipeline: per-class latency, FCFS vs WRR arbitration "
        f"({nprocs} procs x {steps} x {file_bytes // MiB(1)} MiB burst)",
        ["system", "mode", "class", "n", "mean_ms", "p50_ms", "p99_ms"],
    )
    journal_p99: Dict[Tuple[str, str], float] = {}
    for system in systems:
        for mode in modes:
            samples = _class_latencies(
                system, mode, nprocs, file_bytes, steps, seed
            )
            for cls in _CLASS_ORDER:
                values = samples.get(cls)
                if not values:
                    continue
                p99 = _percentile(values, 0.99)
                table.add(
                    system, mode, cls.value, len(values),
                    1e3 * sum(values) / len(values),
                    1e3 * _percentile(values, 0.50),
                    1e3 * p99,
                )
                if cls is QoSClass.JOURNAL:
                    journal_p99[(system, mode)] = p99
    for system in systems:
        fcfs = journal_p99.get((system, "fcfs"))
        wrr = journal_p99.get((system, "wrr"))
        if fcfs is not None and wrr is not None:
            verdict = "lower" if wrr < fcfs else "NOT lower"
            table.note(
                f"{system}: journal p99 {1e3 * wrr:.3f} ms (wrr) vs "
                f"{1e3 * fcfs:.3f} ms (fcfs) — wrr {verdict}"
            )
    if batching:
        rtt = batching_round_trips(seed=seed)
        off, on = rtt["off"], rtt["on"]
        table.note(
            f"batching: nvmf.rtt {off['round_trips']:.0f} -> "
            f"{on['round_trips']:.0f} round trips at equal payload "
            f"({off['payload_bytes']:.0f} B vs {on['payload_bytes']:.0f} B)"
        )
    table.note("wrr weights: journal 8, recovery 4, ckpt_data 2, best_effort 1")
    return table
