"""Result export: tables to CSV / JSON for downstream analysis.

``python -m repro run fig9weak --export out/`` drops both formats next
to the printed table, so plots can be regenerated outside the simulator.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import List, Union

from repro.bench.harness import ResultTable, write_bench_json  # noqa: F401

__all__ = ["to_csv", "to_json", "export", "write_bench_json"]


def to_csv(table: ResultTable) -> str:
    """Render a table as CSV (header row + data rows)."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(table.columns)
    for row in table.rows:
        writer.writerow(row)
    return out.getvalue()


def to_json(table: ResultTable) -> str:
    """Render a table as a JSON document with metadata."""
    return json.dumps(
        {
            "title": table.title,
            "columns": table.columns,
            "rows": table.rows,
            "notes": table.notes,
        },
        indent=2,
        default=str,
    )


def _slug(title: str) -> str:
    keep = [c if c.isalnum() else "-" for c in title.lower()]
    slug = "".join(keep)
    while "--" in slug:
        slug = slug.replace("--", "-")
    return slug.strip("-")[:64]


def export(
    tables: Union[ResultTable, List[ResultTable]],
    directory: Union[str, Path],
) -> List[Path]:
    """Write each table as ``<slug>.csv`` and ``<slug>.json``; returns
    the written paths."""
    if isinstance(tables, ResultTable):
        tables = [tables]
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for table in tables:
        base = directory / _slug(table.title)
        csv_path = base.with_suffix(".csv")
        csv_path.write_text(to_csv(table))
        json_path = base.with_suffix(".json")
        json_path.write_text(to_json(table))
        written.extend([csv_path, json_path])
    return written
