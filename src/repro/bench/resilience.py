"""The resilience experiment: effective progress vs MTBF, per system.

The paper motivates NVMe-CR with sub-30-minute exascale MTBFs (§I);
this experiment closes that loop through the fault subsystem. For each
(storage system, MTBF) cell it:

1. probes the system's checkpoint cost with one measured dump,
2. picks Daly's optimal interval for that cost and MTBF,
3. runs a :class:`~repro.apps.mtbf.FailureCampaign` fed by an
   injector-style failure schedule drawn once per MTBF from
   :func:`~repro.faults.hazard.campaign_failure_times` — common random
   numbers, so every system is hit by the *identical* fault sequence,
4. reports effective progress with the run's
   :class:`~repro.faults.timeline.FaultTimeline` summarised into a
   :class:`~repro.metrics.collector.RunResult`'s ``extra`` dict.

A faster checkpoint tier buys a shorter optimal interval and less lost
work per strike — that difference, not raw bandwidth, is the resilience
argument.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.apps.mtbf import CampaignConfig, FailureCampaign, daly_interval
from repro.bench.harness import ResultTable
from repro.errors import FileExists
from repro.faults.hazard import campaign_failure_times
from repro.faults.timeline import FaultTimeline
from repro.metrics.collector import RunResult
from repro.systems import build as build_system
from repro.units import MiB

__all__ = ["resilience"]


def _provision(
    name: str, nprocs: int, nbytes: int, seed: int, ckpt_estimate: int
) -> Any:
    """Build one system with enough space for a campaign's checkpoints.

    Reclaiming systems (NVMe-CR, MicroFS) hold at most ~3 live
    checkpoints; bump-allocating baselines never reuse space, so they
    get the full estimated footprint.
    """
    spare = 4 * nbytes + MiB(128)
    if name == "nvmecr":
        return build_system(
            name, nprocs=nprocs, seed=seed,
            devices=max(1, min(8, nprocs)), bytes_per_device=spare,
            job_name="resilience",
        )
    if name in ("microfs", "microfs-remote"):
        return build_system(name, nprocs=nprocs, seed=seed, partition_bytes=spare)
    if name == "lustre":
        return build_system(name, nprocs=nprocs, seed=seed)
    footprint = (ckpt_estimate + 6) * nbytes
    if name in ("xfs", "ext4", "spdk"):
        return build_system(name, nprocs=nprocs, seed=seed, bytes_per_client=footprint)
    return build_system(
        name, nprocs=nprocs, seed=seed, namespace_bytes=nprocs * footprint + MiB(64)
    )


def _probe_cost(name: str, nprocs: int, nbytes: int, seed: int) -> float:
    """Measured cost of one checkpoint dump on a fresh instance."""
    handle = _provision(name, nprocs, nbytes, seed, ckpt_estimate=4)

    def rank_main(shim, comm):
        env = shim.env
        yield from comm.barrier()
        try:
            yield from shim.mkdir("/ckpt")
        except FileExists:
            pass
        t0 = env.now
        fd = yield from shim.open(f"/ckpt/probe{comm.rank:05d}.dat", "w")
        yield from shim.write(fd, nbytes)
        yield from shim.fsync(fd)
        yield from shim.close(fd)
        return env.now - t0

    return max(handle.run_ranks(rank_main))


def resilience(
    mtbfs: Sequence[float] = (30.0, 60.0, 120.0),
    systems: Sequence[str] = ("nvmecr", "lustre"),
    total_compute: float = 240.0,
    nbytes: int = MiB(64),
    nprocs: int = 1,
    seed: int = 41,
    collect: Optional[List[RunResult]] = None,
) -> ResultTable:
    """Effective progress vs MTBF for each storage system.

    ``collect``, when given, receives one :class:`RunResult` per cell
    with the run's fault-timeline summary in ``extra``.
    """
    table = ResultTable(
        f"Resilience: effective progress vs MTBF "
        f"({int(total_compute)}s of compute, Daly-optimal intervals)",
        ["system", "mtbf_s", "ckpt_cost_s", "interval_s", "progress",
         "failures", "lost_work_s", "recoveries"],
    )
    costs = {name: _probe_cost(name, nprocs, nbytes, seed) for name in systems}
    for mtbf in mtbfs:
        horizon = max(10.0 * total_compute, 20.0 * mtbf)
        # Drawn once per MTBF, before the system loop: every system sees
        # the identical strike sequence (common random numbers).
        fault_times = {
            rank: campaign_failure_times(seed, mtbf, horizon, rank=rank)
            for rank in range(nprocs)
        }
        for name in systems:
            cost = costs[name]
            interval = daly_interval(mtbf, max(cost, 1e-6))
            est_ckpts = int(total_compute / interval) + 1
            handle = _provision(name, nprocs, nbytes, seed, est_ckpts)
            timeline = FaultTimeline()

            def rank_main(shim, comm, interval=interval, mtbf=mtbf,
                          fault_times=fault_times, timeline=timeline):
                config = CampaignConfig(
                    total_compute=total_compute,
                    checkpoint_interval=interval,
                    checkpoint_bytes=nbytes,
                    mtbf=mtbf,
                    restart_cost=2.0,
                )
                campaign = FailureCampaign(
                    shim, config, seed=seed, rank=comm.rank,
                    fault_times=list(fault_times[comm.rank]),
                    timeline=timeline,
                )
                return (yield from campaign.run())

            ranks = handle.run_ranks(rank_main)
            progress = min(r.effective_progress for r in ranks)
            failures = sum(r.failures for r in ranks)
            lost = sum(r.lost_work for r in ranks)
            summary = timeline.summary()
            table.add(
                name, mtbf, cost, interval, progress, failures, lost,
                int(summary.get("faults_recovered", 0)),
            )
            if collect is not None:
                collect.append(
                    RunResult(
                        system=name,
                        nprocs=nprocs,
                        checkpoint_time=max(r.checkpoint_time for r in ranks),
                        restart_time=max(r.restart_time for r in ranks),
                        compute_time=max(r.compute_done for r in ranks),
                        total_bytes=sum(
                            r.checkpoints_written for r in ranks
                        ) * nbytes,
                        progress=progress,
                        extra=dict(
                            summary,
                            mtbf_s=mtbf,
                            interval_s=interval,
                            **(handle.obs.flat_extra() if handle.obs else {}),
                        ),
                    )
                )
    table.note(
        "failure times drawn once per MTBF (common random numbers): every "
        "system is struck by the identical sequence"
    )
    return table
