"""The tiers experiment: cost-model vs fixed-k checkpoint placement.

§III-F's every-k-th-to-Lustre rule is one point in a policy space.
With calibrated NVM and CXL-SSD tiers behind the
:class:`~repro.tiers.base.DeviceModel` seam, the placement question
becomes quantitative: for each checkpoint, pay a fast tier's write cost
and risk losing it to a cascading strike, or pay the durable tier's
cost and bound the rework.  This experiment runs the same
compute/checkpoint loop under an injected strike campaign for

* ``nvmecr`` — the paper's two-level runtime with the fixed-k rule
  (the Table II baseline, untouched),
* ``nvmecr-tiered`` — a four-level hierarchy (byte-addressable NVM,
  local NVMe, NVMf partner, PFS) under both the fixed-k rule and the
  :class:`~repro.core.placement.CostModelPolicy`,

and reports, per (system, policy, strike MTBF) cell: checkpoint
overhead, restore time, lost work on failure, the fraction of durable
checkpoints, and their sum (``score_s`` — lower is better).

Strikes follow common-random-numbers discipline: for a given MTBF the
schedule comes from :func:`~repro.faults.hazard.campaign_failure_times`
under the experiment seed alone, so every system/policy faces the
identical campaign.  Severity cycles domain -> node -> cascade:

* **domain** — the compute node's failure domain dies: byte-addressable
  and node-local tiers (residual risk >= 0.5) lose their data,
* **node** — the rank's process dies but storage survives: pure
  restart, restore from the newest checkpoint anywhere,
* **cascade** — correlated loss reaching the partner domain: every
  non-durable tier (residual risk > 0) is wiped, only the PFS holds.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.baselines.lustre import LustreCluster
from repro.bench import calibration as cal
from repro.bench.harness import ResultTable
from repro.core.multilevel import MultiLevelCheckpointer
from repro.core.placement import CostModelPolicy, FixedIntervalPolicy, TierTarget
from repro.errors import FileExists, RecoveryError
from repro.faults.hazard import campaign_failure_times
from repro.systems import build as build_system
from repro.units import GiB, MiB

__all__ = ["tiers"]

#: Residual data-loss probability per tier class under a matching-severity
#: strike: node-local tiers (NVM module, local NVMe) share the compute
#: node's failure domain; the NVMf partner sits one domain away; the PFS
#: is durable by definition (§III-F).
_RESIDUAL_LOCAL = 0.67
_RESIDUAL_PARTNER = 0.33

#: Fixed per-restore overhead of the PFS tier (remount + namespace scan).
_PFS_RESTORE_COST = 0.5


def _dead_levels(residuals: Sequence[float], severity: int) -> List[int]:
    """1-based tier levels wiped by a strike of the given severity."""
    if severity == 0:  # domain: node-local tiers gone
        return [lv for lv, r in enumerate(residuals, start=1) if r >= 0.5]
    if severity == 1:  # node: process restart, storage intact
        return []
    # cascade: everything non-durable
    return [lv for lv, r in enumerate(residuals, start=1) if r > 0.0]


def _rank_program(
    env: Any,
    comm: Any,
    mlc: MultiLevelCheckpointer,
    residuals: Sequence[float],
    steps: int,
    nbytes: int,
    compute_phase: float,
    strikes: Sequence[float],
):
    """One rank's compute/checkpoint loop under the strike campaign.

    Strikes are applied at the first post-checkpoint barrier after
    their scheduled time: the affected tiers forget their data, then
    the rank restores from the newest surviving checkpoint and the
    rolled-back compute is charged as lost work (the run itself moves
    forward — rework is accounted, not replayed, so every cell sees
    the same number of checkpoint opportunities).
    """
    stats = {
        "ckpt": 0.0, "restore": 0.0, "lost": 0.0,
        "durable": 0, "faults": 0,
    }
    idx = 0
    for step in range(steps):
        yield env.timeout(compute_phase)
        yield from comm.barrier()
        t0 = env.now
        record = yield from mlc.write_checkpoint(step, nbytes)
        yield from comm.barrier()
        stats["ckpt"] += env.now - t0
        if residuals[record.level - 1] == 0.0:
            stats["durable"] += 1
        while idx < len(strikes) and strikes[idx] <= env.now:
            severity = idx % 3
            dead = _dead_levels(residuals, severity)
            stats["faults"] += 1
            for level in dead:
                lose = getattr(mlc._client_for(level), "lose_data", None)
                if lose is not None:
                    lose()
            if dead:
                mlc.forget_levels(dead)
            t0 = env.now
            try:
                restored = yield from mlc.recover_latest(dead_levels=dead)
                restored_step = restored.step
            except RecoveryError:
                restored_step = -1
            stats["restore"] += env.now - t0
            stats["lost"] += (step - restored_step) * compute_phase
            idx += 1
    return stats


def _run_cell(
    system: str,
    policy_kind: Optional[str],
    mtbf: float,
    nprocs: int,
    steps: int,
    nbytes: int,
    compute_phase: float,
    pfs_interval: int,
    strikes: Sequence[float],
    seed: int,
) -> Tuple[str, Dict[str, Any]]:
    """One (system, policy, MTBF) cell; returns (policy name, stats)."""
    from repro.tiers.client import PosixTierAdapter, TierClient

    handle = build_system(
        system, nprocs=nprocs, seed=seed, devices=min(nprocs, 8),
        bytes_per_device=steps * nbytes + GiB(1), job_name="tiers",
    )
    env = handle.env
    lustre = LustreCluster(env, servers=1)
    plan = handle.extras["plan"]

    if system == "nvmecr-tiered":
        if policy_kind is None:
            # The run config is the default policy authority: the
            # nvmecr-tiered builder requests cost-model placement.
            placement = handle.extras["config"].checkpoint_placement
            policy_kind = (
                "cost-model" if placement == "cost-model" else "fixed-k"
            )
        fast = handle.extras["fast_device"]
        nvm_client = TierClient(fast, name="nvm")
        residuals = (
            _RESIDUAL_LOCAL, _RESIDUAL_LOCAL, _RESIDUAL_PARTNER, 0.0,
        )

        def rank_main(shim, comm):
            ssd = plan.grant_of_rank(comm.rank).ssd
            pfs_bw = lustre.aggregate_bandwidth() / nprocs
            targets = [
                TierTarget(
                    "nvm", nvm_client,
                    write_bandwidth=cal.NVM_WRITE_BANDWIDTH,
                    read_bandwidth=cal.NVM_READ_BANDWIDTH,
                    write_latency=cal.NVM_WRITE_LATENCY + cal.NVM_PERSIST_BARRIER,
                    residual_failure_prob=_RESIDUAL_LOCAL,
                ),
                TierTarget(
                    "nvme-local", TierClient(ssd, name=f"ssd-r{comm.rank}"),
                    write_bandwidth=ssd.write_bandwidth(),
                    read_bandwidth=ssd.read_bandwidth(),
                    write_latency=ssd.spec.access_latency,
                    residual_failure_prob=_RESIDUAL_LOCAL,
                ),
                TierTarget(
                    "nvmf-partner", PosixTierAdapter(shim),
                    write_bandwidth=ssd.write_bandwidth(),
                    read_bandwidth=ssd.read_bandwidth(),
                    write_latency=2 * cal.SSD_DEFAULT_ACCESS_LATENCY,
                    residual_failure_prob=_RESIDUAL_PARTNER,
                ),
                TierTarget(
                    "pfs", lustre,
                    write_bandwidth=pfs_bw,
                    read_bandwidth=pfs_bw,
                    residual_failure_prob=0.0,
                    restore_cost_s=_PFS_RESTORE_COST,
                ),
            ]
            if policy_kind == "cost-model":
                policy = CostModelPolicy(targets, strike_mtbf=mtbf)
            else:
                policy = FixedIntervalPolicy(
                    pfs_interval, durable_level=len(targets)
                )
            mlc = MultiLevelCheckpointer(
                targets=targets, pfs_interval=pfs_interval,
                rank=comm.rank, policy=policy,
            )
            return (yield from _rank_program(
                shim.env, comm, mlc, residuals,
                steps, nbytes, compute_phase, strikes,
            ))
    else:
        policy_kind = policy_kind or "fixed-k"
        residuals = (_RESIDUAL_LOCAL, 0.0)

        def rank_main(shim, comm):
            try:
                yield from shim.mkdir("/ckpt")
            except FileExists:
                pass
            mlc = MultiLevelCheckpointer(
                shim, lustre, pfs_interval=pfs_interval, rank=comm.rank,
            )
            mlc._dir_made = True
            return (yield from _rank_program(
                shim.env, comm, mlc, residuals,
                steps, nbytes, compute_phase, strikes,
            ))

    ranks = handle.run_ranks(rank_main)
    stats = {
        "ckpt": max(r["ckpt"] for r in ranks),
        "restore": max(r["restore"] for r in ranks),
        "lost": max(r["lost"] for r in ranks),
        "faults": ranks[0]["faults"],
        "durable_frac": ranks[0]["durable"] / steps,
    }
    return policy_kind, stats


def tiers(
    nprocs: int = 2,
    steps: int = 20,
    nbytes: int = MiB(64),
    compute_phase: float = 1.0,
    pfs_interval: int = 10,
    mtbfs: Sequence[float] = (8.0, 20.0, 120.0),
    seed: int = 23,
    systems: Sequence[str] = ("nvmecr", "nvmecr-tiered"),
) -> ResultTable:
    """Checkpoint placement policies under injected tier-loss strikes.

    For each strike MTBF, the fixed-k baseline runs on both the
    two-level runtime and the four-level hierarchy, and the cost model
    runs on the hierarchy; ``score_s`` (checkpoint overhead + restore
    + lost work, lower is better) is the headline comparison.
    """
    table = ResultTable(
        "Tiers: checkpoint placement under tier-loss strikes",
        [
            "system", "policy", "mtbf_s", "faults", "ckpt_s",
            "restore_s", "lost_work_s", "durable_frac", "score_s",
        ],
    )
    # Generous fixed horizon so one schedule covers every cell's run
    # (slower cells simply meet more of the same strikes).
    horizon = steps * (compute_phase + 4.0)
    for mtbf in mtbfs:
        strikes = campaign_failure_times(seed, mtbf, horizon, rank=0)
        for system in systems:
            policies: List[Optional[str]] = (
                ["fixed-k", "cost-model"]
                if system == "nvmecr-tiered" else ["fixed-k"]
            )
            for policy_kind in policies:
                name, stats = _run_cell(
                    system, policy_kind, mtbf, nprocs, steps, nbytes,
                    compute_phase, pfs_interval, strikes, seed,
                )
                score = stats["ckpt"] + stats["restore"] + stats["lost"]
                table.add(
                    system, name, mtbf, stats["faults"], stats["ckpt"],
                    stats["restore"], stats["lost"], stats["durable_frac"],
                    score,
                )
    table.note(
        "score_s = ckpt_s + restore_s + lost_work_s (lower is better); "
        "common-random-number strikes, severity cycling "
        "domain/node/cascade"
    )
    return table
