"""Perf-regression observatory: baseline history + gated trend checks.

CI uploads ``BENCH_<name>.json`` artefacts, but an artefact nobody
diffs is a scrapbook, not an observatory.  This module keeps a
*committed* per-experiment baseline history
(``benchmarks/baselines/<name>.history.json``) and diffs fresh bench
rows against it with configurable tolerances, so a makespan or p99
regression fails the build instead of scrolling past.

Mechanics:

* :class:`TrendStore` — append-only (bounded) history of bench
  payloads, keyed by experiment name.  Entries carry the run's
  provenance ``meta`` (seed, shard count, system list, config digest —
  see :func:`provenance`); a check only compares against a baseline
  whose provenance matches, so changing the workload shape can never
  masquerade as a speedup.
* :func:`check` — row-by-row, column-by-column comparison.  Rows are
  matched on their *identity* columns (systems, sweep parameters);
  metric columns are classified lower-is-better (times, latencies,
  losses) or higher-is-better (bandwidths, rates, efficiencies) by
  name.  A metric that moves the wrong way by more than the tolerance
  (default 10%) is a regression.
* Everything is pure data → data: no wall clock, no RNG, so the
  checker itself is deterministic and DetLint-clean.

CLI surface: ``repro trend record BENCH_fig8a.json`` after a blessed
run, ``repro trend check BENCH_fig8a.json`` in CI (non-zero exit on
any regression).
"""

from __future__ import annotations

import fnmatch
import hashlib
import inspect
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "DEFAULT_BASELINE_DIR",
    "DEFAULT_TOLERANCE",
    "EXPERIMENT_DIRECTIONS",
    "TrendDelta",
    "TrendReport",
    "TrendStore",
    "check",
    "classify_column",
    "config_digest",
    "load_bench",
    "provenance",
]

DEFAULT_BASELINE_DIR = "benchmarks/baselines"
DEFAULT_TOLERANCE = 0.10  # the ISSUE's ">10% makespan or p99" gate
#: Baselines smaller than this are noise floors, not signals.
_ABS_FLOOR = 1e-12

#: Column-name patterns that read "lower is better".
_LOWER_RE = re.compile(
    r"(_s|_ms|_us|_ns)$|time|latency|lat\b|p50|p95|p99|max|mean|median"
    r"|makespan|overhead|gap|lost|imbalance|cov|rec_|recovery|stall|wait",
    re.IGNORECASE,
)
#: Column-name patterns that read "higher is better".
_HIGHER_RE = re.compile(
    r"gi?bps|mi?bps|bw|iops|ops|rate|throughput|creates|eff|frac|acked"
    r"|progress|agree|avail",
    re.IGNORECASE,
)
#: Columns never compared even though numeric.
_IGNORE_RE = re.compile(r"^(seed|shards?|procs?|nprocs)$", re.IGNORECASE)

#: Per-experiment column-direction overrides (fnmatch patterns), for
#: tables whose metric columns are named after *systems* (fig8a's
#: per-backend makespans) or whose values invert the name's usual sense
#: (fig9's ``ckpt_*``/``rec_*`` are efficiencies, not times).  Keyed by
#: BENCH name.
EXPERIMENT_DIRECTIONS: Dict[str, Dict[str, str]] = {
    "fig8a": {"local": "lower", "remote": "lower", "crail": "lower",
              "crail_vs_nvmecr": "skip"},
    "fig7a": {"time_s": "lower", "vs_32K": "skip",
              "pool_bytes": "identity", "blocks_per_file": "identity"},
    "fig9": {"ckpt_*": "higher", "rec_*": "higher"},
    "fig9strong": {"ckpt_*": "higher", "rec_*": "higher"},
    "failover": {"faults_per_s": "identity", "faults": "skip",
                 "leader_changes": "skip", "appends": "skip",
                 "elect_p99_ms": "lower", "commit_p99_ms": "lower"},
    "tiers": {"mtbf_s": "identity", "faults": "skip",
              "durable_frac": "skip", "ckpt_s": "lower",
              "restore_s": "lower", "lost_work_s": "lower",
              "score_s": "lower"},
}

#: meta keys that must agree for two runs to be comparable.
_PROVENANCE_KEYS = ("seed", "shards", "systems", "config_digest")


def classify_column(name: str,
                    overrides: Optional[Dict[str, str]] = None) -> str:
    """``lower`` | ``higher`` | ``identity`` | ``skip`` for one column.

    Explicit overrides (fnmatch patterns) win; otherwise lower-is-better
    patterns beat higher-is-better ones on a collision (``avail_gap_ms``
    is a gap, not an availability).  ``skip`` marks derived columns
    (ratios, fault tallies) that must be in neither the row key nor the
    gate — keying on one would let a regression that moves it disguise
    rows as "new" and dodge the comparison.
    """
    if overrides:
        for pattern, direction in overrides.items():
            if fnmatch.fnmatchcase(name, pattern):
                return direction
    if _IGNORE_RE.search(name):
        return "identity"
    if _LOWER_RE.search(name):
        return "lower"
    if _HIGHER_RE.search(name):
        return "higher"
    return "identity"


def config_digest(params: Dict[str, Any]) -> str:
    """Stable digest of an experiment's effective parameters."""
    canon = json.dumps(params, sort_keys=True, separators=(",", ":"),
                       default=repr)
    return hashlib.sha256(canon.encode()).hexdigest()[:16]


def provenance(experiment: str, fn: Any = None,
               kwargs: Optional[Dict[str, Any]] = None,
               execution: Any = None,
               table: Any = None) -> Dict[str, Any]:
    """Build the provenance ``meta`` for one bench run.

    The effective parameter set is the experiment function's signature
    defaults overlaid with the call's keyword overrides — exactly what
    determined the numbers — so its digest changes whenever the
    workload shape does.  ``seed``/``systems`` are surfaced as
    first-class keys; shard count and merged fingerprint come from the
    execution record when the run was sharded.
    """
    kwargs = dict(kwargs or {})
    kwargs.pop("executor", None)  # execution backend, not workload shape
    params: Dict[str, Any] = {}
    if fn is not None:
        try:
            for pname, p in inspect.signature(fn).parameters.items():
                if pname == "executor":
                    continue
                if p.default is not inspect.Parameter.empty:
                    params[pname] = p.default
        except (TypeError, ValueError):  # builtins / odd callables
            pass
    params.update(kwargs)
    meta: Dict[str, Any] = {"experiment": experiment}
    if "seed" in params:
        meta["seed"] = params["seed"]
    systems = params.get("systems")
    if systems is None and table is not None:
        cols = getattr(table, "columns", [])
        if "system" in cols:
            seen: List[str] = []
            for value in table.column("system"):
                if value not in seen:
                    seen.append(value)
            systems = seen
    if systems is not None:
        meta["systems"] = sorted(str(s) for s in systems)
    meta["shards"] = getattr(execution, "shards", 1) if execution else 1
    if execution is not None:
        meta["backend"] = execution.backend
        meta["fingerprint"] = execution.merged.fingerprint
    meta["config_digest"] = config_digest(params)
    return meta


def load_bench(path: Union[str, Path]) -> Dict[str, Any]:
    """Read one ``BENCH_<name>.json`` payload."""
    payload = json.loads(Path(path).read_text())
    for key in ("name", "columns", "rows"):
        if key not in payload:
            raise ValueError(f"{path}: not a BENCH payload (missing {key!r})")
    return payload


# ---------------------------------------------------------------------------
# the store


class TrendStore:
    """Bounded per-experiment baseline history on disk."""

    def __init__(self, directory: Union[str, Path] = DEFAULT_BASELINE_DIR,
                 keep: int = 20):
        self.directory = Path(directory)
        self.keep = keep

    def history_path(self, name: str) -> Path:
        return self.directory / f"{name}.history.json"

    def history(self, name: str) -> List[Dict[str, Any]]:
        path = self.history_path(name)
        if not path.is_file():
            return []
        doc = json.loads(path.read_text())
        return doc.get("entries", [])

    def record(self, bench: Dict[str, Any]) -> Path:
        """Append one bench payload as the newest baseline entry."""
        name = bench["name"]
        entries = self.history(name)
        entry = {
            "sequence": (entries[-1]["sequence"] + 1) if entries else 1,
            "meta": bench.get("meta", {}),
            "columns": bench["columns"],
            "rows": bench["rows"],
        }
        if "wall_s" in bench:
            entry["wall_s"] = bench["wall_s"]
        entries.append(entry)
        entries = entries[-self.keep:]
        path = self.history_path(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(
            {"name": name, "entries": entries},
            indent=2, sort_keys=True, default=str) + "\n")
        return path

    def baseline_for(self, bench: Dict[str, Any]
                     ) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
        """Newest comparable entry, or (None, why-not).

        Comparable = every provenance key present on *both* sides
        agrees.  A key missing on either side is not a mismatch (old
        baselines predate richer provenance), but a disagreeing one is.
        """
        entries = self.history(bench["name"])
        if not entries:
            return None, "no baseline history"
        meta = bench.get("meta", {})
        reasons: List[str] = []
        for entry in reversed(entries):
            base_meta = entry.get("meta", {})
            mismatch = None
            for key in _PROVENANCE_KEYS:
                if key in meta and key in base_meta and \
                        meta[key] != base_meta[key]:
                    mismatch = (f"{key}: baseline {base_meta[key]!r} "
                                f"vs run {meta[key]!r}")
                    break
            if mismatch is None:
                return entry, None
            reasons.append(f"entry {entry.get('sequence')}: {mismatch}")
        return None, "; ".join(reasons)


# ---------------------------------------------------------------------------
# the check


@dataclass(frozen=True)
class TrendDelta:
    """One compared metric cell."""

    row_key: Tuple[Any, ...]
    column: str
    direction: str  # "lower" | "higher"
    baseline: float
    current: float
    delta_frac: float  # signed, + = worse
    tolerance: float

    @property
    def regressed(self) -> bool:
        return self.delta_frac > self.tolerance

    @property
    def improved(self) -> bool:
        return self.delta_frac < -self.tolerance


@dataclass
class TrendReport:
    """Everything ``repro trend check`` found for one experiment."""

    name: str
    ok: bool = True
    deltas: List[TrendDelta] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[TrendDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def improvements(self) -> List[TrendDelta]:
        return [d for d in self.deltas if d.improved]

    def render(self) -> str:
        lines = [f"== trend check: {self.name} =="]
        for note in self.notes:
            lines.append(f"  note: {note}")
        for d in sorted(self.deltas,
                        key=lambda d: (-d.delta_frac, d.column)):
            if not (d.regressed or d.improved):
                continue
            tag = "REGRESSION" if d.regressed else "improvement"
            key = "/".join(str(k) for k in d.row_key) or "-"
            lines.append(
                f"  {tag:<11} {key} {d.column} "
                f"({d.direction} is better): "
                f"{d.baseline:.6g} -> {d.current:.6g} "
                f"({d.delta_frac * 100:+.1f}%, tol {d.tolerance * 100:.0f}%)")
        n_reg, n_imp = len(self.regressions), len(self.improvements)
        lines.append(
            f"  {len(self.deltas)} metric(s) compared, "
            f"{n_reg} regression(s), {n_imp} improvement(s) -> "
            f"{'OK' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def _tolerance_for(column: str,
                   tolerances: Optional[Dict[str, float]]) -> float:
    if tolerances:
        if column in tolerances:
            return tolerances[column]
        for pattern, tol in tolerances.items():
            if fnmatch.fnmatchcase(column, pattern):
                return tol
    return DEFAULT_TOLERANCE


def _row_index(columns: Sequence[str], rows: Sequence[Sequence[Any]],
               overrides: Optional[Dict[str, str]]
               ) -> Dict[Tuple[Any, ...], Sequence[Any]]:
    """Rows keyed by their identity columns (order-stable, last wins)."""
    id_cols = [i for i, c in enumerate(columns)
               if classify_column(c, overrides) == "identity"]
    if not id_cols:  # single-row tables: positional identity
        return {(i,): row for i, row in enumerate(rows)}
    return {tuple(row[i] for i in id_cols): row for row in rows}


def check(bench: Dict[str, Any],
          store: Optional[TrendStore] = None,
          tolerances: Optional[Dict[str, float]] = None,
          directions: Optional[Dict[str, str]] = None,
          require_baseline: bool = False) -> TrendReport:
    """Diff one bench payload against its newest comparable baseline."""
    store = store or TrendStore()
    report = TrendReport(bench["name"])
    overrides = dict(EXPERIMENT_DIRECTIONS.get(bench["name"], {}))
    if directions:
        overrides.update(directions)
    baseline, why_not = store.baseline_for(bench)
    if baseline is None:
        report.notes.append(f"no comparable baseline ({why_not})")
        report.ok = not require_baseline
        return report
    report.notes.append(
        f"baseline: entry {baseline.get('sequence')} of "
        f"{store.history_path(bench['name'])}")

    columns = bench["columns"]
    base_columns = baseline["columns"]
    base_rows = _row_index(base_columns, baseline["rows"], overrides)
    cur_rows = _row_index(columns, bench["rows"], overrides)

    for key, row in cur_rows.items():
        base_row = base_rows.get(key)
        if base_row is None:
            report.notes.append(
                f"row {'/'.join(str(k) for k in key)}: new (no baseline)")
            continue
        for i, column in enumerate(columns):
            direction = classify_column(column, overrides)
            if direction not in ("lower", "higher") or \
                    column not in base_columns:
                continue
            current, base = row[i], base_row[base_columns.index(column)]
            if not isinstance(current, (int, float)) or \
                    not isinstance(base, (int, float)) or \
                    isinstance(current, bool) or isinstance(base, bool):
                continue
            if abs(base) <= _ABS_FLOOR:
                continue  # noise floor: no meaningful relative delta
            change = (current - base) / abs(base)
            worse = change if direction == "lower" else -change
            report.deltas.append(TrendDelta(
                row_key=key, column=column, direction=direction,
                baseline=float(base), current=float(current),
                delta_frac=worse,
                tolerance=_tolerance_for(column, tolerances)))
    missing = set(base_rows) - set(cur_rows)
    for key in sorted(missing, key=str):
        report.notes.append(
            f"row {'/'.join(str(k) for k in key)}: in baseline but not in "
            "this run")
    if report.regressions:
        report.ok = False
    return report
