"""Command-line interface: regenerate paper artefacts from a shell.

    python -m repro list                  # what can be regenerated
    python -m repro systems               # registered storage backends
    python -m repro run fig7a             # one figure/table
    python -m repro run all --fast        # everything, reduced scale
    python -m repro run tab2 --procs 448  # paper scale where supported
    python -m repro run fig8b --systems nvmecr crail   # swap comparisons
    python -m repro run fig8a --trace trace.json       # Perfetto trace
    python -m repro run fig8a --metrics                # counters + latency
    python -m repro trace fig8a                        # shorthand for --trace
    python -m repro run fig8a --sanitize               # determinism/race/leak
    python -m repro lint src                           # DetLint static analysis
    python -m repro profile fig7a                      # critical-path attribution
    python -m repro trend record BENCH_fig8a.json      # bless as baseline
    python -m repro trend check BENCH_fig8a.json       # gate regressions
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.bench import experiments as E
from repro.bench import extensions as X


def _resilience(**kwargs):
    from repro.bench.resilience import resilience

    return resilience(**kwargs)


def _qos(**kwargs):
    from repro.bench.qos import qos

    return qos(**kwargs)


def _failover(**kwargs):
    from repro.bench.failover import failover

    return failover(**kwargs)


def _tiers(**kwargs):
    from repro.bench.tiers import tiers

    return tiers(**kwargs)

_EXPERIMENTS: Dict[str, Callable] = {
    "fig1": E.fig1_motivation,
    "fig7a": E.fig7a_hugeblock_sweep,
    "fig7b": E.fig7b_load_imbalance,
    "fig7c": E.fig7c_direct_access,
    "fig7d": E.fig7d_drilldown,
    "fig8a": E.fig8a_nvmf_overhead,
    "fig8b": E.fig8b_create_rate,
    "fig9weak": lambda **kw: E.fig9_scaling("weak", **kw),
    "fig9strong": lambda **kw: E.fig9_scaling("strong", **kw),
    "tab1": E.tab1_metadata_overhead,
    "tab2": E.tab2_multilevel,
    "sysmatrix": E.sysmatrix,
    "resilience": _resilience,
    "qos": _qos,
    "failover": _failover,
    "tiers": _tiers,
    "ablation-coalescing": E.ablation_coalescing,
    "ablation-distributors": E.ablation_distributors,
    "ext-cache": X.ext_cache_layer,
    "ext-incremental": X.ext_incremental,
    "ext-compression": X.ext_compression,
    "ext-burstbuffer": X.ext_burst_buffer,
    "ext-mtbf": X.ext_mtbf_campaign,
    "ext-n1": X.ext_n1_pattern,
    "ext-skew": X.ext_skewed_balance,
}

# Experiments whose wall-clock/efficiency numbers CI tracks as artefacts:
# every run emits BENCH_<name>.json (uploaded by the bench-artifacts job).
_PERF_RELEVANT: Dict[str, str] = {
    "fig8a": "fig8a",
    "qos": "qos",
    "fig9weak": "fig9",
    "fig9strong": "fig9strong",
    "fig7a": "fig7a",
    "failover": "failover",
    "tiers": "tiers",
}

_DESCRIPTIONS: Dict[str, str] = {
    "fig1": "weak-scaling bandwidth of OrangeFS/GlusterFS vs hw peak",
    "fig7a": "checkpoint time vs hugeblock size",
    "fig7b": "per-server load imbalance (CoV)",
    "fig7c": "direct access vs ext4/XFS/SPDK + kernel-time share",
    "fig7d": "drilldown: optimisations one by one",
    "fig8a": "NVMf overhead: local vs remote vs Crail",
    "fig8b": "file-create throughput",
    "fig9weak": "weak-scaling checkpoint/recovery efficiency",
    "fig9strong": "strong-scaling checkpoint/recovery efficiency",
    "tab1": "metadata storage overhead",
    "tab2": "multi-level checkpointing with Lustre tier",
    "sysmatrix": "one N-N pass over every registered storage system",
    "resilience": "fault-injected campaigns: effective progress vs MTBF",
    "failover": "replicated control plane: availability under leader "
                "kills and partitions",
    "tiers": "checkpoint placement over NVM/CXL/NVMe/PFS tiers under "
             "tier-loss strikes",
    "qos": "per-class latency under FCFS vs WRR arbitration (+ batching)",
    "ablation-coalescing": "log record coalescing on/off",
    "ablation-distributors": "round-robin vs jump hash vs vnode ring",
    "ext-cache": "DRAM cache layer (the paper's future work)",
    "ext-incremental": "incremental checkpointing on NVMe-CR",
    "ext-compression": "checkpoint compression crossover",
    "ext-burstbuffer": "node-local burst buffer vs disaggregation",
    "ext-mtbf": "failure campaign: checkpoint interval vs effective progress",
    "ext-n1": "N-1 shared-file pattern vs N-N",
    "ext-skew": "load balance under AMR-skewed checkpoint sizes",
}


def _profile_command(args) -> int:
    """``repro profile <exp>``: traced + telemetry run, then attribution.

    Runs the experiment once with spans and engine telemetry on,
    walks the critical path, prints the per-layer table, and writes
    ``<name>.critpath.jsonl`` + ``<name>.collapsed`` (simulated-time
    flamegraph).  ``--sample`` additionally runs the host wall-clock
    sampler and writes ``<name>.host.collapsed``.
    """
    from pathlib import Path

    from repro import obs

    fn = _EXPERIMENTS.get(args.name)
    if fn is None:
        print(f"unknown experiment {args.name!r}; try 'repro list'",
              file=sys.stderr)
        return 2
    kwargs = {}
    if args.procs:
        kwargs["nprocs"] = args.procs[0]
    if args.systems:
        kwargs["systems"] = tuple(args.systems)

    sampler = None
    if args.sample:
        from repro.obs.sampling import SamplingProfiler

        sampler = SamplingProfiler(
            interval_s=args.sample_interval_ms / 1e3).start()
    started = time.time()  # wall-clock CLI reporting  # detlint: ignore[DET001]
    with obs.capture(trace=True, telemetry=True) as cap:
        table = fn(**kwargs)
    if sampler is not None:
        sampler.stop()
    table.show()

    spans = obs.spans_of(cap.contexts)
    cp = obs.critical_path(spans)
    obs.layer_table(
        cp, title=f"Critical-path attribution: {args.name}").show()

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    jsonl = obs.write_critical_path_jsonl(
        cp, str(out_dir / f"{args.name}.critpath.jsonl"))
    print(f"wrote {jsonl}")
    collapsed = obs.write_collapsed(
        obs.collapsed_stacks(spans, by_track=args.by_track),
        str(out_dir / f"{args.name}.collapsed"))
    print(f"wrote {collapsed} (simulated time; feed to flamegraph.pl "
          "or speedscope)")

    # Engine self-telemetry, folded per context then printed merged.
    engine_counters: dict = {}
    for ctx in cap.contexts:
        for key, value in ctx.flat_extra().items():
            if key.startswith("engine."):
                engine_counters[key] = engine_counters.get(key, 0) + value
    if engine_counters:
        print("engine telemetry (deterministic):")
        for key in sorted(engine_counters):
            print(f"  {key:<34} {engine_counters[key]:>14g}")

    if sampler is not None:
        host = sampler.write(str(out_dir / f"{args.name}.host.collapsed"))
        print(f"wrote {host} ({sampler.samples} samples, HOST wall clock; "
              "non-deterministic)")
        for line in sampler.top(5):
            print(f"  {line}")
    print(f"[{args.name} profiled in "
          f"{time.time() - started:.1f}s wall]")  # detlint: ignore[DET001]
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="NVMe-CR reproduction: regenerate paper artefacts"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("systems", help="list registered storage systems")
    runp = sub.add_parser("run", help="run experiment(s)")
    runp.add_argument("name", help="experiment id (or 'all')")
    runp.add_argument("--fast", action="store_true",
                      help="reduced scale for 'all'")
    runp.add_argument("--procs", type=int, nargs="+", default=None,
                      help="process counts (where supported)")
    runp.add_argument("--systems", nargs="+", default=None, metavar="NAME",
                      help="storage systems to compare (see 'repro systems')")
    runp.add_argument("--export", metavar="DIR", default=None,
                      help="also write the table(s) as CSV + JSON to DIR")
    runp.add_argument("--trace", metavar="FILE", default=None,
                      help="record spans and write a Chrome/Perfetto trace")
    runp.add_argument("--trace-jsonl", metavar="FILE", default=None,
                      help="also write the spans as flat JSONL")
    runp.add_argument("--metrics", action="store_true",
                      help="print the metrics/span summary after the run")
    runp.add_argument("--profile", action="store_true",
                      help="wall-clock self-profile of the simulator itself")
    runp.add_argument("--qos", choices=("wrr", "fcfs", "both"), default=None,
                      help="arbitration mode(s) for the qos experiment")
    runp.add_argument("--batching", action="store_true",
                      help="qos experiment: also compare NVMf round trips "
                           "with doorbell batching off vs on")
    runp.add_argument("--sanitize", action="store_true",
                      help="run twice under the determinism/race/leak "
                           "sanitizers; nonzero exit on any finding")
    runp.add_argument("--shards", type=int, default=None, metavar="N",
                      help="run plan-capable experiments sharded across N "
                           "worker processes (deterministic merge; same "
                           "seed gives bit-identical results for any N)")
    runp.add_argument("--start-method", default=None,
                      choices=("fork", "spawn", "forkserver", "inline"),
                      help="worker start method for --shards "
                           "(default fork; inline = same pipeline, "
                           "no processes)")
    lintp = sub.add_parser(
        "lint", help="DetLint: static determinism analysis (DET001-DET008)"
    )
    lintp.add_argument("paths", nargs="*", default=None, metavar="PATH",
                       help="files or directories to lint (default: src)")
    lintp.add_argument("--format", dest="fmt", default="text",
                       choices=("text", "json", "sarif"),
                       help="report format (default: text)")
    lintp.add_argument("--output", metavar="FILE", default=None,
                       help="write the report to FILE (default: stdout)")
    flowp = sub.add_parser(
        "flow",
        help="whole-program flow analysis: interprocedural determinism "
             "taint, coroutine yield-discipline, race candidates "
             "(FLOW101-FLOW103)",
    )
    flowp.add_argument("paths", nargs="*", default=None, metavar="PATH",
                       help="files or directories to analyze (default: src)")
    flowp.add_argument("--format", dest="fmt", default="text",
                       choices=("text", "json", "sarif"),
                       help="report format (default: text)")
    flowp.add_argument("--output", metavar="FILE", default=None,
                       help="write the report to FILE (default: stdout)")
    flowp.add_argument("--baseline", metavar="FILE", default=None,
                       help="known-findings file: only new findings block")
    flowp.add_argument("--write-baseline", dest="write_baseline",
                       metavar="FILE", default=None,
                       help="record current findings as the baseline")
    flowp.add_argument("--candidates-out", dest="candidates_out",
                       metavar="FILE", default=None,
                       help="export FLOW103 race candidates for --sanitize")
    tracep = sub.add_parser(
        "trace", help="run one experiment with tracing on; write the trace"
    )
    tracep.add_argument("name", help="experiment id")
    tracep.add_argument("--out", metavar="FILE", default=None,
                        help="trace path (default: <name>.trace.json)")
    tracep.add_argument("--procs", type=int, nargs="+", default=None)
    tracep.add_argument("--systems", nargs="+", default=None, metavar="NAME")
    tracep.add_argument("--metrics", action="store_true",
                        help="print the metrics/span summary too")
    profp = sub.add_parser(
        "profile",
        help="critical-path profile: run one experiment traced, attribute "
             "the makespan per layer, write collapsed stacks",
    )
    profp.add_argument("name", help="experiment id")
    profp.add_argument("--out-dir", metavar="DIR", default=".",
                       help="artefact directory (default: .)")
    profp.add_argument("--procs", type=int, nargs="+", default=None)
    profp.add_argument("--systems", nargs="+", default=None, metavar="NAME")
    profp.add_argument("--by-track", action="store_true",
                       help="root the flamegraph at each span's track "
                            "(one flame per rank/device)")
    profp.add_argument("--sample", action="store_true",
                       help="also sample the HOST process wall-clock stacks "
                            "(writes <name>.host.collapsed)")
    profp.add_argument("--sample-interval-ms", type=float, default=5.0,
                       help="sampling period for --sample (default 5 ms)")
    trendp = sub.add_parser(
        "trend",
        help="perf-regression observatory: record/check BENCH_*.json "
             "against committed baselines",
    )
    trendp.add_argument("action", choices=("record", "check"),
                        help="record = bless as new baseline; check = gate")
    trendp.add_argument("bench", nargs="+", metavar="BENCH_FILE",
                        help="BENCH_<name>.json payload(s)")
    trendp.add_argument("--dir", dest="baseline_dir", metavar="DIR",
                        default=None,
                        help="baseline store (default: benchmarks/baselines)")
    trendp.add_argument("--tolerance", type=float, default=None,
                        metavar="FRAC",
                        help="regression tolerance for every metric "
                             "(default 0.10 = 10%%)")
    trendp.add_argument("--require-baseline", action="store_true",
                        help="fail a check when no comparable baseline "
                             "exists (default: pass with a note)")
    args = parser.parse_args(argv)

    if args.command == "lint":
        from repro.analysis.detlint import main as lint_main

        argv2 = [*(args.paths or ["src"]), "--format", args.fmt]
        if args.output:
            argv2 += ["--output", args.output]
        return lint_main(argv2)

    if args.command == "flow":
        from repro.analysis.flow import main as flow_main

        argv2 = [*(args.paths or ["src"]), "--format", args.fmt]
        if args.output:
            argv2 += ["--output", args.output]
        if args.baseline:
            argv2 += ["--baseline", args.baseline]
        if args.write_baseline:
            argv2 += ["--write-baseline", args.write_baseline]
        if args.candidates_out:
            argv2 += ["--candidates-out", args.candidates_out]
        return flow_main(argv2)

    if args.command == "trend":
        from repro.bench.trend import (DEFAULT_BASELINE_DIR, TrendStore,
                                       check, load_bench)

        store = TrendStore(args.baseline_dir or DEFAULT_BASELINE_DIR)
        status = 0
        for bench_path in args.bench:
            bench = load_bench(bench_path)
            if args.action == "record":
                out = store.record(bench)
                print(f"recorded {bench['name']} ({bench_path}) -> {out}")
            else:
                tolerances = (
                    {"*": args.tolerance} if args.tolerance is not None
                    else None
                )
                report = check(bench, store, tolerances=tolerances,
                               require_baseline=args.require_baseline)
                print(report.render())
                if not report.ok:
                    status = 1
        return status

    if args.command == "profile":
        return _profile_command(args)

    if args.command == "trace":
        # Shorthand: `repro trace fig8a` == `repro run fig8a --trace ...`.
        args.trace = args.out or f"{args.name}.trace.json"
        args.trace_jsonl = None
        args.profile = False
        args.fast = False
        args.export = None
        args.qos = None
        args.batching = False
        args.sanitize = False
        args.shards = None
        args.start_method = None

    if args.command == "list":
        for name in _EXPERIMENTS:
            print(f"  {name:<22} {_DESCRIPTIONS[name]}")
        return 0

    if args.command == "systems":
        from repro import systems

        for spec in systems.specs():
            print(f"  {spec.name:<16} [{spec.kind:<11}] {spec.description}")
        return 0

    sharded = bool(args.shards and args.shards > 1) or bool(args.start_method)
    if args.shards is not None or args.start_method is not None:
        plan_capable = {"fig7a", "fig9weak", "fig9strong"}
        if args.name not in plan_capable:
            print(f"--shards applies to plan-capable experiments "
                  f"({', '.join(sorted(plan_capable))}), not {args.name!r}",
                  file=sys.stderr)
            return 2
        if args.shards is not None and args.shards < 1:
            print("--shards must be >= 1", file=sys.stderr)
            return 2
        if sharded and (args.trace or args.trace_jsonl or args.profile
                        or args.sanitize):
            print("--shards > 1 runs units in worker processes and cannot "
                  "combine with --trace/--trace-jsonl/--profile/--sanitize "
                  "(merged metrics stay available via --metrics)",
                  file=sys.stderr)
            return 2

    want_obs = bool(
        args.trace or args.trace_jsonl or args.metrics or args.profile
    ) and not sharded
    if args.sanitize and want_obs:
        print("--sanitize re-runs the experiment and cannot combine with "
              "--trace/--trace-jsonl/--metrics/--profile", file=sys.stderr)
        return 2
    if args.sanitize and args.name == "all":
        print("--sanitize applies to single experiments, not 'all'",
              file=sys.stderr)
        return 2

    if args.name == "all":
        if want_obs:
            print("--trace/--metrics apply to single experiments, not 'all'",
                  file=sys.stderr)
            return 2
        tables = E.run_all(fast=args.fast)
        for ext in (X.ext_cache_layer, X.ext_incremental, X.ext_compression,
                    X.ext_burst_buffer, X.ext_mtbf_campaign, X.ext_n1_pattern):
            table = ext()
            table.show()
            tables.append(table)
        if args.export:
            from repro.bench.report import export

            for path in export(tables, args.export):
                print(f"wrote {path}")
        return 0

    fn = _EXPERIMENTS.get(args.name)
    if fn is None:
        print(f"unknown experiment {args.name!r}; try 'repro list'", file=sys.stderr)
        return 2
    kwargs = {}
    if args.procs:
        if args.name in ("tab1", "tab2", "sysmatrix", "resilience", "qos",
                         "tiers"):
            kwargs["nprocs"] = args.procs[0]
        elif args.name in ("fig7a", "fig7c", "fig8a"):
            kwargs["nprocs"] = args.procs[0]
        elif args.name.startswith("fig") and args.name not in ("fig7a",):
            kwargs["procs"] = tuple(args.procs)
    if args.systems:
        takes_systems = {"fig1", "fig7b", "fig8b", "fig9weak", "fig9strong",
                         "tab1", "tab2", "sysmatrix", "resilience", "qos",
                         "failover", "tiers"}
        if args.name not in takes_systems:
            print(f"{args.name} does not take --systems "
                  f"(supported: {', '.join(sorted(takes_systems))})",
                  file=sys.stderr)
            return 2
        from repro.errors import UnknownSystem
        from repro.systems import get as get_system

        try:
            for name in args.systems:
                get_system(name)  # fail fast with the known-names list
        except UnknownSystem as exc:
            print(exc, file=sys.stderr)
            return 2
        kwargs["systems"] = tuple(args.systems)
    if args.qos or args.batching:
        if args.name != "qos":
            print("--qos/--batching only apply to the qos experiment",
                  file=sys.stderr)
            return 2
        if args.qos and args.qos != "both":
            kwargs["modes"] = (args.qos,)
        if args.batching:
            kwargs["batching"] = True
    if args.shards is not None or args.start_method is not None:
        from repro.exec import make_executor

        kwargs["executor"] = make_executor(
            args.shards or 1, start_method=args.start_method)
    started = time.time()  # wall-clock CLI reporting  # detlint: ignore[DET001]
    if args.sanitize:
        from repro.analysis.flow.races import load_candidates
        from repro.analysis.sanitize import sanitized_run

        # Static FLOW103 handoff (written by `repro flow --candidates-out`):
        # races on statically flagged classes are annotated as predicted.
        candidates = load_candidates("flow-candidates.json")
        if candidates:
            total = sum(len(attrs) for attrs in candidates.values())
            print(f"[sanitize: {total} static race candidate(s) loaded "
                  f"from flow-candidates.json]")
        table, report = sanitized_run(lambda: fn(**kwargs), candidates=candidates)
        table.show()
        print(report.render())
        if args.export:
            from repro.bench.report import export

            for path in export(table, args.export):
                print(f"wrote {path}")
        print(f"[{args.name} sanitized in "
              f"{time.time() - started:.1f}s wall]")  # detlint: ignore[DET001]
        return 0 if report.ok else 1
    if want_obs:
        from repro import obs

        with obs.capture(trace=bool(args.trace or args.trace_jsonl),
                         profile=args.profile) as cap:
            table = fn(**kwargs)
    else:
        cap = None
        table = fn(**kwargs)
    table.show()
    execution = getattr(table, "execution", None)
    if execution is not None:
        merged = execution.merged
        print(f"[execution: {execution.backend}, {execution.shards} "
              f"shard(s), {len(execution.results)} units, "
              f"fingerprint {merged.fingerprint[:16]}]")
        if args.metrics and sharded:
            for key, value in sorted(merged.summary().items()):
                print(f"  {key} = {value:.6g}")
    if _PERF_RELEVANT.get(args.name):
        from repro.bench.harness import write_bench_json
        from repro.bench.trend import provenance

        # Full provenance (seed, shard count, system list, config digest)
        # so `repro trend check` can refuse to compare unlike runs.
        meta = provenance(args.name, fn=fn, kwargs=kwargs,
                          execution=execution, table=table)
        path = write_bench_json(
            _PERF_RELEVANT[args.name], table,
            wall_s=time.time() - started,  # detlint: ignore[DET001]
            meta=meta,
        )
        print(f"wrote {path}")
    if cap is not None:
        if args.trace:
            print(f"wrote {cap.write_chrome(args.trace)} "
                  f"({cap.n_spans()} spans; open in ui.perfetto.dev)")
        if args.trace_jsonl:
            print(f"wrote {cap.write_jsonl(args.trace_jsonl)}")
        if args.metrics or args.profile:
            print(cap.report())
    if args.export:
        from repro.bench.report import export

        for path in export(table, args.export):
            print(f"wrote {path}")
    print(f"[{args.name} regenerated in "
          f"{time.time() - started:.1f}s wall]")  # detlint: ignore[DET001]
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
