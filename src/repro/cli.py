"""Command-line interface: regenerate paper artefacts from a shell.

    python -m repro list                  # what can be regenerated
    python -m repro systems               # registered storage backends
    python -m repro run fig7a             # one figure/table
    python -m repro run all --fast        # everything, reduced scale
    python -m repro run tab2 --procs 448  # paper scale where supported
    python -m repro run fig8b --systems nvmecr crail   # swap comparisons
    python -m repro run fig8a --trace trace.json       # Perfetto trace
    python -m repro run fig8a --metrics                # counters + latency
    python -m repro trace fig8a                        # shorthand for --trace
    python -m repro run fig8a --sanitize               # determinism/race/leak
    python -m repro lint src                           # DetLint static analysis
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.bench import experiments as E
from repro.bench import extensions as X


def _resilience(**kwargs):
    from repro.bench.resilience import resilience

    return resilience(**kwargs)


def _qos(**kwargs):
    from repro.bench.qos import qos

    return qos(**kwargs)


def _failover(**kwargs):
    from repro.bench.failover import failover

    return failover(**kwargs)

_EXPERIMENTS: Dict[str, Callable] = {
    "fig1": E.fig1_motivation,
    "fig7a": E.fig7a_hugeblock_sweep,
    "fig7b": E.fig7b_load_imbalance,
    "fig7c": E.fig7c_direct_access,
    "fig7d": E.fig7d_drilldown,
    "fig8a": E.fig8a_nvmf_overhead,
    "fig8b": E.fig8b_create_rate,
    "fig9weak": lambda **kw: E.fig9_scaling("weak", **kw),
    "fig9strong": lambda **kw: E.fig9_scaling("strong", **kw),
    "tab1": E.tab1_metadata_overhead,
    "tab2": E.tab2_multilevel,
    "sysmatrix": E.sysmatrix,
    "resilience": _resilience,
    "qos": _qos,
    "failover": _failover,
    "ablation-coalescing": E.ablation_coalescing,
    "ablation-distributors": E.ablation_distributors,
    "ext-cache": X.ext_cache_layer,
    "ext-incremental": X.ext_incremental,
    "ext-compression": X.ext_compression,
    "ext-burstbuffer": X.ext_burst_buffer,
    "ext-mtbf": X.ext_mtbf_campaign,
    "ext-n1": X.ext_n1_pattern,
    "ext-skew": X.ext_skewed_balance,
}

# Experiments whose wall-clock/efficiency numbers CI tracks as artefacts:
# every run emits BENCH_<name>.json (uploaded by the bench-artifacts job).
_PERF_RELEVANT: Dict[str, str] = {
    "fig8a": "fig8a",
    "qos": "qos",
    "fig9weak": "fig9",
    "fig9strong": "fig9strong",
    "fig7a": "fig7a",
    "failover": "failover",
}

_DESCRIPTIONS: Dict[str, str] = {
    "fig1": "weak-scaling bandwidth of OrangeFS/GlusterFS vs hw peak",
    "fig7a": "checkpoint time vs hugeblock size",
    "fig7b": "per-server load imbalance (CoV)",
    "fig7c": "direct access vs ext4/XFS/SPDK + kernel-time share",
    "fig7d": "drilldown: optimisations one by one",
    "fig8a": "NVMf overhead: local vs remote vs Crail",
    "fig8b": "file-create throughput",
    "fig9weak": "weak-scaling checkpoint/recovery efficiency",
    "fig9strong": "strong-scaling checkpoint/recovery efficiency",
    "tab1": "metadata storage overhead",
    "tab2": "multi-level checkpointing with Lustre tier",
    "sysmatrix": "one N-N pass over every registered storage system",
    "resilience": "fault-injected campaigns: effective progress vs MTBF",
    "failover": "replicated control plane: availability under leader "
                "kills and partitions",
    "qos": "per-class latency under FCFS vs WRR arbitration (+ batching)",
    "ablation-coalescing": "log record coalescing on/off",
    "ablation-distributors": "round-robin vs jump hash vs vnode ring",
    "ext-cache": "DRAM cache layer (the paper's future work)",
    "ext-incremental": "incremental checkpointing on NVMe-CR",
    "ext-compression": "checkpoint compression crossover",
    "ext-burstbuffer": "node-local burst buffer vs disaggregation",
    "ext-mtbf": "failure campaign: checkpoint interval vs effective progress",
    "ext-n1": "N-1 shared-file pattern vs N-N",
    "ext-skew": "load balance under AMR-skewed checkpoint sizes",
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="NVMe-CR reproduction: regenerate paper artefacts"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("systems", help="list registered storage systems")
    runp = sub.add_parser("run", help="run experiment(s)")
    runp.add_argument("name", help="experiment id (or 'all')")
    runp.add_argument("--fast", action="store_true",
                      help="reduced scale for 'all'")
    runp.add_argument("--procs", type=int, nargs="+", default=None,
                      help="process counts (where supported)")
    runp.add_argument("--systems", nargs="+", default=None, metavar="NAME",
                      help="storage systems to compare (see 'repro systems')")
    runp.add_argument("--export", metavar="DIR", default=None,
                      help="also write the table(s) as CSV + JSON to DIR")
    runp.add_argument("--trace", metavar="FILE", default=None,
                      help="record spans and write a Chrome/Perfetto trace")
    runp.add_argument("--trace-jsonl", metavar="FILE", default=None,
                      help="also write the spans as flat JSONL")
    runp.add_argument("--metrics", action="store_true",
                      help="print the metrics/span summary after the run")
    runp.add_argument("--profile", action="store_true",
                      help="wall-clock self-profile of the simulator itself")
    runp.add_argument("--qos", choices=("wrr", "fcfs", "both"), default=None,
                      help="arbitration mode(s) for the qos experiment")
    runp.add_argument("--batching", action="store_true",
                      help="qos experiment: also compare NVMf round trips "
                           "with doorbell batching off vs on")
    runp.add_argument("--sanitize", action="store_true",
                      help="run twice under the determinism/race/leak "
                           "sanitizers; nonzero exit on any finding")
    runp.add_argument("--shards", type=int, default=None, metavar="N",
                      help="run plan-capable experiments sharded across N "
                           "worker processes (deterministic merge; same "
                           "seed gives bit-identical results for any N)")
    runp.add_argument("--start-method", default=None,
                      choices=("fork", "spawn", "forkserver", "inline"),
                      help="worker start method for --shards "
                           "(default fork; inline = same pipeline, "
                           "no processes)")
    lintp = sub.add_parser(
        "lint", help="DetLint: static determinism analysis (DET001-DET008)"
    )
    lintp.add_argument("paths", nargs="*", default=None, metavar="PATH",
                       help="files or directories to lint (default: src)")
    tracep = sub.add_parser(
        "trace", help="run one experiment with tracing on; write the trace"
    )
    tracep.add_argument("name", help="experiment id")
    tracep.add_argument("--out", metavar="FILE", default=None,
                        help="trace path (default: <name>.trace.json)")
    tracep.add_argument("--procs", type=int, nargs="+", default=None)
    tracep.add_argument("--systems", nargs="+", default=None, metavar="NAME")
    tracep.add_argument("--metrics", action="store_true",
                        help="print the metrics/span summary too")
    args = parser.parse_args(argv)

    if args.command == "lint":
        from repro.analysis.detlint import main as lint_main

        return lint_main(args.paths or ["src"])

    if args.command == "trace":
        # Shorthand: `repro trace fig8a` == `repro run fig8a --trace ...`.
        args.trace = args.out or f"{args.name}.trace.json"
        args.trace_jsonl = None
        args.profile = False
        args.fast = False
        args.export = None
        args.qos = None
        args.batching = False
        args.sanitize = False
        args.shards = None
        args.start_method = None

    if args.command == "list":
        for name in _EXPERIMENTS:
            print(f"  {name:<22} {_DESCRIPTIONS[name]}")
        return 0

    if args.command == "systems":
        from repro import systems

        for spec in systems.specs():
            print(f"  {spec.name:<16} [{spec.kind:<11}] {spec.description}")
        return 0

    sharded = bool(args.shards and args.shards > 1) or bool(args.start_method)
    if args.shards is not None or args.start_method is not None:
        plan_capable = {"fig7a", "fig9weak", "fig9strong"}
        if args.name not in plan_capable:
            print(f"--shards applies to plan-capable experiments "
                  f"({', '.join(sorted(plan_capable))}), not {args.name!r}",
                  file=sys.stderr)
            return 2
        if args.shards is not None and args.shards < 1:
            print("--shards must be >= 1", file=sys.stderr)
            return 2
        if sharded and (args.trace or args.trace_jsonl or args.profile
                        or args.sanitize):
            print("--shards > 1 runs units in worker processes and cannot "
                  "combine with --trace/--trace-jsonl/--profile/--sanitize "
                  "(merged metrics stay available via --metrics)",
                  file=sys.stderr)
            return 2

    want_obs = bool(
        args.trace or args.trace_jsonl or args.metrics or args.profile
    ) and not sharded
    if args.sanitize and want_obs:
        print("--sanitize re-runs the experiment and cannot combine with "
              "--trace/--trace-jsonl/--metrics/--profile", file=sys.stderr)
        return 2
    if args.sanitize and args.name == "all":
        print("--sanitize applies to single experiments, not 'all'",
              file=sys.stderr)
        return 2

    if args.name == "all":
        if want_obs:
            print("--trace/--metrics apply to single experiments, not 'all'",
                  file=sys.stderr)
            return 2
        tables = E.run_all(fast=args.fast)
        for ext in (X.ext_cache_layer, X.ext_incremental, X.ext_compression,
                    X.ext_burst_buffer, X.ext_mtbf_campaign, X.ext_n1_pattern):
            table = ext()
            table.show()
            tables.append(table)
        if args.export:
            from repro.bench.report import export

            for path in export(tables, args.export):
                print(f"wrote {path}")
        return 0

    fn = _EXPERIMENTS.get(args.name)
    if fn is None:
        print(f"unknown experiment {args.name!r}; try 'repro list'", file=sys.stderr)
        return 2
    kwargs = {}
    if args.procs:
        if args.name in ("tab1", "tab2", "sysmatrix", "resilience", "qos"):
            kwargs["nprocs"] = args.procs[0]
        elif args.name in ("fig7a", "fig7c", "fig8a"):
            kwargs["nprocs"] = args.procs[0]
        elif args.name.startswith("fig") and args.name not in ("fig7a",):
            kwargs["procs"] = tuple(args.procs)
    if args.systems:
        takes_systems = {"fig1", "fig7b", "fig8b", "fig9weak", "fig9strong",
                         "tab1", "tab2", "sysmatrix", "resilience", "qos",
                         "failover"}
        if args.name not in takes_systems:
            print(f"{args.name} does not take --systems "
                  f"(supported: {', '.join(sorted(takes_systems))})",
                  file=sys.stderr)
            return 2
        from repro.errors import UnknownSystem
        from repro.systems import get as get_system

        try:
            for name in args.systems:
                get_system(name)  # fail fast with the known-names list
        except UnknownSystem as exc:
            print(exc, file=sys.stderr)
            return 2
        kwargs["systems"] = tuple(args.systems)
    if args.qos or args.batching:
        if args.name != "qos":
            print("--qos/--batching only apply to the qos experiment",
                  file=sys.stderr)
            return 2
        if args.qos and args.qos != "both":
            kwargs["modes"] = (args.qos,)
        if args.batching:
            kwargs["batching"] = True
    if args.shards is not None or args.start_method is not None:
        from repro.exec import make_executor

        kwargs["executor"] = make_executor(
            args.shards or 1, start_method=args.start_method)
    started = time.time()  # wall-clock CLI reporting  # detlint: ignore[DET001]
    if args.sanitize:
        from repro.analysis.sanitize import sanitized_run

        table, report = sanitized_run(lambda: fn(**kwargs))
        table.show()
        print(report.render())
        if args.export:
            from repro.bench.report import export

            for path in export(table, args.export):
                print(f"wrote {path}")
        print(f"[{args.name} sanitized in "
              f"{time.time() - started:.1f}s wall]")  # detlint: ignore[DET001]
        return 0 if report.ok else 1
    if want_obs:
        from repro import obs

        with obs.capture(trace=bool(args.trace or args.trace_jsonl),
                         profile=args.profile) as cap:
            table = fn(**kwargs)
    else:
        cap = None
        table = fn(**kwargs)
    table.show()
    execution = getattr(table, "execution", None)
    if execution is not None:
        merged = execution.merged
        print(f"[execution: {execution.backend}, {execution.shards} "
              f"shard(s), {len(execution.results)} units, "
              f"fingerprint {merged.fingerprint[:16]}]")
        if args.metrics and sharded:
            for key, value in sorted(merged.summary().items()):
                print(f"  {key} = {value:.6g}")
    if _PERF_RELEVANT.get(args.name):
        from repro.bench.harness import write_bench_json

        meta = {"experiment": args.name}
        if execution is not None:
            meta.update(backend=execution.backend, shards=execution.shards,
                        fingerprint=execution.merged.fingerprint)
        path = write_bench_json(
            _PERF_RELEVANT[args.name], table,
            wall_s=time.time() - started,  # detlint: ignore[DET001]
            meta=meta,
        )
        print(f"wrote {path}")
    if cap is not None:
        if args.trace:
            print(f"wrote {cap.write_chrome(args.trace)} "
                  f"({cap.n_spans()} spans; open in ui.perfetto.dev)")
        if args.trace_jsonl:
            print(f"wrote {cap.write_jsonl(args.trace_jsonl)}")
        if args.metrics or args.profile:
            print(cap.report())
    if args.export:
        from repro.bench.report import export

        for path in export(table, args.export):
            print(f"wrote {path}")
    print(f"[{args.name} regenerated in "
          f"{time.time() - started:.1f}s wall]")  # detlint: ignore[DET001]
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
