"""Raft-replicated control plane (ROADMAP: zone federation).

The paper's runtime keeps control-plane metadata in a single authority
per instance; this package replicates it across storage zones so the
control plane survives node loss and rack-level partitions.  The pieces:

* :mod:`~repro.consensus.messages` — typed Raft wire messages;
* :mod:`~repro.consensus.statemachine` — the replicated state machines
  (full metadata/grants vs vote-only witness);
* :mod:`~repro.consensus.network` — the consensus fabric with
  zone-aware latencies, member death, and partitions;
* :mod:`~repro.consensus.raft` — the member coroutine (elections,
  replication, snapshots);
* :mod:`~repro.consensus.group` — the group bundle + client propose loop;
* :mod:`~repro.consensus.store` — the
  :class:`~repro.core.control_plane.MetadataStore` implementation that
  commits every mutation through the group.
"""

from repro.consensus.group import RaftGroup
from repro.consensus.messages import (
    AppendEntries,
    AppendReply,
    InstallSnapshot,
    LogEntry,
    RequestVote,
    SnapshotReply,
    VoteReply,
)
from repro.consensus.network import ConsensusFabric
from repro.consensus.raft import RaftNode, Role
from repro.consensus.statemachine import (
    FullStateMachine,
    StateMachine,
    WitnessStateMachine,
)
from repro.consensus.store import ReplicatedMetadataStore

__all__ = [
    "AppendEntries",
    "AppendReply",
    "ConsensusFabric",
    "FullStateMachine",
    "InstallSnapshot",
    "LogEntry",
    "RaftGroup",
    "RaftNode",
    "ReplicatedMetadataStore",
    "RequestVote",
    "Role",
    "SnapshotReply",
    "StateMachine",
    "VoteReply",
    "WitnessStateMachine",
]
