"""A Raft group: members, their fabric, and the client proposal loop.

``RaftGroup`` is the deployment-facing bundle: it builds one
:class:`~repro.consensus.raft.RaftNode` per member (full or witness
state machine), wires them over a :class:`ConsensusFabric` whose
latencies follow the zone map, and exposes the *client* side of
consensus — a ``propose`` coroutine that chases leader hints, retries
through elections, and re-proposes after an operation timeout.
Re-proposal is safe because every replicated command is an idempotent
upsert/delete keyed by name (the MicroFS op-log discipline).

The group also carries the fault-injection surface (``kill_leader``,
``kill``/``revive``, ``partition``/``heal``) that
:mod:`repro.faults` drives during the failover experiment.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.consensus.network import ConsensusFabric
from repro.consensus.raft import (
    ELECTION_TIMEOUT_MIN,
    ELECTION_TIMEOUT_SPAN,
    HEARTBEAT_INTERVAL,
    RaftNode,
    Role,
)
from repro.consensus.statemachine import (
    FullStateMachine,
    WitnessStateMachine,
)
from repro.errors import ConsensusError, NotLeader
from repro.sim.engine import Environment, Event, Process
from repro.sim.rng import RngHub
from repro.units import ms

__all__ = ["RaftGroup"]

#: Client back-off between proposal attempts (hint chase / no leader).
PROPOSE_RETRY_BACKOFF = ms(5)

#: Per-attempt commit wait before the client re-resolves the leader.
#: Quorum round trips are microseconds, so anything this long means the
#: attempt's leader lost quorum (e.g. got partitioned mid-commit);
#: re-proposing is safe because commands are idempotent.
PROPOSE_OP_TIMEOUT = ms(50)

#: Poll period while waiting for a first leader.
LEADER_POLL = ms(5)


class RaftGroup:
    """All members of one replicated control-plane group."""

    def __init__(
        self,
        env: Environment,
        members: Sequence[str],
        hub: RngHub,
        zone_of: Optional[Callable[[str], str]] = None,
        witnesses: Sequence[str] = (),
        snapshot_threshold: int = 128,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        election_timeout_min: float = ELECTION_TIMEOUT_MIN,
        election_timeout_span: float = ELECTION_TIMEOUT_SPAN,
    ):
        if not members:
            raise ConsensusError("a Raft group needs at least one member")
        witness_set = {w for w in witnesses}
        unknown = sorted(witness_set.difference(members))
        if unknown:
            raise ConsensusError(f"witness members not in group: {unknown}")
        self.env = env
        self.members = list(members)
        self.fabric = ConsensusFabric(env, self.members, zone_of=zone_of)
        self.nodes: Dict[str, RaftNode] = {}
        for name in self.members:
            machine = (
                WitnessStateMachine() if name in witness_set
                else FullStateMachine()
            )
            self.nodes[name] = RaftNode(
                env, name, self.members, self.fabric, machine, hub,
                heartbeat_interval=heartbeat_interval,
                election_timeout_min=election_timeout_min,
                election_timeout_span=election_timeout_span,
                snapshot_threshold=snapshot_threshold,
            )
        self._procs: List[Process] = []
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._procs = [self.nodes[name].start() for name in self.members]

    def stop(self) -> None:
        """Park every member so ``env.run()`` can drain the queue."""
        for name in self.members:
            self.nodes[name].stop()

    @property
    def quorum_size(self) -> int:
        return len(self.members) // 2 + 1

    def full_members(self) -> List[str]:
        """Members that materialise state (non-witnesses)."""
        return [m for m in self.members if not self.nodes[m].machine.witness]

    # -- leadership ----------------------------------------------------------

    def leader(self) -> Optional[str]:
        """The live leader with the highest term, if any.

        During a partition a deposed leader may linger at a stale term;
        the highest-term rule always resolves to the member that can
        actually commit.
        """
        best: Optional[str] = None
        best_term = -1
        for name in self.members:
            node = self.nodes[name]
            if node.crashed or node.role is not Role.LEADER:
                continue
            if node.term > best_term:
                best, best_term = name, node.term
        return best

    def wait_leader(
        self, timeout: Optional[float] = None
    ) -> Generator[Event, Any, str]:
        """Process body: poll until some member leads; returns its name."""
        deadline = None if timeout is None else self.env.now + timeout
        while True:
            lead = self.leader()
            if lead is not None:
                return lead
            if deadline is not None and self.env.now >= deadline:
                raise ConsensusError("no leader elected before deadline")
            yield self.env.timeout(LEADER_POLL)

    # -- client proposal path -------------------------------------------------

    def propose(
        self, command: Sequence[Any], timeout: Optional[float] = None
    ) -> Generator[Event, Any, Tuple[int, Any]]:
        """Process body: commit ``command``; returns ``(log_index, result)``.

        Retries across leader changes: a :class:`NotLeader` rejection
        redirects to the hinted member; a per-attempt timeout (leader
        lost quorum mid-commit) re-resolves leadership and re-proposes.
        """
        env = self.env
        deadline = None if timeout is None else env.now + timeout
        target = self.leader()
        while True:
            if deadline is not None and env.now >= deadline:
                raise ConsensusError(
                    f"proposal {command[0]!r} exceeded its deadline"
                )
            if target is None or self.nodes[target].crashed:
                target = self.leader()
            if target is None:
                yield env.timeout(PROPOSE_RETRY_BACKOFF)
                continue
            try:
                waiter = self.nodes[target].propose(command)
            except NotLeader as exc:
                target = exc.leader_hint
                yield env.timeout(PROPOSE_RETRY_BACKOFF)
                continue
            try:
                yield env.any_of([waiter, env.timeout(PROPOSE_OP_TIMEOUT)])
            except NotLeader as exc:
                # The leader crashed with our entry pending.
                target = exc.leader_hint
                yield env.timeout(PROPOSE_RETRY_BACKOFF)
                continue
            if waiter.triggered and waiter.ok:
                return waiter.value
            # Attempt timed out (no quorum?); re-resolve and re-propose —
            # commands are idempotent, so a late duplicate is harmless.
            target = None

    # -- fault-injection surface ----------------------------------------------

    def kill(self, member: str) -> None:
        self.nodes[member].crash()

    def revive(self, member: str) -> None:
        self.nodes[member].revive()

    def kill_leader(self) -> Optional[str]:
        """Crash the current leader; returns its name (None if leaderless)."""
        lead = self.leader()
        if lead is not None:
            self.nodes[lead].crash()
        return lead

    def partition(self, isolated: Sequence[str]) -> None:
        self.fabric.partition(isolated)

    def heal(self) -> None:
        self.fabric.heal()

    # -- verification ----------------------------------------------------------

    def digests(self) -> Dict[str, str]:
        """Content hash per full member (crashed members keep their disk)."""
        return {
            m: self.nodes[m].machine.digest() for m in self.full_members()
        }

    def traces(self) -> Dict[str, List[Tuple[Any, ...]]]:
        """Per-member determinism traces (election/leader/commit/... tuples)."""
        return {m: list(self.nodes[m].trace) for m in self.members}

    def commit_indexes(self) -> Dict[str, int]:
        return {m: self.nodes[m].commit_index for m in self.members}
