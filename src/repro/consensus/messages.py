"""Typed Raft wire messages and log entries.

Messages are frozen dataclasses so a captured exchange hashes, compares,
and serialises deterministically — the determinism contract extends to
consensus (same seed + same fault schedule must produce a bit-identical
election/commit/term trace).  Commands carried by :class:`LogEntry` are
plain tuples, e.g. ``("meta.set", "/ckpt/r0.dat", (ino, nbytes))`` — the
same discipline as the MicroFS operation log: journal the operation and
its parameters, never object references.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple

__all__ = [
    "LogEntry",
    "RequestVote",
    "VoteReply",
    "AppendEntries",
    "AppendReply",
    "InstallSnapshot",
    "SnapshotReply",
]


@dataclass(frozen=True)
class LogEntry:
    """One replicated command at a global log ``index`` (1-based)."""

    term: int
    index: int
    command: Tuple[Any, ...]


@dataclass(frozen=True)
class RequestVote:
    """Candidate solicits a vote for ``term``.

    With ``prevote`` set this is a PreVote probe (Raft thesis §4.2.3):
    the sender asks whether it *could* win ``term`` without bumping its
    own term, so a partitioned member cannot inflate its term and depose
    a healthy leader when the partition heals.
    """

    term: int
    candidate: str
    last_log_index: int
    last_log_term: int
    prevote: bool = False


@dataclass(frozen=True)
class VoteReply:
    term: int
    voter: str
    granted: bool
    prevote: bool = False


@dataclass(frozen=True)
class AppendEntries:
    """Leader replicates ``entries`` (empty = heartbeat)."""

    term: int
    leader: str
    prev_log_index: int
    prev_log_term: int
    entries: Tuple[LogEntry, ...] = ()
    leader_commit: int = 0


@dataclass(frozen=True)
class AppendReply:
    term: int
    follower: str
    success: bool
    match_index: int  # on success: last replicated index; else a back-off hint


@dataclass(frozen=True)
class InstallSnapshot:
    """Leader ships a compacted prefix to a follower that fell behind the
    snapshot horizon.  ``snapshot`` is the state machine's opaque image
    (witness images are empty — vote-only members hold no data)."""

    term: int
    leader: str
    last_included_index: int
    last_included_term: int
    snapshot: Any = field(default=None, compare=False)


@dataclass(frozen=True)
class SnapshotReply:
    term: int
    follower: str
    last_included_index: int
