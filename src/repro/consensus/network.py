"""Message transport between Raft members over simulated fabric RTTs.

Consensus traffic rides the same physical substrate as checkpoint data:
an intra-zone hop costs one NVMf-class one-way latency, a cross-zone hop
costs the inter-rack spine crossing.  The fabric owns per-member inboxes
and supports the two physical failure modes the fault injector fires at
the control plane: member death (``kill``/``revive``) and a network
partition isolating an arbitrary member subset (``partition``/``heal``).

Delivery is deterministic: per-pair latency is constant, so messages
between any two members arrive in send order (the engine breaks time
ties by schedule sequence), and a partition drops messages both at send
time and at delivery time — a packet in flight when the switch dies is
lost, exactly once, on every run with the same schedule.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, Optional, Sequence

from repro.sim.engine import Environment, Event
from repro.units import us

__all__ = ["ConsensusFabric"]

#: One-way latency between members in the same zone (one fabric hop).
INTRA_ZONE_LATENCY = us(6)

#: One-way latency across zones (ToR -> spine -> ToR crossing).
CROSS_ZONE_LATENCY = us(50)


class ConsensusFabric:
    """Point-to-point message delivery with partitions and member death."""

    def __init__(
        self,
        env: Environment,
        members: Sequence[str],
        zone_of: Optional[Callable[[str], str]] = None,
        intra_latency: float = INTRA_ZONE_LATENCY,
        cross_latency: float = CROSS_ZONE_LATENCY,
    ):
        self.env = env
        self.members = list(members)
        self.zone_of = zone_of
        self.intra_latency = intra_latency
        self.cross_latency = cross_latency
        self._inboxes: Dict[str, Deque[Any]] = {m: deque() for m in self.members}
        self._waiters: Dict[str, Optional[Event]] = {m: None for m in self.members}
        self._dead: Dict[str, bool] = {m: False for m in self.members}
        self._isolated: frozenset = frozenset()
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        #: Name of the member that most recently won leadership; the
        #: nodes use it to count actual leader *changes* (hand-offs to a
        #: different member) apart from re-elections of the same one.
        self.last_leader: Optional[str] = None

    # -- topology-derived latency ------------------------------------------

    def latency(self, src: str, dst: str) -> float:
        if self.zone_of is None:
            return self.intra_latency
        if self.zone_of(src) == self.zone_of(dst):
            return self.intra_latency
        return self.cross_latency

    # -- failure modes ------------------------------------------------------

    def kill(self, member: str) -> None:
        """Member death: inbox is lost, nothing flows in or out."""
        self._dead[member] = True
        self._inboxes[member].clear()

    def revive(self, member: str) -> None:
        self._dead[member] = False

    def is_dead(self, member: str) -> bool:
        return self._dead.get(member, False)

    def partition(self, isolated: Sequence[str]) -> None:
        """Cut ``isolated`` off from every other member (both directions).

        Traffic *within* the isolated side still flows — a minority
        partition can hold elections it can never win.
        """
        self._isolated = frozenset(isolated)

    def heal(self) -> None:
        self._isolated = frozenset()

    def is_partitioned(self) -> bool:
        return bool(self._isolated)

    def _blocked(self, src: str, dst: str) -> bool:
        return (src in self._isolated) != (dst in self._isolated)

    # -- send / receive ------------------------------------------------------

    def send(self, src: str, dst: str, msg: Any) -> None:
        """Fire-and-forget; drops are silent (Raft retries by design)."""
        self.sent += 1
        if self._dead.get(src, False) or self._dead.get(dst, False):
            self.dropped += 1
            return
        if self._blocked(src, dst):
            self.dropped += 1
            return
        self.env.process(self._deliver(src, dst, msg))

    def _deliver(self, src: str, dst: str, msg: Any) -> Generator[Event, Any, None]:
        yield self.env.timeout(self.latency(src, dst))
        # Re-check at arrival: the fault may have struck mid-flight.
        if self._dead.get(dst, False) or self._blocked(src, dst):
            self.dropped += 1
            return
        self.delivered += 1
        self._inboxes[dst].append(msg)
        waiter = self._waiters[dst]
        if waiter is not None and not waiter.triggered:
            waiter.succeed()

    def pop(self, member: str) -> Optional[Any]:
        """Next queued message for ``member``, or None."""
        inbox = self._inboxes[member]
        return inbox.popleft() if inbox else None

    def pending(self, member: str) -> int:
        return len(self._inboxes[member])

    def recv_event(self, member: str) -> Event:
        """An event that triggers when ``member`` has (or gets) mail."""
        if self._inboxes[member]:
            ready = self.env.event()
            ready.succeed()
            return ready
        waiter = self._waiters[member]
        if waiter is None or waiter.triggered:
            waiter = self.env.event()
            self._waiters[member] = waiter
        return waiter
