"""The Raft replica: one coroutine per member over the consensus fabric.

A faithful (if compact) Raft implementation on the repro.sim substrate:

* **Leader election** with randomized-but-seeded timeouts — every member
  draws its election timeouts from its own named RNG stream
  (:class:`~repro.sim.rng.RngHub`), so a seed fully determines who times
  out first, every term, on every run;
* **PreVote** (Raft thesis §4.2.3): before bumping its term a would-be
  candidate polls a majority with a no-side-effect probe, so a member
  that spent a partition timing out rejoins at its old term instead of
  deposing a healthy leader with an inflated one;
* **Log replication** with per-follower ``next_index``/``match_index``
  bookkeeping, conflict back-off, and commit advancement by
  current-term majority match (§5.3/5.4 of the Raft paper);
* **Snapshot/compaction**: once the applied prefix outgrows
  ``snapshot_threshold`` entries, the member snapshots its state machine
  and truncates the log; laggards beyond the snapshot horizon are caught
  up with ``InstallSnapshot``;
* **Crash/revive**: persistent state (term, vote, log, snapshot)
  survives a crash — it lives on the member's SSD partition — while
  volatile leader state and the inbox do not.

Determinism contract: every externally visible transition (election
start, leadership, commit, snapshot, crash, revive) is appended to
``trace`` as a plain tuple, and the same seed plus the same fault
schedule reproduces the identical trace (tested by Hypothesis).
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.consensus.messages import (
    AppendEntries,
    AppendReply,
    InstallSnapshot,
    LogEntry,
    RequestVote,
    SnapshotReply,
    VoteReply,
)
from repro.consensus.network import ConsensusFabric
from repro.consensus.statemachine import StateMachine
from repro.errors import NotLeader, SimulationError
from repro.obs.context import tracer_of
from repro.sim.engine import Environment, Event
from repro.sim.rng import RngHub
from repro.units import ms

__all__ = ["Role", "RaftNode", "ELECTION_TIMEOUT_MIN", "ELECTION_TIMEOUT_SPAN",
           "HEARTBEAT_INTERVAL"]

#: Election timeout window (Raft demands span >> RTT; the fabric's
#: cross-zone hop is 50 us, so 50-100 ms gives a ~1000x margin).
ELECTION_TIMEOUT_MIN = ms(50)
ELECTION_TIMEOUT_SPAN = ms(50)

#: Leader heartbeat period (an order of magnitude under the timeout).
HEARTBEAT_INTERVAL = ms(10)

#: Max entries shipped per AppendEntries (bounds catch-up burst size).
MAX_BATCH_ENTRIES = 64


class Role(enum.Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


class RaftNode:  # reproflow: ignore[FLOW103] (per-node state; only its own _run writes)
    """One consensus group member bound to a cluster node name."""

    def __init__(
        self,
        env: Environment,
        name: str,
        members: Sequence[str],
        fabric: ConsensusFabric,
        machine: StateMachine,
        hub: RngHub,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        election_timeout_min: float = ELECTION_TIMEOUT_MIN,
        election_timeout_span: float = ELECTION_TIMEOUT_SPAN,
        snapshot_threshold: int = 128,
    ):
        self.env = env
        self.name = name
        self.members = list(members)
        self.peers = [m for m in self.members if m != name]
        self.fabric = fabric
        self.machine = machine
        self.heartbeat_interval = heartbeat_interval
        self.election_timeout_min = election_timeout_min
        self.election_timeout_span = election_timeout_span
        self.snapshot_threshold = snapshot_threshold
        # The one sanctioned randomness: per-member seeded timeout jitter.
        self._rng = hub.stream(f"consensus.timeout.{name}")

        # Persistent state (survives crash: lives on the member's SSD).
        self.term = 0
        self.voted_for: Optional[str] = None
        self._log: List[LogEntry] = []  # entries with index > snap_last_index
        self.snap_last_index = 0
        self.snap_last_term = 0
        self._snap_image: Any = None

        # Volatile state.
        self.role = Role.FOLLOWER
        self.commit_index = 0
        self.leader_hint: Optional[str] = None
        self.next_index: Dict[str, int] = {}
        self.match_index: Dict[str, int] = {}
        self._votes: Dict[str, bool] = {}
        self._prevotes: Optional[Dict[str, bool]] = None  # active probe tally
        self._waiters: Dict[int, Event] = {}
        self._proposed_at: Dict[int, float] = {}

        # Lifecycle.
        self.crashed = False
        self._stopped = False
        self._revive_ev: Optional[Event] = None
        self._deadline = 0.0
        self._heartbeat_due = 0.0

        # Counters + the determinism trace.
        self.elections_started = 0
        self.terms_led: List[int] = []
        self.entries_applied = 0
        self.snapshots_taken = 0
        self.trace: List[Tuple[Any, ...]] = []
        #: Campaign start (first prevote of the current bid), for the
        #: election-latency histogram; None outside a campaign.
        self._election_began: Optional[float] = None

    # -- log geometry --------------------------------------------------------

    def last_index(self) -> int:
        return self.snap_last_index + len(self._log)

    def last_term(self) -> int:
        return self._log[-1].term if self._log else self.snap_last_term

    def _term_at(self, index: int) -> Optional[int]:
        """Term of ``index``, or None when compacted away / out of range."""
        if index == self.snap_last_index:
            return self.snap_last_term
        offset = index - self.snap_last_index - 1
        if 0 <= offset < len(self._log):
            return self._log[offset].term
        return None

    def _entry(self, index: int) -> LogEntry:
        return self._log[index - self.snap_last_index - 1]

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        """Launch the member's main coroutine."""
        self._reset_deadline()
        return self.env.process(self._run())

    def stop(self) -> None:
        self._stopped = True
        self._fail_waiters()
        revive = self._revive_ev
        if revive is not None and not revive.triggered:
            revive.succeed()

    def crash(self) -> None:
        """Power loss: volatile state and inbox gone, disk state kept."""
        if self.crashed:
            return
        self.crashed = True
        self.fabric.kill(self.name)
        self.role = Role.FOLLOWER
        self.leader_hint = None
        self._prevotes = None
        self._election_began = None
        self._fail_waiters()
        self._trace("crash", self.term)

    def revive(self) -> None:
        if not self.crashed:
            return
        self.crashed = False
        self.fabric.revive(self.name)
        self._reset_deadline()
        self._trace("revive", self.term)
        revive = self._revive_ev
        if revive is not None and not revive.triggered:
            revive.succeed()

    def _fail_waiters(self) -> None:
        pending = sorted(self._waiters)
        self._waiters, waiters = {}, self._waiters
        self._proposed_at.clear()
        for index in pending:
            event = waiters[index]
            if not event.triggered:
                event.fail(NotLeader(self.leader_hint))

    # -- main loop -----------------------------------------------------------

    def _run(self) -> Generator[Event, Any, None]:
        env = self.env
        while not self._stopped:
            if self.crashed:
                self._revive_ev = env.event()
                yield self._revive_ev
                self._revive_ev = None
                continue
            due = (
                self._heartbeat_due if self.role is Role.LEADER
                else self._deadline
            )
            delay = max(0.0, due - env.now)
            yield env.any_of(
                [self.fabric.recv_event(self.name), env.timeout(delay)]
            )
            if self._stopped:
                return
            if self.crashed:
                continue
            msg = self.fabric.pop(self.name)
            while msg is not None and not self.crashed and not self._stopped:
                self._handle(msg)
                msg = self.fabric.pop(self.name)
            if self.crashed or self._stopped:
                continue
            if self.role is Role.LEADER:
                if env.now >= self._heartbeat_due:
                    self._broadcast_entries()
            elif env.now >= self._deadline:
                self._start_prevote()

    def _reset_deadline(self) -> None:
        jitter = float(self._rng.random()) * self.election_timeout_span
        self._deadline = self.env.now + self.election_timeout_min + jitter

    # -- elections -----------------------------------------------------------

    def _start_prevote(self) -> None:
        """Probe for electability at ``term + 1`` without bumping the term.

        Only a majority of granted probes leads to a real election, so a
        member cut off from the quorum keeps timing out at its old term
        and cannot disrupt the cluster when connectivity returns.
        """
        self._prevotes = {self.name: True}
        if self._election_began is None:
            self._election_began = self.env.now
        self._reset_deadline()
        self._trace("prevote", self.term + 1)
        probe = RequestVote(
            term=self.term + 1, candidate=self.name,
            last_log_index=self.last_index(), last_log_term=self.last_term(),
            prevote=True,
        )
        for peer in self.peers:
            self.fabric.send(self.name, peer, probe)
        self._maybe_prewin()  # single-member group probes itself

    def _maybe_prewin(self) -> None:
        tally = self._prevotes
        if tally is None:
            return
        granted = sum(1 for m in self.members if tally.get(m, False))
        if granted >= self._majority():
            self._prevotes = None
            self._start_election()

    def _start_election(self) -> None:
        self.term += 1
        self.role = Role.CANDIDATE
        self.voted_for = self.name
        self.leader_hint = None
        self._prevotes = None
        self._votes = {self.name: True}
        self.elections_started += 1
        self._reset_deadline()
        self._trace("election", self.term)
        self._obs_instant("raft.election", term=self.term)
        self._obs_count("consensus.elections")
        request = RequestVote(
            term=self.term, candidate=self.name,
            last_log_index=self.last_index(), last_log_term=self.last_term(),
        )
        for peer in self.peers:
            self.fabric.send(self.name, peer, request)
        self._maybe_win()  # single-member group elects itself

    def _maybe_win(self) -> None:
        granted = sum(1 for m in self.members if self._votes.get(m, False))
        if granted >= self._majority():
            self._become_leader()

    def _majority(self) -> int:
        return len(self.members) // 2 + 1

    def _become_leader(self) -> None:
        self.role = Role.LEADER
        self.leader_hint = self.name
        self.terms_led.append(self.term)
        last = self.last_index()
        self.next_index = {p: last + 1 for p in self.peers}
        self.match_index = {p: 0 for p in self.peers}
        self._trace("leader", self.term)
        self._obs_instant("raft.leader", term=self.term)
        self._obs_count("consensus.leader_elections")
        if self.fabric.last_leader not in (None, self.name):
            self._obs_count("consensus.leader_changes")
        self.fabric.last_leader = self.name
        began = self._election_began
        if began is not None:
            self._election_began = None
            ctx = self.env.obs
            if ctx is not None:
                ctx.metrics.histogram(
                    "consensus.election_latency_s").observe(
                        self.env.now - began)
        # Barrier entry: commits any still-uncommitted prior-term entries
        # as soon as this term replicates it (Raft §5.4.2).
        self._append_local(("noop",))
        self._broadcast_entries()
        self._advance_commit()

    def _become_follower(self, term: int) -> None:
        was_leader = self.role is Role.LEADER
        self.term = term
        self.role = Role.FOLLOWER
        self.voted_for = None
        self._prevotes = None
        self._election_began = None  # someone else's term won the race
        if was_leader:
            self._fail_waiters()
        self._reset_deadline()

    # -- proposals (leader API) ----------------------------------------------

    def propose(self, command: Sequence[Any]) -> Event:
        """Append a command; the event fires when it commits and applies.

        Raises :class:`~repro.errors.NotLeader` (with a hint) from
        non-leaders; the group client retries against the hint.
        """
        if self.crashed or self._stopped or self.role is not Role.LEADER:
            raise NotLeader(self.leader_hint)
        entry = self._append_local(tuple(command))
        waiter = self.env.event()
        self._waiters[entry.index] = waiter
        self._proposed_at[entry.index] = self.env.now
        self._obs_count("consensus.proposals")
        self._broadcast_entries()
        self._advance_commit()
        return waiter

    def _append_local(self, command: Tuple[Any, ...]) -> LogEntry:
        entry = LogEntry(term=self.term, index=self.last_index() + 1,
                         command=command)
        self._log.append(entry)
        return entry

    # -- replication (leader side) ---------------------------------------------

    def _broadcast_entries(self) -> None:
        for peer in self.peers:
            self._send_entries(peer)
        self._heartbeat_due = self.env.now + self.heartbeat_interval
        self._obs_count("consensus.heartbeats")

    def _send_entries(self, peer: str) -> None:
        nxt = self.next_index.get(peer, self.last_index() + 1)
        if nxt <= self.snap_last_index:
            self.fabric.send(self.name, peer, InstallSnapshot(
                term=self.term, leader=self.name,
                last_included_index=self.snap_last_index,
                last_included_term=self.snap_last_term,
                snapshot=self._snap_image,
            ))
            return
        prev = nxt - 1
        prev_term = self._term_at(prev)
        if prev_term is None:
            raise SimulationError(
                f"{self.name}: next_index[{peer}]={nxt} points past the log"
            )
        first = nxt - self.snap_last_index - 1
        batch = tuple(self._log[first:first + MAX_BATCH_ENTRIES])
        self._obs_count("consensus.append_entries")
        self.fabric.send(self.name, peer, AppendEntries(
            term=self.term, leader=self.name,
            prev_log_index=prev, prev_log_term=prev_term,
            entries=batch, leader_commit=self.commit_index,
        ))

    def _advance_commit(self) -> None:
        if self.role is not Role.LEADER:
            return
        matches = sorted(
            [self.match_index.get(p, 0) for p in self.peers]
            + [self.last_index()]
        )
        # The (majority)th-highest match is replicated on a majority.
        candidate = matches[len(self.members) - self._majority()]
        if candidate > self.commit_index and self._term_at(candidate) == self.term:
            self.commit_index = candidate
            self._apply_committed()

    # -- message handling ------------------------------------------------------

    def _handle(self, msg: Any) -> None:
        # PreVote traffic carries a *prospective* term and must not bump
        # ours — that is the whole point of the probe.
        prevote = isinstance(msg, (RequestVote, VoteReply)) and msg.prevote
        if msg.term > self.term and not prevote:
            self._become_follower(msg.term)
        if isinstance(msg, RequestVote):
            self._on_request_vote(msg)
        elif isinstance(msg, VoteReply):
            self._on_vote_reply(msg)
        elif isinstance(msg, AppendEntries):
            self._on_append_entries(msg)
        elif isinstance(msg, AppendReply):
            self._on_append_reply(msg)
        elif isinstance(msg, InstallSnapshot):
            self._on_install_snapshot(msg)
        elif isinstance(msg, SnapshotReply):
            self._on_snapshot_reply(msg)
        else:
            raise SimulationError(f"unknown consensus message {msg!r}")

    def _on_request_vote(self, msg: RequestVote) -> None:
        up_to_date = (
            msg.last_log_term > self.last_term()
            or (msg.last_log_term == self.last_term()
                and msg.last_log_index >= self.last_index())
        )
        if msg.prevote:
            # Side-effect-free: no voted_for record, no deadline reset.
            granted = msg.term >= self.term and up_to_date
            self.fabric.send(self.name, msg.candidate,
                             VoteReply(self.term, self.name, granted,
                                       prevote=True))
            return
        granted = False
        if (msg.term >= self.term
                and self.voted_for in (None, msg.candidate) and up_to_date):
            granted = True
            self.voted_for = msg.candidate
            self._prevotes = None
            self._reset_deadline()
        self.fabric.send(self.name, msg.candidate,
                         VoteReply(self.term, self.name, granted))

    def _on_vote_reply(self, msg: VoteReply) -> None:
        if msg.prevote:
            if msg.granted and self._prevotes is not None:
                self._prevotes[msg.voter] = True
                self._maybe_prewin()
            return
        if self.role is not Role.CANDIDATE or msg.term != self.term:
            return
        if msg.granted:
            self._votes[msg.voter] = True
            self._maybe_win()

    def _on_append_entries(self, msg: AppendEntries) -> None:
        if msg.term < self.term:
            self.fabric.send(self.name, msg.leader, AppendReply(
                self.term, self.name, False, self.last_index()))
            return
        if self.role is Role.CANDIDATE:
            self.role = Role.FOLLOWER
        self.leader_hint = msg.leader
        self._prevotes = None  # a live leader cancels any probe in flight
        self._election_began = None
        self._reset_deadline()
        prev = msg.prev_log_index
        prev_term = self._term_at(prev)
        if prev_term is None or prev_term != msg.prev_log_term:
            # Missing or conflicting: back the leader off to our tail.
            hint = min(self.last_index(), max(prev - 1, self.snap_last_index))
            if prev_term is not None and prev > self.snap_last_index:
                # Conflict inside our log: drop the conflicting suffix.
                del self._log[prev - self.snap_last_index - 1:]
            self.fabric.send(self.name, msg.leader,
                             AppendReply(self.term, self.name, False, hint))
            return
        for entry in msg.entries:
            existing = self._term_at(entry.index)
            if existing is None and entry.index == self.last_index() + 1:
                self._log.append(entry)
            elif existing is not None and existing != entry.term:
                del self._log[entry.index - self.snap_last_index - 1:]
                self._log.append(entry)
            # else: duplicate of an entry we already hold — skip.
        if msg.leader_commit > self.commit_index:
            # Only up to the prefix THIS RPC verified (prev + entries):
            # beyond it we may still hold a deposed leader's uncommitted
            # suffix that the new leader has yet to overwrite.
            verified = prev + len(msg.entries)
            if verified > self.commit_index:
                self.commit_index = min(msg.leader_commit, verified)
                self._apply_committed()
        self.fabric.send(self.name, msg.leader, AppendReply(
            self.term, self.name, True,
            max(prev + len(msg.entries), self.snap_last_index)))

    def _on_append_reply(self, msg: AppendReply) -> None:
        if self.role is not Role.LEADER or msg.term != self.term:
            return
        peer = msg.follower
        if msg.success:
            if msg.match_index > self.match_index.get(peer, 0):
                self.match_index[peer] = msg.match_index
            self.next_index[peer] = self.match_index[peer] + 1
            self._advance_commit()
            if self.next_index[peer] <= self.last_index():
                self._send_entries(peer)  # keep catch-up flowing
        else:
            nxt = max(1, min(self.next_index.get(peer, 1) - 1,
                             msg.match_index + 1))
            self.next_index[peer] = nxt
            self._send_entries(peer)

    def _on_install_snapshot(self, msg: InstallSnapshot) -> None:
        if msg.term < self.term:
            self.fabric.send(self.name, msg.leader, SnapshotReply(
                self.term, self.name, self.snap_last_index))
            return
        self.leader_hint = msg.leader
        self._prevotes = None
        self._reset_deadline()
        if msg.last_included_index > self.snap_last_index:
            if self._term_at(msg.last_included_index) == msg.last_included_term:
                # We hold the suffix: keep it, drop the covered prefix.
                del self._log[:msg.last_included_index - self.snap_last_index]
            else:
                self._log = []
            self.machine.restore(msg.last_included_index, msg.snapshot)
            self.snap_last_index = msg.last_included_index
            self.snap_last_term = msg.last_included_term
            self._snap_image = msg.snapshot
            if msg.last_included_index > self.commit_index:
                self.commit_index = msg.last_included_index
            self._trace("snapshot.install", msg.last_included_index)
            self._obs_count("consensus.snapshots_installed")
        self.fabric.send(self.name, msg.leader, SnapshotReply(
            self.term, self.name, self.snap_last_index))

    def _on_snapshot_reply(self, msg: SnapshotReply) -> None:
        if self.role is not Role.LEADER or msg.term != self.term:
            return
        peer = msg.follower
        if msg.last_included_index > self.match_index.get(peer, 0):
            self.match_index[peer] = msg.last_included_index
        self.next_index[peer] = self.match_index[peer] + 1
        self._advance_commit()
        if self.next_index[peer] <= self.last_index():
            self._send_entries(peer)

    # -- apply + compaction ---------------------------------------------------

    def _apply_committed(self) -> None:
        ctx = self.env.obs
        while self.machine.applied_index < self.commit_index:
            index = self.machine.applied_index + 1
            entry = self._entry(index)
            result = self.machine.apply(index, entry.command)
            self.entries_applied += 1
            self._trace("commit", index, entry.term)
            if ctx is not None:
                ctx.metrics.counter("consensus.commits").add(1)
            waiter = self._waiters.pop(index, None)
            if waiter is not None:
                proposed = self._proposed_at.pop(index, None)
                if ctx is not None and proposed is not None:
                    ctx.metrics.histogram(
                        "consensus.commit_latency_s").observe(
                            self.env.now - proposed)
                if not waiter.triggered:
                    waiter.succeed((index, result))
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        applied = self.machine.applied_index
        if applied - self.snap_last_index < self.snapshot_threshold:
            return
        last_term = self._term_at(applied)
        if last_term is None:
            return
        self._snap_image = self.machine.snapshot()
        del self._log[:applied - self.snap_last_index]
        self.snap_last_index = applied
        self.snap_last_term = last_term
        self.snapshots_taken += 1
        self._trace("snapshot", applied)
        self._obs_count("consensus.snapshots")

    # -- observability ---------------------------------------------------------

    def _trace(self, kind: str, *detail: Any) -> None:
        self.trace.append((kind, *detail, round(self.env.now, 9), self.name))

    def _obs_count(self, name: str) -> None:
        ctx = self.env.obs
        if ctx is not None:
            ctx.metrics.counter(name).add(1)

    def _obs_instant(self, name: str, **attrs: Any) -> None:
        tr = tracer_of(self.env)
        if tr is not None:
            tr.instant(name, cat="consensus", track="consensus",
                       member=self.name, **attrs)
