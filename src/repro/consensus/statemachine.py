"""Replicated state machines: full (metadata + grants) and witness.

The shape follows the nexus federation memo: a ``FullStateMachine``
applying metadata operations and namespace grants, and a vote-only
``WitnessStateMachine`` for cheap third members — a witness replicates
and persists the log (its vote counts toward commit majorities) but
materialises no state, so it can run on a node with no DRAM budget for
the namespace.

Commands are plain tuples (see :mod:`repro.consensus.messages`):

========================  ====================================================
``("noop",)``             leader barrier entry on election (commits prior terms)
``("meta.set", k, v)``    upsert one metadata entry (MicroFS op provenance)
``("meta.del", k)``       remove one metadata entry
``("grant.add", job, g)`` record a job's namespace grants ``g`` (tuple)
``("grant.del", job)``    revoke a job's grants
========================  ====================================================
"""

from __future__ import annotations

import abc
import hashlib
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["StateMachine", "FullStateMachine", "WitnessStateMachine"]

Command = Tuple[Any, ...]


class StateMachine(abc.ABC):
    """What a Raft member applies committed entries to."""

    #: vote-only members replicate the log but materialise no state
    witness: bool = False

    def __init__(self) -> None:
        self.applied_index = 0

    @abc.abstractmethod
    def apply(self, index: int, command: Command) -> Any:
        """Apply one committed command; returns the op result."""

    @abc.abstractmethod
    def snapshot(self) -> Any:
        """An opaque, copyable image of the full state at ``applied_index``."""

    @abc.abstractmethod
    def restore(self, last_included_index: int, image: Any) -> None:
        """Replace all state with ``image`` (InstallSnapshot path)."""

    def digest(self) -> str:
        """Content hash for zero-loss verification across members."""
        return hashlib.sha256(repr(self._digest_items()).encode()).hexdigest()

    def _digest_items(self) -> Any:
        return ("witness", self.applied_index)


class FullStateMachine(StateMachine):
    """Metadata entries + namespace grants, applied in log order.

    ``meta`` mirrors what the MicroFS operation log journals (key ->
    parameters tuple); ``grants`` mirrors the balancer's storage grants
    (job name -> tuple of ``(node_name, nsid, nbytes)``).  Both are
    plain dicts keyed by strings, so snapshots are cheap copies and
    digests are order-independent.
    """

    witness = False

    def __init__(self) -> None:
        super().__init__()
        self.meta: Dict[str, Any] = {}
        self.grants: Dict[str, Tuple[Any, ...]] = {}

    # -- apply -------------------------------------------------------------

    def apply(self, index: int, command: Command) -> Any:
        if index <= self.applied_index:
            raise SimulationError(
                f"state machine replay: index {index} <= {self.applied_index}"
            )
        self.applied_index = index
        op = command[0]
        if op == "noop":
            return None
        if op == "meta.set":
            self.meta[command[1]] = command[2]
            return command[2]
        if op == "meta.del":
            return self.meta.pop(command[1], None)
        if op == "grant.add":
            self.grants[command[1]] = tuple(command[2])
            return command[2]
        if op == "grant.del":
            return self.grants.pop(command[1], None)
        raise SimulationError(f"unknown replicated command {op!r}")

    # -- reads -------------------------------------------------------------

    def get(self, key: str) -> Any:
        return self.meta.get(key)

    def grant_of(self, job: str) -> Optional[Tuple[Any, ...]]:
        return self.grants.get(job)

    def keys(self) -> List[str]:
        return sorted(self.meta)

    # -- snapshot / restore ------------------------------------------------

    def snapshot(self) -> Any:
        return (dict(self.meta), dict(self.grants))

    def restore(self, last_included_index: int, image: Any) -> None:
        meta, grants = image
        self.meta = dict(meta)
        self.grants = dict(grants)
        self.applied_index = last_included_index

    def _digest_items(self) -> Any:
        return (sorted(self.meta.items()), sorted(self.grants.items()))


class WitnessStateMachine(StateMachine):
    """Vote-only member: counts applies, stores nothing.

    The witness's log still replicates (its persistence is what makes a
    2-data-member group safe), but ``apply`` discards the command, its
    snapshot is empty, and restoring one only moves ``applied_index``.
    """

    witness = True

    def __init__(self) -> None:
        super().__init__()
        self.applied_count = 0

    def apply(self, index: int, command: Command) -> Any:
        if index <= self.applied_index:
            raise SimulationError(
                f"witness replay: index {index} <= {self.applied_index}"
            )
        self.applied_index = index
        self.applied_count += 1
        return None

    def snapshot(self) -> Any:
        return None

    def restore(self, last_included_index: int, image: Any) -> None:
        self.applied_index = last_included_index
