"""The replicated implementation of the control-plane metadata store.

``ReplicatedMetadataStore`` speaks the exact
:class:`~repro.core.control_plane.MetadataStore` interface but routes
every mutation through :meth:`RaftGroup.propose`, so a mutation costs
real fabric round trips (leader append -> quorum replication -> apply)
and transparently survives leader failover.  Reads are served from the
current leader's state machine — the linearizable-enough choice for the
runtime's metadata (every read follows the client's own acked write,
and the failover experiment verifies digests across replicas anyway).
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple

from repro.consensus.group import RaftGroup
from repro.consensus.statemachine import FullStateMachine
from repro.core.control_plane import MetadataStore
from repro.errors import ConsensusError
from repro.sim.engine import Environment, Event

__all__ = ["ReplicatedMetadataStore"]


class ReplicatedMetadataStore(MetadataStore):
    """Metadata operations committed through a Raft group."""

    mode = "raft"

    def __init__(self, env: Environment, group: RaftGroup):
        self.env = env
        self.group = group
        self.ops_committed = 0

    # -- mutations (quorum round trips) -------------------------------------

    def _commit(
        self, command: Tuple[Any, ...]
    ) -> Generator[Event, Any, Any]:
        _index, result = yield from self.group.propose(command)
        self.ops_committed += 1
        return result

    def set(self, key: str, value: Any) -> Generator[Event, Any, Any]:
        return (yield from self._commit(("meta.set", key, value)))

    def delete(self, key: str) -> Generator[Event, Any, Any]:
        return (yield from self._commit(("meta.del", key)))

    def add_grant(
        self, job: str, grant: Tuple[Any, ...]
    ) -> Generator[Event, Any, Any]:
        return (yield from self._commit(("grant.add", job, tuple(grant))))

    def revoke_grant(self, job: str) -> Generator[Event, Any, Any]:
        return (yield from self._commit(("grant.del", job)))

    # -- reads (leader-local) -------------------------------------------------

    def _machine(self) -> FullStateMachine:
        lead = self.group.leader()
        if lead is not None:
            machine = self.group.nodes[lead].machine
            if isinstance(machine, FullStateMachine):
                return machine
        # Leaderless (mid-election) or witness leader: read the most
        # advanced live full member — the freshest surviving state.
        best: Optional[FullStateMachine] = None
        best_key = (-1, -1)
        for name in self.group.full_members():
            node = self.group.nodes[name]
            if node.crashed:
                continue
            key = (node.commit_index, node.machine.applied_index)
            if isinstance(node.machine, FullStateMachine) and key > best_key:
                best, best_key = node.machine, key
        if best is None:
            raise ConsensusError("no live full member to read from")
        return best

    def get(self, key: str) -> Any:
        return self._machine().get(key)

    def grant_of(self, job: str) -> Optional[Tuple[Any, ...]]:
        return self._machine().grant_of(job)

    def keys(self) -> List[str]:
        return self._machine().keys()

    def digest(self) -> str:
        return self._machine().digest()
