"""NVMe-CR: the paper's contribution.

The public surface re-exported here is what the examples and benchmarks
program against:

* :class:`~repro.core.config.RuntimeConfig` — feature flags + sizes,
* :mod:`repro.core.microfs` — the per-process micro filesystem,
* :class:`~repro.core.runtime.NVMeCRRuntime` — one rank's runtime,
* :class:`~repro.core.balancer.StorageBalancer` — load/fault-aware SSD
  allocation and partitioning,
* :class:`~repro.core.interception.PosixShim` — the LD_PRELOAD-style
  POSIX interception layer,
* :class:`~repro.core.multilevel.MultiLevelCheckpointer` — NVMe-CR +
  PFS second tier.
"""

from repro.core.config import RuntimeConfig
from repro.core.balancer import BalancerPlan, StorageBalancer
from repro.core.interception import PosixShim
from repro.core.multilevel import MultiLevelCheckpointer
from repro.core.runtime import NVMeCRRuntime

__all__ = [
    "BalancerPlan",
    "MultiLevelCheckpointer",
    "NVMeCRRuntime",
    "PosixShim",
    "RuntimeConfig",
    "StorageBalancer",
]
