"""Load-aware, fault-aware storage balancing (§III-F).

The balancer runs twice per job, exactly as the paper describes:

1. **Allocation** (with the scheduler): pick SSDs for the job on the
   *closest available partner failure domains* — storage must sit in a
   different failure domain than the compute it protects, preferring
   fewer switch hops.
2. **Partitioning** (at runtime init): map processes to the allocated
   SSDs round-robin ("Processes within a job are assigned to the
   allocated SSDs in a round robin manner to achieve load balancing"),
   then slice each SSD between its processes by ``MPI_COMM_CR`` rank.

Round-robin assignment of equal-size checkpoint files is what produces
the *perfect* load balance of Figure 7(b): the per-server coefficient of
variation is identically zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import AllocationError
from repro.nvme.namespace import Partition
from repro.scheduler.jobs import JobRecord
from repro.scheduler.slurm import SlurmScheduler, StorageGrant
from repro.topology.failure_domains import (
    FailureDomain,
    derive_failure_domains,
    partner_domains,
)

__all__ = ["BalancerPlan", "StorageBalancer"]


@dataclass
class BalancerPlan:
    """The process <-> storage mapping for one job."""

    job: JobRecord
    grants: List[StorageGrant]
    rank_to_grant: Dict[int, int] = field(default_factory=dict)
    #: Tier devices available to this job beyond the granted NVMe SSDs
    #: (NVM modules, CXL-SSDs) — anything implementing the
    #: :class:`repro.tiers.base.DeviceModel` inventory surface.
    extra_devices: List[object] = field(default_factory=list)

    def grant_of_rank(self, rank: int) -> StorageGrant:
        return self.grants[self.rank_to_grant[rank]]

    def color_of_rank(self, rank: int) -> int:
        """The ``MPI_Comm_split`` color: one color per shared SSD."""
        return self.rank_to_grant[rank]

    def group_of_grant(self, grant_index: int) -> List[int]:
        """World ranks sharing grant ``grant_index`` (the MPI_COMM_CR group)."""
        return sorted(
            rank for rank, g in self.rank_to_grant.items() if g == grant_index
        )

    def partition_for(self, rank: int, block_bytes: int) -> Partition:
        """This rank's contiguous SSD segment (§III-F / Figure 6)."""
        grant_index = self.rank_to_grant[rank]
        group = self.group_of_grant(grant_index)
        local_rank = group.index(rank)
        return self.grants[grant_index].namespace.partition(
            local_rank, len(group), block_bytes
        )

    def tier_inventory(self) -> Dict[str, Dict[str, float]]:
        """Per-tier capacity/bandwidth totals for this job's storage.

        Sums the granted SSDs and any attached extra tier devices over
        the :class:`~repro.tiers.base.DeviceModel` inventory surface,
        keyed by tier name — the heterogeneous-fleet view placement
        policies and capacity planners work from.
        """
        out: Dict[str, Dict[str, float]] = {}
        devices: List[object] = [g.ssd for g in self.grants]
        devices.extend(self.extra_devices)
        for dev in devices:
            row = out.setdefault(dev.tier_name, {
                "devices": 0,
                "capacity_bytes": 0,
                "free_bytes": 0,
                "write_bandwidth": 0.0,
                "read_bandwidth": 0.0,
            })
            row["devices"] += 1
            row["capacity_bytes"] += dev.capacity_bytes()
            row["free_bytes"] += dev.free_bytes()
            row["write_bandwidth"] += dev.write_bandwidth()
            row["read_bandwidth"] += dev.read_bandwidth()
        return out


class StorageBalancer:
    """Chooses storage nodes for jobs and maps ranks onto them."""

    def __init__(self, scheduler: SlurmScheduler):
        self.scheduler = scheduler
        self.topo = scheduler.topo
        self._domains = derive_failure_domains(scheduler.cluster)
        self._partners = partner_domains(self.topo, self._domains)
        #: Non-NVMe tier devices (NVM, CXL-SSD) registered with the
        #: balancer; copied onto every plan so per-job tier inventory
        #: sees the full heterogeneous fleet.
        self.tier_devices: List[object] = []

    def attach_tier_device(self, device: object) -> None:
        """Register an extra tier device (DeviceModel) with the balancer."""
        self.tier_devices.append(device)

    # -- failure-domain queries ----------------------------------------------------

    def domain_of_node(self, node_name: str) -> FailureDomain:
        for domain in self._domains:
            if node_name in domain:
                return domain
        raise AllocationError(f"node {node_name} is in no failure domain")

    def job_domains(self, job: JobRecord) -> List[FailureDomain]:
        seen: Dict[str, FailureDomain] = {}
        for node in job.compute_nodes:
            domain = self.domain_of_node(node)
            seen[domain.domain_id] = domain
        return list(seen.values())

    # -- allocation -----------------------------------------------------------------------

    def allocate(
        self,
        job: JobRecord,
        devices: Optional[int] = None,
        bytes_per_device: Optional[int] = None,
        allow_same_domain: bool = False,
    ) -> BalancerPlan:
        """Pick storage nodes on partner domains and build the rank map.

        Greedy walk: partner domains of the job's compute domains in
        hop-distance order; within a domain, storage nodes in name order
        (deterministic). Raises :class:`AllocationError` when partner
        domains cannot supply enough devices, unless ``allow_same_domain``
        explicitly waives fault isolation.
        """
        wanted = devices if devices is not None else job.spec.storage_devices_needed()
        compute_domains = {d.domain_id for d in self.job_domains(job)}
        if not compute_domains:
            raise AllocationError(f"job {job.spec.name} has no compute allocation")
        inventory = self.scheduler.storage_inventory()
        candidates: List[str] = []
        primary = self.job_domains(job)[0]
        for domain in self._partners[primary.domain_id]:
            if domain.domain_id in compute_domains:
                continue  # not a partner: shares hardware with the job
            for node in sorted(domain.node_names()):
                if node in inventory and node not in candidates:
                    candidates.append(node)
        if allow_same_domain and len(candidates) < wanted:
            for domain_id in sorted(compute_domains):
                domain = next(d for d in self._domains if d.domain_id == domain_id)
                for node in sorted(domain.node_names()):
                    if node in inventory and node not in candidates:
                        candidates.append(node)
        if len(candidates) < wanted:
            raise AllocationError(
                f"job {job.spec.name}: need {wanted} storage nodes on partner "
                f"domains, found {len(candidates)}"
            )
        chosen = candidates[:wanted]
        grants = self.scheduler.grant_storage(job, chosen, bytes_per_device)
        plan = BalancerPlan(job=job, grants=grants)
        plan.extra_devices = list(self.tier_devices)
        for rank in range(job.spec.nprocs):
            plan.rank_to_grant[rank] = rank % len(grants)
        return plan
