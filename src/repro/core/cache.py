"""DRAM cache layer over microfs — the paper's stated future work (§V:
"we plan to study the impact of a cache layer over NVMe-CR").

:class:`CachedMicroFS` wraps a :class:`MicroFS` with a block-granular
LRU cache in compute-node DRAM, under two policies:

* **write-through** — writes hit DRAM *and* the device before
  completing; durability semantics unchanged, reads of recent data are
  served from DRAM at memcpy speed.
* **write-back** — writes complete after the DRAM copy; dirty blocks
  drain on ``fsync``/``close``. Faster perceived writes, but the §III-D
  argument applies: buffered data is *not* power-loss safe until
  flushed, and the deferred IO lands inside the measured checkpoint
  window anyway when fsync is called (the ablation bench quantifies
  this).

The cache indexes ``(ino, block_index)`` and never caches partial
blocks (checkpoint IO is block-aligned by construction).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Generator, List, Tuple

from repro.bench import calibration as cal
from repro.core.microfs.fs import FileHandle, MicroFS
from repro.errors import InvalidArgument
from repro.nvme.commands import Payload
from repro.sim.engine import Event
from repro.obs.metrics import Counter

__all__ = ["CachedMicroFS"]

_POLICIES = ("write-through", "write-back")


class CachedMicroFS:
    """A caching decorator over one MicroFS instance.

    Exposes the subset of the MicroFS surface the interception shim
    uses, so it can slot between :class:`PosixShim` and the fs.
    """

    def __init__(self, fs: MicroFS, capacity_bytes: int, policy: str = "write-through"):
        if policy not in _POLICIES:
            raise InvalidArgument(f"policy must be one of {_POLICIES}, got {policy!r}")
        if capacity_bytes < fs.config.effective_block_bytes:
            raise InvalidArgument("cache smaller than one block")
        self.fs = fs
        self.env = fs.env
        self.capacity_bytes = capacity_bytes
        self.policy = policy
        self.block = fs.config.effective_block_bytes
        self.capacity_blocks = capacity_bytes // self.block
        # key -> payload slice for that block (LRU order = insertion).
        self._cache: OrderedDict[Tuple[int, int], Payload] = OrderedDict()
        self._dirty: Dict[Tuple[int, int], Payload] = {}
        self._dirty_ranges: Dict[int, List[Tuple[int, Payload]]] = {}
        self.counters = Counter()

    # -- cache mechanics -------------------------------------------------------------

    def _touch(self, key: Tuple[int, int], payload: Payload) -> None:
        if key in self._cache:
            self._cache.move_to_end(key)
        self._cache[key] = payload
        while len(self._cache) > self.capacity_blocks:
            victim, _ = self._cache.popitem(last=False)
            self.counters.add("evictions")
            # Write-back never evicts dirty blocks silently; they were
            # captured in _dirty_ranges at write time.

    def _copy_cost(self, nbytes: int) -> Event:
        return self.env.timeout(nbytes / cal.PAGE_CACHE_COPY_BW)

    # -- decorated operations ----------------------------------------------------------

    def open(self, *args, **kwargs):
        return self.fs.open(*args, **kwargs)

    def close(self, handle: FileHandle) -> Generator[Event, Any, None]:
        if self.policy == "write-back":
            yield from self._drain(handle.ino)
        yield from self.fs.close(handle)

    def mkdir(self, *args, **kwargs):
        return self.fs.mkdir(*args, **kwargs)

    def unlink(self, path: str, **kwargs) -> Generator[Event, Any, None]:
        inode = self.fs.stat(path)
        self._invalidate(inode.ino)
        yield from self.fs.unlink(path, **kwargs)

    def stat(self, path: str):
        return self.fs.stat(path)

    def readdir(self, path: str):
        return self.fs.readdir(path)

    def write(self, handle: FileHandle, data) -> Generator[Event, Any, int]:
        written = yield from self.pwrite(handle, data, handle.pos)
        handle.pos += written
        return written

    def pwrite(self, handle: FileHandle, data, offset: int) -> Generator[Event, Any, int]:
        payload = self.fs._as_payload(data, handle.ino, offset)
        yield self._copy_cost(payload.nbytes)
        self._insert_blocks(handle.ino, offset, payload)
        if self.policy == "write-through":
            return (yield from self.fs.pwrite(handle, payload, offset))
        # Write-back: remember the range; device IO deferred to fsync.
        self._dirty_ranges.setdefault(handle.ino, []).append((offset, payload))
        self.counters.add("writeback_bytes_buffered", payload.nbytes)
        # Metadata must still be durable (size is journaled at drain).
        return payload.nbytes

    def read(self, handle: FileHandle, nbytes: int) -> Generator[Event, Any, List[Payload]]:
        pieces = yield from self.pread(handle, nbytes, handle.pos)
        handle.pos += sum(p.nbytes for p in pieces)
        return pieces

    def pread(self, handle: FileHandle, nbytes: int, offset: int) -> Generator[Event, Any, List[Payload]]:
        inode = self.fs.inodes.get(handle.ino)
        if inode is None:
            return (yield from self.fs.pread(handle, nbytes, offset))
        nbytes = max(0, min(nbytes, self._cached_size(handle.ino, inode.size) - offset))
        if nbytes == 0:
            return []
        # Fully cached? Serve from DRAM.
        first = offset // self.block
        last = (offset + nbytes - 1) // self.block
        keys = [(handle.ino, i) for i in range(first, last + 1)]
        if all(key in self._cache for key in keys):
            self.counters.add("hits", len(keys))
            yield self._copy_cost(nbytes)
            for key in keys:
                self._cache.move_to_end(key)
            return [self._cache[key] for key in keys]
        self.counters.add("misses", len(keys))
        if self.policy == "write-back":
            yield from self._drain(handle.ino)
        pieces = yield from self.fs.pread(handle, nbytes, offset)
        # Populate the cache with what came back.
        at = offset
        for piece in pieces:
            if at % self.block == 0 and piece.nbytes >= self.block:
                self._insert_blocks(handle.ino, at, piece)
            at += piece.nbytes
        return pieces

    def fsync(self, handle: FileHandle) -> Generator[Event, Any, None]:
        if self.policy == "write-back":
            yield from self._drain(handle.ino)
        yield from self.fs.fsync(handle)

    # -- internals ----------------------------------------------------------------------

    def _cached_size(self, ino: int, device_size: int) -> int:
        """File size including not-yet-drained write-back data."""
        size = device_size
        for offset, payload in self._dirty_ranges.get(ino, []):
            size = max(size, offset + payload.nbytes)
        return size

    def _insert_blocks(self, ino: int, offset: int, payload: Payload) -> None:
        if offset % self.block != 0:
            return  # partial-block writes bypass the cache
        at = 0
        index = offset // self.block
        while at + self.block <= payload.nbytes:
            self._touch((ino, index), payload.slice(at, self.block))
            at += self.block
            index += 1

    def _invalidate(self, ino: int) -> None:
        for key in [k for k in self._cache if k[0] == ino]:
            del self._cache[key]
        self._dirty_ranges.pop(ino, None)

    def _drain(self, ino: int) -> Generator[Event, Any, None]:
        """Flush buffered write-back ranges to the device in order."""
        pending = self._dirty_ranges.pop(ino, [])
        if not pending:
            return
        handle = None
        for fd_handle in self.fs._handles.values():
            if fd_handle.ino == ino:
                handle = fd_handle
                break
        if handle is None:
            raise InvalidArgument(f"drain of inode {ino} with no open handle")
        for offset, payload in pending:
            self.counters.add("writeback_bytes_drained", payload.nbytes)
            yield from self.fs.pwrite(handle, payload, offset)

    # -- stats ---------------------------------------------------------------------------

    def hit_rate(self) -> float:
        hits = self.counters.get("hits")
        total = hits + self.counters.get("misses")
        return hits / total if total else 0.0
