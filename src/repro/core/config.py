"""Runtime configuration: sizes, thresholds, and ablation flags.

The four feature flags mirror the drilldown of Figure 7(d): the base
configuration (all off) behaves like a traditional kernel filesystem
path; turning them on one-by-one reproduces the paper's optimisation
stack:

* ``userspace_direct``   — bypass the kernel (microfs principle 1),
* ``private_namespace``  — no global namespace / no create serialisation,
* ``metadata_provenance``— compact operation logging instead of
  physical (inode-image) logging,
* ``hugeblocks``         — 32 KiB allocation/IO units instead of 4 KiB.

``log_coalescing`` is the §III-E sliding-window optimisation evaluated
in Table II's recovery numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.bench import calibration as cal
from repro.errors import InvalidArgument

__all__ = ["RuntimeConfig"]


@dataclass(frozen=True)
class RuntimeConfig:
    """Per-runtime-instance configuration (immutable; use ``with_()``)."""

    hugeblock_bytes: int = cal.DEFAULT_HUGEBLOCK
    log_region_bytes: int = cal.LOG_REGION_BYTES
    state_region_bytes: int = cal.STATE_REGION_BYTES
    log_free_threshold: float = cal.LOG_FREE_THRESHOLD
    max_batch_bytes: int = cal.MAX_BATCH_BYTES
    coalescing_window: int = 8
    # Unified I/O pipeline knobs (off by default: the pinned-seed
    # baselines are bit-identical with batching disabled and no
    # admission window).
    batching: bool = False
    inflight_window_bytes: Optional[int] = None
    # Ablation flags (Figure 7(d) drilldown).
    userspace_direct: bool = True
    private_namespace: bool = True
    metadata_provenance: bool = True
    hugeblocks: bool = True
    log_coalescing: bool = True
    # Control-plane metadata authority: "local" (single authority, the
    # paper's baseline) or "raft" (replicated across zones; built by the
    # nvmecr-raft system variant).
    control_plane_mode: str = "local"
    # Checkpoint placement over storage tiers: "fixed-interval" is the
    # paper's every-k-th rule (§III-F, bit-identical baselines);
    # "cost-model" scores each tier's write cost against its residual
    # failure risk (built by the nvmecr-tiered system variant).
    checkpoint_placement: str = "fixed-interval"

    def __post_init__(self) -> None:
        if self.checkpoint_placement not in ("fixed-interval", "cost-model"):
            raise InvalidArgument(
                f"checkpoint_placement must be 'fixed-interval' or "
                f"'cost-model', got {self.checkpoint_placement!r}"
            )
        if self.control_plane_mode not in ("local", "raft"):
            raise InvalidArgument(
                f"control_plane_mode must be 'local' or 'raft', got "
                f"{self.control_plane_mode!r}"
            )
        if self.hugeblock_bytes < 4096 or self.hugeblock_bytes % 4096 != 0:
            raise InvalidArgument(
                f"hugeblock size must be a positive multiple of 4 KiB, got "
                f"{self.hugeblock_bytes}"
            )
        if not 0.0 < self.log_free_threshold < 1.0:
            raise InvalidArgument("log_free_threshold must be in (0, 1)")
        if self.coalescing_window < 1:
            raise InvalidArgument("coalescing_window must be >= 1")
        if self.max_batch_bytes < self.hugeblock_bytes:
            raise InvalidArgument("max_batch_bytes must cover one hugeblock")
        if self.inflight_window_bytes is not None and self.inflight_window_bytes < 1:
            raise InvalidArgument("inflight_window_bytes must be >= 1 when set")

    @property
    def effective_block_bytes(self) -> int:
        """Allocation/IO unit: hugeblocks when enabled, else 4 KiB."""
        return self.hugeblock_bytes if self.hugeblocks else 4096

    def with_(self, **changes) -> "RuntimeConfig":
        """A modified copy (dataclass ``replace`` with validation)."""
        return replace(self, **changes)

    @classmethod
    def drilldown_base(cls) -> "RuntimeConfig":
        """Figure 7(d)'s 'base': kernel-path, global-namespace, physical
        logging, 4 KiB blocks."""
        return cls(
            userspace_direct=False,
            private_namespace=False,
            metadata_provenance=False,
            hugeblocks=False,
            log_coalescing=False,
        )
