"""Control-plane services and accounting (§III-E).

The control-plane *logic* (inodes, B+Tree, logging) lives inside
:class:`~repro.core.microfs.fs.MicroFS`; this module provides:

* :class:`GlobalNamespaceService` — the ablation stand-in for a shared
  namespace: a serialising metadata service every create/unlink must
  visit, with a fabric round trip. Turning ``private_namespace`` on
  removes these visits entirely — the drilldown's biggest win at scale
  (Figure 7(d)).
* :class:`MetadataFootprint` — the DRAM/SSD metadata accounting behind
  Table I and §IV-G (404 MB inodes + 102 MB B+Tree figures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.bench import calibration as cal
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource
from repro.units import us

__all__ = ["GlobalNamespaceService", "MetadataFootprint"]

#: Service time of one global-namespace metadata operation: distributed
#: lock acquisition + directory update on a shared metadata service
#: (DLM-class lock round trips are millisecond-scale under contention,
#: Meshram et al. [15]). Fitted against Figure 7(d): removing the
#: global namespace yields up to ~44 % at scale.
GLOBAL_NS_SERVICE = us(490)

#: Fabric round trip charged per global-namespace op when the caller is
#: remote from the service (always, in a disaggregated setup).
GLOBAL_NS_RTT = us(12)


class GlobalNamespaceService:
    """A single serialising namespace authority shared by all instances.

    Models what §I-A calls "complicated distributed synchronization
    mechanisms which suffer from scalability limitations": every
    namespace-mutating operation from every process queues here.
    """

    def __init__(self, env: Environment, servers: int = 1):
        self.env = env
        self.resource = Resource(env, capacity=servers)
        self.operations = 0

    def execute(self) -> Generator[Event, Any, None]:
        """One serialised namespace operation (lock + update + unlock)."""
        self.operations += 1
        yield self.env.timeout(GLOBAL_NS_RTT)
        yield from self.resource.serve(GLOBAL_NS_SERVICE)

    def mean_wait(self) -> float:
        if self.resource.total_requests == 0:
            return 0.0
        return self.resource.total_wait_time / self.resource.total_requests


@dataclass
class MetadataFootprint:
    """DRAM + SSD metadata accounting for one runtime instance."""

    inode_count: int = 0
    btree_nodes: int = 0
    blockpool_bytes: int = 0
    log_region_bytes: int = 0
    state_region_bytes: int = 0
    dir_file_bytes: int = 0

    def dram_bytes(self) -> int:
        """In-memory footprint: inodes + B+Tree + block pool index."""
        return (
            self.inode_count * cal.NVMECR_INODE_BYTES
            + self.btree_nodes * cal.NVMECR_BTREE_NODE_BYTES
            + self.blockpool_bytes
        )

    def ssd_bytes(self) -> int:
        """On-SSD metadata footprint: reserved log + state regions plus
        live directory files — the per-runtime number in Table I."""
        return (
            self.log_region_bytes
            + self.state_region_bytes
            + self.dir_file_bytes
        )
