"""Control-plane services and accounting (§III-E).

The control-plane *logic* (inodes, B+Tree, logging) lives inside
:class:`~repro.core.microfs.fs.MicroFS`; this module provides:

* :class:`GlobalNamespaceService` — the ablation stand-in for a shared
  namespace: a serialising metadata service every create/unlink must
  visit, with a fabric round trip. Turning ``private_namespace`` on
  removes these visits entirely — the drilldown's biggest win at scale
  (Figure 7(d)).
* :class:`MetadataFootprint` — the DRAM/SSD metadata accounting behind
  Table I and §IV-G (404 MB inodes + 102 MB B+Tree figures).
* :class:`MetadataStore` — the swappable control-plane metadata
  interface.  :class:`LocalMetadataStore` is the single-authority
  implementation (``control_plane_mode="local"``, the paper's baseline);
  :class:`~repro.consensus.store.ReplicatedMetadataStore` implements the
  same interface over a Raft group (``"raft"``), so the runtime swaps
  modes via :class:`~repro.core.config.RuntimeConfig` alone.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Tuple

from repro.bench import calibration as cal
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource
from repro.units import us

__all__ = [
    "GlobalNamespaceService",
    "MetadataFootprint",
    "MetadataStore",
    "LocalMetadataStore",
    "make_metadata_store",
]

#: Service time of one global-namespace metadata operation: distributed
#: lock acquisition + directory update on a shared metadata service
#: (DLM-class lock round trips are millisecond-scale under contention,
#: Meshram et al. [15]). Fitted against Figure 7(d): removing the
#: global namespace yields up to ~44 % at scale.
GLOBAL_NS_SERVICE = us(490)

#: Fabric round trip charged per global-namespace op when the caller is
#: remote from the service (always, in a disaggregated setup).
GLOBAL_NS_RTT = us(12)


class GlobalNamespaceService:
    """A single serialising namespace authority shared by all instances.

    Models what §I-A calls "complicated distributed synchronization
    mechanisms which suffer from scalability limitations": every
    namespace-mutating operation from every process queues here.
    """

    def __init__(self, env: Environment, servers: int = 1):
        self.env = env
        self.resource = Resource(env, capacity=servers)
        self.operations = 0

    def execute(self) -> Generator[Event, Any, None]:
        """One serialised namespace operation (lock + update + unlock)."""
        self.operations += 1
        yield self.env.timeout(GLOBAL_NS_RTT)
        yield from self.resource.serve(GLOBAL_NS_SERVICE)

    def mean_wait(self) -> float:
        if self.resource.total_requests == 0:
            return 0.0
        return self.resource.total_wait_time / self.resource.total_requests


#: Service time of one *local* metadata-store apply: a DRAM structure
#: update plus the MicroFS op-log append it journals through.
LOCAL_META_APPLY = us(2)


class MetadataStore(abc.ABC):
    """Control-plane metadata operations, independent of replication.

    Mutations are simulation coroutines (``yield from store.set(...)``)
    so the replicated implementation can spend real fabric round trips
    reaching quorum; reads are leader-local and synchronous in both
    modes.  Every mutation is an idempotent upsert/delete keyed by name,
    so a client may safely re-issue one after a timeout.
    """

    #: "local" or "raft" — which RuntimeConfig.control_plane_mode built it.
    mode: str = "local"

    @abc.abstractmethod
    def set(self, key: str, value: Any) -> Generator[Event, Any, Any]:
        """Upsert one metadata entry; returns the stored value."""

    @abc.abstractmethod
    def delete(self, key: str) -> Generator[Event, Any, Any]:
        """Remove one metadata entry; returns the removed value or None."""

    @abc.abstractmethod
    def add_grant(
        self, job: str, grant: Tuple[Any, ...]
    ) -> Generator[Event, Any, Any]:
        """Record a job's namespace grant tuple."""

    @abc.abstractmethod
    def revoke_grant(self, job: str) -> Generator[Event, Any, Any]:
        """Drop a job's namespace grants."""

    @abc.abstractmethod
    def get(self, key: str) -> Any:
        """Read one entry (authoritative replica's view)."""

    @abc.abstractmethod
    def grant_of(self, job: str) -> Optional[Tuple[Any, ...]]:
        """Read a job's grant tuple, if any."""

    @abc.abstractmethod
    def keys(self) -> List[str]:
        """All metadata keys, sorted."""

    @abc.abstractmethod
    def digest(self) -> str:
        """Content hash of the full store (zero-loss verification)."""


class LocalMetadataStore(MetadataStore):
    """Single-authority store: the non-replicated baseline.

    Applies commands straight into a
    :class:`~repro.consensus.statemachine.FullStateMachine` (the same
    machine the Raft members replicate), so local and replicated runs
    produce directly comparable digests.
    """

    mode = "local"

    def __init__(self, env: Environment):
        # Imported here: repro.core must stay importable without the
        # consensus package being touched on the baseline path.
        from repro.consensus.statemachine import FullStateMachine

        self.env = env
        self.machine = FullStateMachine()
        self._next_index = 0

    def _apply(self, command: Tuple[Any, ...]) -> Generator[Event, Any, Any]:
        yield self.env.timeout(LOCAL_META_APPLY)
        self._next_index += 1
        return self.machine.apply(self._next_index, command)

    def set(self, key: str, value: Any) -> Generator[Event, Any, Any]:
        return (yield from self._apply(("meta.set", key, value)))

    def delete(self, key: str) -> Generator[Event, Any, Any]:
        return (yield from self._apply(("meta.del", key)))

    def add_grant(
        self, job: str, grant: Tuple[Any, ...]
    ) -> Generator[Event, Any, Any]:
        return (yield from self._apply(("grant.add", job, tuple(grant))))

    def revoke_grant(self, job: str) -> Generator[Event, Any, Any]:
        return (yield from self._apply(("grant.del", job)))

    def get(self, key: str) -> Any:
        return self.machine.get(key)

    def grant_of(self, job: str) -> Optional[Tuple[Any, ...]]:
        return self.machine.grant_of(job)

    def keys(self) -> List[str]:
        return self.machine.keys()

    def digest(self) -> str:
        return self.machine.digest()

    @property
    def ops_applied(self) -> int:
        return self._next_index


def make_metadata_store(
    env: Environment, mode: str = "local", group: Any = None
) -> MetadataStore:
    """Build the store for ``RuntimeConfig.control_plane_mode``.

    ``mode="raft"`` requires the deployment's
    :class:`~repro.consensus.group.RaftGroup` (built by the
    ``nvmecr-raft`` system variant); ``"local"`` ignores ``group``.
    """
    if mode == "local":
        return LocalMetadataStore(env)
    if mode == "raft":
        if group is None:
            raise ValueError("control_plane_mode='raft' needs a RaftGroup")
        from repro.consensus.store import ReplicatedMetadataStore

        return ReplicatedMetadataStore(env, group)
    raise ValueError(f"unknown control_plane_mode {mode!r}")


@dataclass
class MetadataFootprint:
    """DRAM + SSD metadata accounting for one runtime instance."""

    inode_count: int = 0
    btree_nodes: int = 0
    blockpool_bytes: int = 0
    log_region_bytes: int = 0
    state_region_bytes: int = 0
    dir_file_bytes: int = 0

    def dram_bytes(self) -> int:
        """In-memory footprint: inodes + B+Tree + block pool index."""
        return (
            self.inode_count * cal.NVMECR_INODE_BYTES
            + self.btree_nodes * cal.NVMECR_BTREE_NODE_BYTES
            + self.blockpool_bytes
        )

    def ssd_bytes(self) -> int:
        """On-SSD metadata footprint: reserved log + state regions plus
        live directory files — the per-runtime number in Table I."""
        return (
            self.log_region_bytes
            + self.state_region_bytes
            + self.dir_file_bytes
        )
