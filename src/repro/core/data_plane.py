"""The NVMe-CR data plane (§III-D).

Translates file-level writes into batched NVMf command submissions and
charges the *client-side* software costs: SPDK submission CPU per
command in userspace mode, or syscall-trap + VFS/block-layer costs per
request in the kernel-path ablation (Figure 2 vs Figure 4).

A logical write is split into pipelined batches of at most
``config.max_batch_bytes``; batches belonging to one call are submitted
concurrently (SPDK queue-depth pipelining), so the fabric round trip is
paid per batch, not per command.
"""

from __future__ import annotations

import math
from typing import Any, Generator, List, Optional, Tuple

from repro.bench import calibration as cal
from repro.core.config import RuntimeConfig
from repro.errors import InvalidArgument
from repro.fabric.transport import Transport
from repro.nvme.commands import Payload
from repro.obs.context import tracer_of
from repro.sim.engine import Environment, Event
from repro.sim.trace import Counter

__all__ = ["DataPlane"]


class DataPlane:
    """Per-instance IO submission engine over one namespace."""

    def __init__(
        self,
        env: Environment,
        transport: Transport,
        nsid: int,
        config: RuntimeConfig,
        counters: Optional[Counter] = None,
    ):
        self.env = env
        self.transport = transport
        self.nsid = nsid
        self.config = config
        self.counters = counters if counters is not None else Counter()
        # Span track; the owning MicroFS overwrites this with its
        # instance name so data-plane spans nest under its syscalls.
        self.obs_track = "dataplane"

    def _begin(self, name: str, tr, **attrs):
        """Open a data-plane span: handoff parent wins, else the track's
        innermost open span (the intercepted syscall)."""
        parent = tr.take_handoff()
        if parent is None:
            parent = tr.current(self.obs_track)
        return tr.begin(name, cat="dataplane", track=self.obs_track,
                        parent=parent, **attrs)

    # -- cost model ----------------------------------------------------------------

    def _software_cost(self, n_cmds: int, nbytes: int, syscalls: int = 1) -> float:
        """Client CPU for one logical IO: userspace vs kernel path."""
        if self.config.userspace_direct:
            cpu = n_cmds * cal.SPDK_SUBMIT_COST
            self.counters.add("user_cpu_time", cpu)
            return cpu
        # Kernel path: trap per syscall, VFS/block layer per request,
        # and a page-cache copy of the payload.
        kernel_requests = max(1, math.ceil(nbytes / cal.KERNEL_MAX_BIO_BYTES))
        cpu = (
            syscalls * cal.SYSCALL_TRAP_COST
            + kernel_requests * cal.KERNEL_IO_PATH_COST
            + nbytes / cal.PAGE_CACHE_COPY_BW
        )
        self.counters.add("kernel_time", cpu)
        return cpu

    def _charge(self, n_cmds: int, nbytes: int, syscalls: int = 1) -> Optional[Event]:
        cost = self._software_cost(n_cmds, nbytes, syscalls)
        return self.env.timeout(cost) if cost > 0 else None

    # -- batched IO ---------------------------------------------------------------------

    def write_runs(
        self, runs: List[Tuple[int, Payload]], command_size: Optional[int] = None
    ) -> Generator[Event, Any, int]:
        """Write (ns_offset, payload) runs as one pipelined submission.

        Returns total bytes written. Runs larger than the batch limit are
        split; all batches are in flight together (queue pipelining).
        """
        command_size = command_size or self.config.effective_block_bytes
        total = sum(p.nbytes for _off, p in runs)
        n_cmds = sum(max(1, math.ceil(p.nbytes / command_size)) for _off, p in runs)
        tr = tracer_of(self.env)
        span = None if tr is None else self._begin(
            "dataplane.write", tr=tr, bytes=total, cmds=n_cmds)
        charge = self._charge(n_cmds, total)
        if charge is not None:
            yield charge
        # Run-to-completion (§III-A): one batch outstanding at a time on
        # this instance's queue; commands inside a batch are pipelined.
        for offset, payload in runs:
            for chunk_offset, chunk in self._chunk(offset, payload):
                if tr is not None:
                    tr.handoff(span)
                yield self.transport.write(self.nsid, chunk_offset, chunk, command_size)
        self.counters.add("data_bytes_written", total)
        self.counters.add("data_commands", n_cmds)
        if tr is not None:
            tr.end(span)
        return total

    def read_runs(
        self, runs: List[Tuple[int, int]], command_size: Optional[int] = None
    ) -> Generator[Event, Any, List]:
        """Read (ns_offset, nbytes) runs; returns the stored extents."""
        command_size = command_size or self.config.effective_block_bytes
        total = sum(n for _off, n in runs)
        n_cmds = sum(max(1, math.ceil(n / command_size)) for _off, n in runs)
        tr = tracer_of(self.env)
        span = None if tr is None else self._begin(
            "dataplane.read", tr=tr, bytes=total, cmds=n_cmds)
        charge = self._charge(n_cmds, total)
        if charge is not None:
            yield charge
        extents = []
        for offset, nbytes in runs:
            at = offset
            remaining = nbytes
            while remaining > 0:
                size = min(remaining, self.config.max_batch_bytes)
                if tr is not None:
                    tr.handoff(span)
                result = yield self.transport.read(self.nsid, at, size, command_size)
                extents.extend(result.extra["extents"])
                at += size
                remaining -= size
        self.counters.add("data_bytes_read", total)
        if tr is not None:
            tr.end(span)
        return extents

    def write_log_page(
        self, region_offset: int, page: bytes, wire_bytes: int
    ) -> Generator[Event, Any, None]:
        """Persist one operation-log page and flush it (WAL barrier).

        ``wire_bytes`` may exceed the page for physical-logging mode —
        the extra traffic the provenance design eliminates.
        """
        tr = tracer_of(self.env)
        span = None if tr is None else self._begin(
            "dataplane.log_page", tr=tr, bytes=wire_bytes)
        charge = self._charge(1, wire_bytes)
        if charge is not None:
            yield charge
        payload = Payload.of_bytes(page.ljust(wire_bytes, b"\x00"))
        if tr is not None:
            tr.handoff(span)
        yield self.transport.write(self.nsid, region_offset, payload, max(4096, wire_bytes))
        if tr is not None:
            tr.handoff(span)
        yield self.transport.flush(self.nsid)
        self.counters.add("log_bytes_written", wire_bytes)
        self.counters.add("log_flushes", 1)
        if tr is not None:
            tr.end(span)

    def write_state(self, region_offset: int, data: bytes) -> Generator[Event, Any, None]:
        """Persist an internal-state checkpoint blob (page-padded)."""
        padded = data.ljust(-(-len(data) // 4096) * 4096, b"\x00")
        n_cmds = max(1, len(padded) // self.config.effective_block_bytes)
        tr = tracer_of(self.env)
        span = None if tr is None else self._begin(
            "dataplane.state", tr=tr, bytes=len(padded))
        charge = self._charge(n_cmds, len(padded))
        if charge is not None:
            yield charge
        if tr is not None:
            tr.handoff(span)
        yield self.transport.write(
            self.nsid, region_offset, Payload.of_bytes(padded),
            self.config.effective_block_bytes,
        )
        if tr is not None:
            tr.handoff(span)
        yield self.transport.flush(self.nsid)
        self.counters.add("state_bytes_written", len(padded))
        if tr is not None:
            tr.end(span)

    def read_bytes(self, region_offset: int, nbytes: int) -> Generator[Event, Any, bytes]:
        """Read real bytes back (recovery path), zero-filling gaps."""
        tr = tracer_of(self.env)
        span = None if tr is None else self._begin(
            "dataplane.read", tr=tr, bytes=nbytes, recovery=True)
        if tr is not None:
            tr.handoff(span)
        result = yield self.transport.read(
            self.nsid, region_offset, nbytes, self.config.effective_block_bytes
        )
        if tr is not None:
            tr.end(span)
        out = bytearray(nbytes)
        for extent in result.extra["extents"]:
            if extent.payload.is_synthetic:
                raise InvalidArgument("recovery read hit synthetic (bulk) data")
            at = extent.start - region_offset
            out[at : at + extent.length] = extent.payload.data
        return bytes(out)

    # -- helpers ---------------------------------------------------------------------------

    def _chunk(self, offset: int, payload: Payload):
        """Split a payload into batch-sized (offset, payload) pieces."""
        limit = self.config.max_batch_bytes
        if payload.nbytes <= limit:
            yield offset, payload
            return
        at = 0
        while at < payload.nbytes:
            size = min(limit, payload.nbytes - at)
            yield offset + at, payload.slice(at, size)
            at += size
