"""The NVMe-CR data plane (§III-D): the unified pipeline's engine room.

Every entry point builds one typed :class:`~repro.io.envelope.IORequest`
and feeds it to :meth:`DataPlane.submit`, which runs the envelope
through the same stages regardless of caller:

1. **software charge** — client CPU per the cost model (SPDK submission
   in userspace mode, trap + VFS/block-layer in the kernel ablation);
2. **admission** — an optional bounded in-flight byte window
   (``config.inflight_window_bytes``) applies backpressure before the
   transport sees the request;
3. **execution** — chunked submission over the transport, or a single
   doorbell-batched round trip when the envelope is batchable and
   ``config.batching`` is on;
4. **retry** — transport (fabric) failures are retried within the
   envelope's ``retry_budget`` with exponential backoff, bounded by its
   ``deadline``.

The result is an :class:`~repro.io.envelope.IOCompletion` carrying the
per-stage latency breakdown; per-QoS-class latencies accumulate in
``class_latencies`` for the qos experiment.

With the defaults — batching off, no admission window, zero retry
budget — ``submit`` reproduces the pre-envelope pipeline event-for-event
(the pinned-seed obs baselines hold bit-identically).
"""

from __future__ import annotations

import math
from collections import defaultdict, deque
from typing import Any, Deque, Dict, Generator, List, Optional, Tuple

from repro.bench import calibration as cal
from repro.core.config import RuntimeConfig
from repro.errors import DeadlineExceeded, FabricError, InvalidArgument
from repro.fabric.transport import Transport
from repro.io.envelope import IOCompletion, IORequest
from repro.io.qos import QoSClass
from repro.nvme.commands import Payload
from repro.obs.context import tracer_of
from repro.obs.metrics import Counter
from repro.sim.engine import Environment, Event

__all__ = ["DataPlane"]


class DataPlane:
    """Per-instance IO submission engine over one namespace."""

    #: Window waiters wake in arrival order (deque drained FIFO).
    _san_tiebreak = "fifo"

    def __init__(
        self,
        env: Environment,
        transport: Transport,
        nsid: int,
        config: RuntimeConfig,
        counters: Optional[Counter] = None,
    ):
        self.env = env
        self.transport = transport
        self.nsid = nsid
        self.config = config
        self.counters = counters if counters is not None else Counter()
        # Span track; the owning MicroFS overwrites this with its
        # instance name so data-plane spans nest under its syscalls.
        self.obs_track = "dataplane"
        #: Completed-request latencies by QoS class (exact, not bucketed)
        #: — the qos experiment's percentile source.
        self.class_latencies: Dict[QoSClass, List[float]] = defaultdict(list)
        #: This plane's default storage tier (the NVMe fleet unless the
        #: owning system says otherwise); envelopes may override it.
        self.tier = "nvme-ssd"
        #: Per-tier accounting: completed-request latencies and bytes,
        #: keyed by tier name. Pure bookkeeping — never adds events.
        self.tier_latencies: Dict[str, List[float]] = defaultdict(list)
        self.tier_bytes: Dict[str, int] = defaultdict(int)
        self._inflight_bytes = 0
        self._window_waiters: Deque[Event] = deque()

    def _begin(self, name: str, tr, **attrs):
        """Open a data-plane span: handoff parent wins, else the track's
        innermost open span (the intercepted syscall)."""
        parent = tr.take_handoff()
        if parent is None:
            parent = tr.current(self.obs_track)
        return tr.begin(name, cat="dataplane", track=self.obs_track,
                        parent=parent, **attrs)

    # -- cost model ----------------------------------------------------------------

    def _software_cost(self, n_cmds: int, nbytes: int, syscalls: int = 1) -> float:
        """Client CPU for one logical IO: userspace vs kernel path."""
        if self.config.userspace_direct:
            cpu = n_cmds * cal.SPDK_SUBMIT_COST
            self.counters.add("user_cpu_time", cpu)
            return cpu
        # Kernel path: trap per syscall, VFS/block layer per request,
        # and a page-cache copy of the payload.
        kernel_requests = max(1, math.ceil(nbytes / cal.KERNEL_MAX_BIO_BYTES))
        cpu = (
            syscalls * cal.SYSCALL_TRAP_COST
            + kernel_requests * cal.KERNEL_IO_PATH_COST
            + nbytes / cal.PAGE_CACHE_COPY_BW
        )
        self.counters.add("kernel_time", cpu)
        return cpu

    # -- admission window -----------------------------------------------------------

    def _acquire_window(self, nbytes: int) -> Generator[Event, Any, None]:
        """Block while the in-flight byte window is full (backpressure).

        An oversized request (larger than the whole window) is admitted
        alone once the window drains — the window bounds concurrency, it
        never deadlocks a request that cannot fit.
        """
        window = self.config.inflight_window_bytes
        if window is None:
            return
        while self._inflight_bytes > 0 and self._inflight_bytes + nbytes > window:
            ev = Event(self.env)
            self._window_waiters.append(ev)
            yield ev
        self._inflight_bytes += nbytes

    def _release_window(self, nbytes: int) -> None:
        if self.config.inflight_window_bytes is None:
            return
        self._inflight_bytes -= nbytes
        waiters, self._window_waiters = self._window_waiters, deque()
        for ev in waiters:
            if not ev.triggered:
                ev.succeed()

    # -- the unified pipeline ---------------------------------------------------------

    def submit(self, req: IORequest) -> Generator[Event, Any, IOCompletion]:
        """Run one envelope through charge → admit → execute → retry."""
        started = self.env.now
        monitor = self.env.monitor
        if monitor is not None:
            monitor.note_mutation(self, "submit")
            monitor.note_io_begin(req)
        tr = tracer_of(self.env)
        span = None if tr is None else self._begin(
            req.span_name, tr=tr, **req.span_attrs)
        software_s = 0.0
        if req.charge_software:
            software_s = self._software_cost(
                req.derived_cmds(), req.total_bytes, req.syscalls)
            if software_s > 0:
                yield self.env.timeout(software_s)
        admit_at = self.env.now
        yield from self._acquire_window(req.total_bytes)
        admission_s = self.env.now - admit_at
        retries_used = 0
        try:
            exec_at = self.env.now
            for attempt in range(req.retry_budget + 1):
                if attempt:
                    retries_used = attempt
                    self.counters.add("io_retries")
                    backoff = req.retry_backoff * (2 ** (attempt - 1))
                    if backoff > 0:
                        yield self.env.timeout(backoff)
                    try:
                        self.transport.reconnect()
                    except FabricError:
                        pass  # still down; _execute below re-raises
                if req.deadline is not None and self.env.now > req.deadline:
                    raise DeadlineExceeded(
                        f"{req.span_name}: deadline {req.deadline:.6f}s passed "
                        f"at {self.env.now:.6f}s after {retries_used} retries"
                    )
                try:
                    value, flush_s = yield from self._execute(req, tr, span)
                    break
                except FabricError:
                    if attempt >= req.retry_budget:
                        raise
                    if tr is not None:
                        # A failed submission may have left its handoff
                        # unclaimed; drop it before the retry opens spans.
                        tr.take_handoff()
            transfer_s = self.env.now - exec_at - flush_s
        finally:
            self._release_window(req.total_bytes)
            if monitor is not None:
                # The envelope left the pipeline (completed *or* failed);
                # only requests still parked here at run end are leaks.
                monitor.note_io_end(req)
        for name, delta in req.counters:
            self.counters.add(name, delta)
        if tr is not None:
            tr.end(span)
        latency = self.env.now - started
        self.class_latencies[req.qos].append(latency)
        tier = req.tier if req.tier is not None else self.tier
        self.tier_latencies[tier].append(latency)
        self.tier_bytes[tier] += req.total_bytes
        ctx = self.env.obs
        if ctx is not None:
            m = ctx.metrics
            m.counter(f"io.{req.qos.value}.requests").add(1)
            m.counter(f"io.{req.qos.value}.bytes", unit="B").add(req.total_bytes)
            m.histogram(f"io.{req.qos.value}.latency_s").observe(latency)
            if retries_used:
                m.counter(f"io.{req.qos.value}.retries").add(retries_used)
            if req.tier is not None:
                # Explicitly tier-tagged envelopes get obs counters too;
                # untagged traffic stays off the metrics registry so the
                # pinned single-tier obs baselines are untouched.
                m.counter(f"io.tier.{tier}.requests").add(1)
                m.counter(f"io.tier.{tier}.bytes", unit="B").add(req.total_bytes)
        return IOCompletion(
            status="ok",
            qos=req.qos,
            nbytes=req.total_bytes,
            n_cmds=req.derived_cmds(),
            latency_s=latency,
            software_s=software_s,
            admission_s=admission_s,
            transfer_s=transfer_s,
            flush_s=flush_s,
            retries_used=retries_used,
            value=value,
        )

    def _execute(self, req: IORequest, tr, span):
        """One attempt: chunked (or doorbell-batched) transport I/O."""
        value: Any
        if req.is_write:
            if req.batchable and self.config.batching:
                chunks = list(req.chunks())
                if tr is not None:
                    tr.handoff(span)
                yield self.transport.write_batch(
                    self.nsid, chunks, req.command_size, qos=req.qos)
            else:
                # Run-to-completion (§III-A): one batch outstanding at a
                # time on this instance's queue.
                for chunk_offset, chunk in req.chunks():
                    if tr is not None:
                        tr.handoff(span)
                    yield self.transport.write(
                        self.nsid, chunk_offset, chunk, req.command_size,
                        qos=req.qos)
            value = req.total_bytes
        else:
            extents: List = []
            for chunk_offset, nbytes in req.chunks():
                if tr is not None:
                    tr.handoff(span)
                result = yield self.transport.read(
                    self.nsid, chunk_offset, nbytes, req.command_size,
                    qos=req.qos)
                extents.extend(result.extra["extents"])
            value = extents
        flush_s = 0.0
        if req.flush_after:
            flush_at = self.env.now
            if tr is not None:
                tr.handoff(span)
            yield self.transport.flush(self.nsid, qos=req.qos)
            flush_s = self.env.now - flush_at
        return value, flush_s

    # -- entry points (each builds one envelope) ---------------------------------------

    def write_runs(
        self,
        runs: List[Tuple[int, Payload]],
        command_size: Optional[int] = None,
        qos: QoSClass = QoSClass.CKPT_DATA,
        **envelope: Any,
    ) -> Generator[Event, Any, int]:
        """Write (ns_offset, payload) runs as one pipelined submission.

        Returns total bytes written. Runs larger than the batch limit are
        split; all batches are in flight together (queue pipelining).
        """
        req = IORequest.write_runs(
            self.nsid, runs,
            command_size=command_size or self.config.effective_block_bytes,
            chunk_bytes=self.config.max_batch_bytes, qos=qos, **envelope,
        )
        completion = yield from self.submit(req)
        return completion.value

    def read_runs(
        self,
        runs: List[Tuple[int, int]],
        command_size: Optional[int] = None,
        qos: QoSClass = QoSClass.RECOVERY,
        **envelope: Any,
    ) -> Generator[Event, Any, List]:
        """Read (ns_offset, nbytes) runs; returns the stored extents."""
        req = IORequest.read_runs(
            self.nsid, runs,
            command_size=command_size or self.config.effective_block_bytes,
            chunk_bytes=self.config.max_batch_bytes, qos=qos, **envelope,
        )
        completion = yield from self.submit(req)
        return completion.value

    def write_log_page(
        self,
        region_offset: int,
        page: bytes,
        wire_bytes: int,
        qos: QoSClass = QoSClass.JOURNAL,
        **envelope: Any,
    ) -> Generator[Event, Any, None]:
        """Persist one operation-log page and flush it (WAL barrier).

        ``wire_bytes`` may exceed the page for physical-logging mode —
        the extra traffic the provenance design eliminates.
        """
        req = IORequest.log_page(
            self.nsid, region_offset, page, wire_bytes, qos=qos, **envelope,
        )
        yield from self.submit(req)

    def write_state(
        self,
        region_offset: int,
        data: bytes,
        qos: QoSClass = QoSClass.CKPT_DATA,
        **envelope: Any,
    ) -> Generator[Event, Any, None]:
        """Persist an internal-state checkpoint blob (page-padded)."""
        req = IORequest.state_blob(
            self.nsid, region_offset, data,
            command_size=self.config.effective_block_bytes, qos=qos, **envelope,
        )
        yield from self.submit(req)

    def read_bytes(
        self,
        region_offset: int,
        nbytes: int,
        qos: QoSClass = QoSClass.RECOVERY,
        **envelope: Any,
    ) -> Generator[Event, Any, bytes]:
        """Read real bytes back (recovery path), zero-filling gaps."""
        req = IORequest.recovery_read(
            self.nsid, region_offset, nbytes,
            command_size=self.config.effective_block_bytes, qos=qos, **envelope,
        )
        completion = yield from self.submit(req)
        out = bytearray(nbytes)
        for extent in completion.value:
            if extent.payload.is_synthetic:
                raise InvalidArgument("recovery read hit synthetic (bulk) data")
            at = extent.start - region_offset
            out[at : at + extent.length] = extent.payload.data
        return bytes(out)
