"""POSIX symbol interception (§III-C, "Application Obliviousness").

The real system uses GNU ld symbol interposition to redirect libc IO
calls into the runtime; here :class:`PosixShim` plays that role for
simulated applications: it exposes the libc *names and conventions*
(integer fds, mode strings, ``MPI_Init``/``MPI_Finalize`` wrappers) so
application models run unmodified against either NVMe-CR or a baseline
filesystem client that implements the same duck-typed surface.

All methods are simulation sub-generators (``yield from shim.open(...)``),
mirroring that every intercepted call costs time.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Union

from repro.core.microfs.fs import FileHandle
from repro.core.runtime import NVMeCRRuntime
from repro.errors import BadFileDescriptor, InvalidArgument
from repro.io.qos import QoSClass
from repro.nvme.commands import Payload
from repro.obs.tracer import NULL_CONTEXT
from repro.sim.engine import Event

__all__ = ["PosixShim"]

_MODES = {
    "r": dict(create=False, truncate=False),
    "w": dict(create=True, truncate=True),
    "x": dict(create=True, excl=True),
    "a": dict(create=True, truncate=False),
}


class PosixShim:
    """The intercepted libc surface for one process."""

    def __init__(self, runtime: NVMeCRRuntime):
        self.runtime = runtime
        self._fds: Dict[int, FileHandle] = {}

    @property
    def env(self):
        """The simulation clock behind this process's runtime."""
        return self.runtime.env

    # -- MPI wrappers (runtime lifecycle) ---------------------------------------------

    def MPI_Init(self) -> Generator[Event, Any, None]:  # noqa: N802 - libc name
        yield from self.runtime.init()

    def MPI_Finalize(self) -> Generator[Event, Any, None]:  # noqa: N802
        yield from self.runtime.finalize()

    # -- intercepted IO calls --------------------------------------------------------------

    @property
    def _fs(self):
        return self.runtime.microfs

    def _obs(self, name: str, **attrs):
        """(ObsContext, span context-manager) for one intercepted call.

        The disabled path returns shared singletons — no allocation per
        syscall when observability is off.
        """
        ctx = self.env.obs
        if ctx is None:
            return None, NULL_CONTEXT
        ctx.metrics.counter("fs.syscalls").add(1)
        tr = ctx.tracer
        if not tr.enabled:
            return ctx, NULL_CONTEXT
        return ctx, tr.span(name, cat="fs", track=self._fs.instance_name, **attrs)

    def open(self, path: str, mode: str = "r") -> Generator[Event, Any, int]:
        """``open(2)``-flavoured; returns an integer fd."""
        flags = _MODES.get(mode)
        if flags is None:
            raise InvalidArgument(f"unsupported open mode {mode!r}")
        ctx, cm = self._obs("fs.open", path=path, mode=mode)
        t0 = self.env.now
        with cm:
            handle = yield from self._fs.open(path, **flags)
        if ctx is not None:
            ctx.metrics.histogram("fs.open_latency_s").observe(self.env.now - t0)
        if mode == "a":
            handle.pos = self._fs.inodes[handle.ino].size
        self._fds[handle.fd] = handle
        return handle.fd

    def creat(self, path: str, mode: int = 0o644) -> Generator[Event, Any, int]:
        """``creat(2)``: create-or-truncate; returns an integer fd."""
        ctx, cm = self._obs("fs.creat", path=path)
        t0 = self.env.now
        with cm:
            handle = yield from self._fs.open(path, create=True, truncate=True, mode=mode)
        if ctx is not None:
            ctx.metrics.histogram("fs.open_latency_s").observe(self.env.now - t0)
        self._fds[handle.fd] = handle
        return handle.fd

    def _handle(self, fd: int) -> FileHandle:
        handle = self._fds.get(fd)
        if handle is None:
            raise BadFileDescriptor(f"fd {fd}")
        return handle

    def write(
        self, fd: int, data: Union[bytes, int, Payload],
        qos: QoSClass = QoSClass.CKPT_DATA,
    ) -> Generator[Event, Any, int]:
        """``write(2)`` at the fd position; int data means synthetic bulk bytes."""
        ctx, cm = self._obs("fs.write")
        t0 = self.env.now
        with cm:
            written = yield from self._fs.write(self._handle(fd), data, qos=qos)
        if ctx is not None:
            ctx.metrics.histogram("fs.write_latency_s").observe(self.env.now - t0)
        return written

    def pwrite(
        self, fd: int, data, offset: int,
        qos: QoSClass = QoSClass.CKPT_DATA,
    ) -> Generator[Event, Any, int]:
        """``pwrite(2)``: positional write, fd position unchanged."""
        ctx, cm = self._obs("fs.pwrite")
        t0 = self.env.now
        with cm:
            written = yield from self._fs.pwrite(self._handle(fd), data, offset, qos=qos)
        if ctx is not None:
            ctx.metrics.histogram("fs.write_latency_s").observe(self.env.now - t0)
        return written

    def read(
        self, fd: int, nbytes: int,
        qos: QoSClass = QoSClass.RECOVERY,
    ) -> Generator[Event, Any, List[Payload]]:
        """``read(2)`` at the fd position; returns stored payload pieces."""
        ctx, cm = self._obs("fs.read")
        t0 = self.env.now
        with cm:
            pieces = yield from self._fs.read(self._handle(fd), nbytes, qos=qos)
        if ctx is not None:
            ctx.metrics.histogram("fs.read_latency_s").observe(self.env.now - t0)
        return pieces

    def pread(
        self, fd: int, nbytes: int, offset: int,
        qos: QoSClass = QoSClass.RECOVERY,
    ) -> Generator[Event, Any, List[Payload]]:
        """``pread(2)``: positional read, fd position unchanged."""
        ctx, cm = self._obs("fs.pread")
        t0 = self.env.now
        with cm:
            pieces = yield from self._fs.pread(self._handle(fd), nbytes, offset, qos=qos)
        if ctx is not None:
            ctx.metrics.histogram("fs.read_latency_s").observe(self.env.now - t0)
        return pieces

    def lseek(self, fd: int, offset: int) -> int:
        """``lseek(2)`` (SEEK_SET only): move the fd position."""
        handle = self._handle(fd)
        if offset < 0:
            raise InvalidArgument(f"negative seek offset {offset}")
        handle.pos = offset
        return offset

    def fsync(self, fd: int) -> Generator[Event, Any, None]:
        """``fsync(2)``: device flush (data is already unbuffered)."""
        _ctx, cm = self._obs("fs.fsync")
        with cm:
            yield from self._fs.fsync(self._handle(fd))

    def close(self, fd: int) -> Generator[Event, Any, None]:
        """``close(2)``: release the descriptor."""
        handle = self._handle(fd)
        _ctx, cm = self._obs("fs.close")
        with cm:
            yield from self._fs.close(handle)
        del self._fds[fd]

    def mkdir(self, path: str, mode: int = 0o755) -> Generator[Event, Any, None]:
        """``mkdir(2)`` in the private namespace."""
        _ctx, cm = self._obs("fs.mkdir", path=path)
        with cm:
            yield from self._fs.mkdir(path, mode)

    def unlink(self, path: str) -> Generator[Event, Any, None]:
        """``unlink(2)``: remove a file or empty directory."""
        _ctx, cm = self._obs("fs.unlink", path=path)
        with cm:
            yield from self._fs.unlink(path)

    def rename(self, old: str, new: str) -> Generator[Event, Any, None]:
        """``rename(2)`` within the private namespace (journaled)."""
        _ctx, cm = self._obs("fs.rename", old=old, new=new)
        with cm:
            yield from self._fs.rename(old, new)

    def truncate(self, path: str, size: int) -> Generator[Event, Any, None]:
        """``truncate(2)``: shrink a file, freeing tail hugeblocks."""
        _ctx, cm = self._obs("fs.truncate", path=path)
        with cm:
            yield from self._fs.truncate(path, size)

    def stat(self, path: str):
        """``stat(2)``: the path's inode."""
        return self._fs.stat(path)

    def listdir(self, path: str) -> List[str]:
        """``readdir(3)``: sorted entry names."""
        return self._fs.readdir(path)

    @property
    def open_fds(self) -> int:
        """Number of descriptors this process holds open."""
        return len(self._fds)
