"""The microfs abstraction (§III-A): a coordination-free, per-process
user-level filesystem.

Components:

* :mod:`~repro.core.microfs.btree`     — DRAM-resident B+Tree indexing
  the private namespace (path -> inode number),
* :mod:`~repro.core.microfs.blockpool` — circular O(1) hugeblock pool,
* :mod:`~repro.core.microfs.inode`     — inodes and directory files,
* :mod:`~repro.core.microfs.oplog`     — write-ahead operation log with
  metadata provenance and log record coalescing,
* :mod:`~repro.core.microfs.fs`        — the POSIX-shaped filesystem
  instance tying them together over a transport,
* :mod:`~repro.core.microfs.recovery`  — internal-state checkpoints and
  log replay.
"""

from repro.core.microfs.btree import BPlusTree
from repro.core.microfs.blockpool import BlockPool
from repro.core.microfs.fs import FileHandle, MicroFS
from repro.core.microfs.inode import DirEntry, FileType, Inode
from repro.core.microfs.oplog import LogOp, LogRecord, OperationLog

__all__ = [
    "BPlusTree",
    "BlockPool",
    "DirEntry",
    "FileHandle",
    "FileType",
    "Inode",
    "LogOp",
    "LogRecord",
    "MicroFS",
    "OperationLog",
]
