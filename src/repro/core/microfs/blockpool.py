"""Circular hugeblock pool: O(1) allocation over a partition region.

§III-E, "Hugeblocks": "We use a circular block pool for O(1) hugeblock
allocation. The use of hugeblocks significantly lowers the amount of
information that must be kept to track file blocks."

The pool covers the data region of a rank's partition, divided into
fixed-size blocks. Allocation pops from the head of a circular free
ring; free pushes at the tail — both O(1). ``footprint_bytes`` reports
the pool's DRAM cost (one 4-byte index per block), which is the 8x
reduction the paper credits to 32 KiB blocks vs 4 KiB.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Set

from repro.errors import InvalidArgument, NoSpace

__all__ = ["BlockPool"]


class BlockPool:  # reproflow: ignore[FLOW103] (writes serialized by MicroFS op order)
    """Fixed-size block allocator over ``[0, capacity_blocks)``."""

    def __init__(self, region_bytes: int, block_bytes: int):
        if block_bytes <= 0:
            raise InvalidArgument(f"block size must be positive, got {block_bytes}")
        if region_bytes < block_bytes:
            raise InvalidArgument(
                f"region of {region_bytes} bytes holds no {block_bytes}-byte block"
            )
        self.block_bytes = block_bytes
        self.capacity_blocks = region_bytes // block_bytes
        self._free: Deque[int] = deque(range(self.capacity_blocks))
        self._allocated: Set[int] = set()

    # -- allocation ---------------------------------------------------------------

    def alloc(self) -> int:
        """Pop one free block index; O(1)."""
        if not self._free:
            raise NoSpace(
                f"block pool exhausted ({self.capacity_blocks} blocks of "
                f"{self.block_bytes} bytes)"
            )
        block = self._free.popleft()
        self._allocated.add(block)
        return block

    def alloc_many(self, count: int) -> List[int]:
        """Pop ``count`` blocks; all-or-nothing."""
        if count < 0:
            raise InvalidArgument(f"negative block count: {count}")
        if count > len(self._free):
            raise NoSpace(
                f"need {count} blocks, only {len(self._free)} free of "
                f"{self.capacity_blocks}"
            )
        return [self.alloc() for _ in range(count)]

    def free(self, block: int) -> None:
        """Return a block to the tail of the ring; O(1)."""
        if block not in self._allocated:
            raise InvalidArgument(f"double free or foreign block {block}")
        self._allocated.remove(block)
        self._free.append(block)

    def free_many(self, blocks: List[int]) -> None:
        for block in blocks:
            self.free(block)

    # -- accounting ----------------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        return len(self._allocated)

    def offset_of(self, block: int) -> int:
        """Byte offset of a block within the data region."""
        if not 0 <= block < self.capacity_blocks:
            raise InvalidArgument(f"block {block} outside pool")
        return block * self.block_bytes

    def footprint_bytes(self) -> int:
        """DRAM cost of tracking the pool: 4 bytes per block index."""
        return 4 * self.capacity_blocks

    # -- persistence (for internal-state checkpoints) --------------------------------

    def snapshot(self) -> dict:
        return {
            "block_bytes": self.block_bytes,
            "capacity_blocks": self.capacity_blocks,
            "free": list(self._free),
            "allocated": sorted(self._allocated),
        }

    @classmethod
    def restore(cls, snap: dict) -> "BlockPool":
        pool = cls.__new__(cls)
        pool.block_bytes = snap["block_bytes"]
        pool.capacity_blocks = snap["capacity_blocks"]
        pool._free = deque(snap["free"])
        pool._allocated = set(snap["allocated"])
        return pool
