"""DRAM-resident B+Tree indexing the private namespace.

§III-E: "The directory hierarchy is constructed using a set of directory
files indexed by a DRAM resident B+Tree. The B+Tree contains mappings of
directory and file names to their root inode."

A real order-``m`` B+Tree: sorted keys in leaves with sibling links,
routing keys in internal nodes, split on overflow, borrow/merge on
underflow. Node count is exposed because Table I's DRAM-footprint
accounting charges ``nodes x NVMECR_BTREE_NODE_BYTES``.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

__all__ = ["BPlusTree"]


class _Node:  # reproflow: ignore[FLOW103] (writes serialized by MicroFS op order)
    __slots__ = ("leaf", "keys", "children", "values", "next")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        self.keys: List[Any] = []
        self.children: List["_Node"] = []  # internal only
        self.values: List[Any] = []  # leaf only
        self.next: Optional["_Node"] = None  # leaf sibling link


class BPlusTree:  # reproflow: ignore[FLOW103] (writes serialized by MicroFS op order)
    """Map with ordered iteration, built for path -> ino lookups."""

    def __init__(self, order: int = 64):
        if order < 4:
            raise ValueError(f"B+Tree order must be >= 4, got {order}")
        self.order = order  # max children of an internal node
        self._max_keys = order - 1
        self._min_keys = order // 2 - 1 if order % 2 == 0 else order // 2
        # Leaf capacity mirrors internal key capacity; min fill is half.
        self._leaf_max = order - 1
        self._leaf_min = (order - 1) // 2
        self._root: _Node = _Node(leaf=True)
        self._size = 0
        self._nodes = 1

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def node_count(self) -> int:
        return self._nodes

    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        while not node.leaf:
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def get(self, key: Any, default: Any = None) -> Any:
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All (key, value) pairs in key order via the leaf chain."""
        node = self._root
        while not node.leaf:
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next

    def keys_with_prefix(self, prefix: str) -> Iterator[Tuple[str, Any]]:
        """Ordered scan of keys starting with ``prefix`` (readdir support)."""
        leaf = self._find_leaf(prefix)
        index = bisect.bisect_left(leaf.keys, prefix)
        node: Optional[_Node] = leaf
        while node is not None:
            while index < len(node.keys):
                key = node.keys[index]
                if not key.startswith(prefix):
                    return
                yield key, node.values[index]
                index += 1
            node = node.next
            index = 0

    def height(self) -> int:
        h, node = 1, self._root
        while not node.leaf:
            h += 1
            node = node.children[0]
        return h

    # -- insert --------------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Insert or overwrite."""
        split = self._insert(self._root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Node(leaf=False)
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self._nodes += 1

    def _insert(self, node: _Node, key: Any, value: Any) -> Optional[Tuple[Any, _Node]]:
        if node.leaf:
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
                return None
            node.keys.insert(index, key)
            node.values.insert(index, value)
            self._size += 1
            if len(node.keys) > self._leaf_max:
                return self._split_leaf(node)
            return None
        index = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[index], key, value)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(index, sep)
        node.children.insert(index + 1, right)
        if len(node.keys) > self._max_keys:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node) -> Tuple[Any, _Node]:
        mid = len(node.keys) // 2
        right = _Node(leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next = node.next
        node.next = right
        self._nodes += 1
        return right.keys[0], right

    def _split_internal(self, node: _Node) -> Tuple[Any, _Node]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        self._nodes += 1
        return sep, right

    # -- delete --------------------------------------------------------------------

    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns False if absent."""
        removed = self._delete(self._root, key)
        if not self._root.leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._nodes -= 1
        return removed

    def _delete(self, node: _Node, key: Any) -> bool:
        if node.leaf:
            index = bisect.bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                return False
            node.keys.pop(index)
            node.values.pop(index)
            self._size -= 1
            return True
        index = bisect.bisect_right(node.keys, key)
        child = node.children[index]
        removed = self._delete(child, key)
        if removed:
            self._rebalance(node, index)
        return removed

    def _min_fill(self, node: _Node) -> int:
        return self._leaf_min if node.leaf else self._min_keys

    def _rebalance(self, parent: _Node, index: int) -> None:
        child = parent.children[index]
        if len(child.keys) >= self._min_fill(child):
            return
        left = parent.children[index - 1] if index > 0 else None
        right = parent.children[index + 1] if index + 1 < len(parent.children) else None
        # Borrow from a richer sibling.
        if left is not None and len(left.keys) > self._min_fill(left):
            self._borrow_from_left(parent, index, left, child)
            return
        if right is not None and len(right.keys) > self._min_fill(right):
            self._borrow_from_right(parent, index, child, right)
            return
        # Merge with a sibling.
        if left is not None:
            self._merge(parent, index - 1, left, child)
        elif right is not None:
            self._merge(parent, index, child, right)

    def _borrow_from_left(self, parent: _Node, index: int, left: _Node, child: _Node) -> None:
        if child.leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[index - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(self, parent: _Node, index: int, child: _Node, right: _Node) -> None:
        if child.leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[index] = right.keys[0]
        else:
            child.keys.append(parent.keys[index])
            parent.keys[index] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(self, parent: _Node, left_index: int, left: _Node, right: _Node) -> None:
        if left.leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next = right.next
        else:
            left.keys.append(parent.keys[left_index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_index)
        parent.children.pop(left_index + 1)
        self._nodes -= 1

    # -- validation (used by property tests) -----------------------------------------

    def check_invariants(self) -> None:
        """Assert structural invariants; raises AssertionError on violation."""
        size = sum(1 for _ in self.items())
        assert size == self._size, f"size mismatch: {size} != {self._size}"
        keys = [k for k, _v in self.items()]
        assert keys == sorted(keys), "leaf chain out of order"
        assert len(set(keys)) == len(keys), "duplicate keys"
        self._check_node(self._root, is_root=True)

    def _check_node(self, node: _Node, is_root: bool) -> int:
        if node.leaf:
            if not is_root:
                assert len(node.keys) >= self._leaf_min, "leaf underfull"
            assert len(node.keys) <= self._leaf_max, "leaf overfull"
            assert len(node.keys) == len(node.values)
            return 1
        assert len(node.children) == len(node.keys) + 1
        if not is_root:
            assert len(node.keys) >= self._min_keys, "internal underfull"
        assert len(node.keys) <= self._max_keys, "internal overfull"
        depths = {self._check_node(c, is_root=False) for c in node.children}
        assert len(depths) == 1, "unbalanced depth"
        return depths.pop() + 1
