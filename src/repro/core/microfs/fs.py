"""MicroFS: one process's private, coordination-free filesystem (§III).

A MicroFS instance owns one partition of a remote SSD namespace and
implements the POSIX-shaped operations NVMe-CR intercepts. Everything
namespace-related is private — no other instance can observe or contend
with this one (microfs principle 3); the only shared object is the SSD
itself, which the partition arithmetic keeps conflict-free (principle 2).

Partition layout (offsets relative to the partition base)::

    [0, 4K)                superblock: internal-state commit record
    [4K, 4K+log)           operation-log region
    [.., +state)           internal-state checkpoint slots A/B
    [.., end)              data region, managed by the hugeblock pool

Durability protocol per §III-E: the operation log is flushed *before*
the data of the triggering operation is written ("The log is flushed
before a subsequent operation is processed"), writes go straight to the
device (no buffering), and the background checkpointer bounds the log.
"""

from __future__ import annotations

import itertools
import pickle
import struct
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple, Union

from repro.bench import calibration as cal
from repro.core.config import RuntimeConfig
from repro.core.control_plane import GlobalNamespaceService, MetadataFootprint
from repro.core.data_plane import DataPlane
from repro.core.microfs.blockpool import BlockPool
from repro.core.microfs.btree import BPlusTree
from repro.core.microfs.inode import DirEntry, FileType, Inode
from repro.core.microfs.oplog import LogOp, OperationLog
from repro.errors import (
    BadFileDescriptor,
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    PermissionDenied,
)
from repro.io.qos import QoSClass
from repro.nvme.commands import Payload
from repro.nvme.namespace import Partition
from repro.obs.context import tracer_of
from repro.obs.metrics import Counter
from repro.sim.engine import Environment, Event

__all__ = ["MicroFS", "FileHandle", "normalize_path", "split_path"]

_SUPERBLOCK_BYTES = 4096
# slot u8 | pad u8 x3 | state_len u64 | state_lsn u64 | log_epoch u32 | magic u32
_SB = struct.Struct("<B3xQQII")
_SB_MAGIC = 0x6D465300  # "mFS\0"

WriteData = Union[bytes, int, Payload]


def normalize_path(path: str) -> str:
    """Canonical absolute path: leading slash, no trailing slash, no ``//``."""
    if not path or not path.startswith("/"):
        raise InvalidArgument(f"path must be absolute, got {path!r}")
    parts = [p for p in path.split("/") if p]
    if any(p in (".", "..") for p in parts):
        raise InvalidArgument(f"path may not contain '.' or '..': {path!r}")
    return "/" + "/".join(parts)


def split_path(path: str) -> Tuple[str, str]:
    """(parent, base) of a normalized non-root path."""
    path = normalize_path(path)
    if path == "/":
        raise InvalidArgument("root has no parent")
    parent, _slash, base = path.rpartition("/")
    return (parent or "/", base)


@dataclass
class FileHandle:
    """An open file descriptor within one MicroFS instance."""

    fd: int
    ino: int
    pos: int = 0
    readable: bool = True
    writable: bool = True
    open_: bool = True


class MicroFS:  # reproflow: ignore[FLOW103] (ops apply atomically between yield points)
    """The per-process micro filesystem."""

    ROOT_INO = 1

    def __init__(
        self,
        env: Environment,
        config: RuntimeConfig,
        data_plane: DataPlane,
        partition: Partition,
        instance_name: str = "microfs",
        uid: int = 0,
        global_namespace: Optional[GlobalNamespaceService] = None,
        counters: Optional[Counter] = None,
    ):
        self.env = env
        self.config = config
        self.data_plane = data_plane
        self.partition = partition
        self.instance_name = instance_name
        # Data-plane spans share this instance's track so they nest
        # under the intercepted syscall that issued them.
        data_plane.obs_track = instance_name
        self.uid = uid
        self.global_namespace = global_namespace if not config.private_namespace else None
        self.counters = counters if counters is not None else Counter()

        # -- partition layout ------------------------------------------------
        block = config.effective_block_bytes
        self._sb_offset = partition.absolute(0)
        self._log_offset = partition.absolute(_SUPERBLOCK_BYTES)
        self._state_offset = partition.absolute(_SUPERBLOCK_BYTES + config.log_region_bytes)
        data_start_rel = _SUPERBLOCK_BYTES + config.log_region_bytes + config.state_region_bytes
        data_start_rel = -(-data_start_rel // block) * block  # align up
        self._data_offset = partition.absolute(data_start_rel)
        data_bytes = partition.nbytes - data_start_rel
        if data_bytes < block:
            raise InvalidArgument(
                f"partition of {partition.nbytes} bytes leaves no data region"
            )

        # -- in-DRAM state (the control plane) ---------------------------------
        self.pool = BlockPool(data_bytes, block)
        self.namespace_index = BPlusTree(order=64)
        self.inodes: Dict[int, Inode] = {}
        self._next_ino = self.ROOT_INO + 1
        self.oplog = OperationLog(
            config.log_region_bytes,
            coalescing=config.log_coalescing,
            window=config.coalescing_window,
            physical_records=not config.metadata_provenance,
        )
        self._handles: Dict[int, FileHandle] = {}
        self._fd_counter = itertools.count(3)  # 0-2 are stdio, as tradition demands
        self._write_seq = itertools.count()
        self._state_slot = 0
        self.state_lsn = 0
        self.state_checkpoints = 0
        self._ckpt_signal: Optional[Event] = None
        self._mkroot()

    def _mkroot(self) -> None:
        root = Inode(ino=self.ROOT_INO, ftype=FileType.DIRECTORY, mode=0o755, uid=self.uid)
        self.inodes[self.ROOT_INO] = root
        self.namespace_index.insert("/", self.ROOT_INO)

    # ------------------------------------------------------------------------
    # lookups (pure)
    # ------------------------------------------------------------------------

    def _alloc_ino(self) -> int:
        ino = self._next_ino
        self._next_ino += 1
        return ino

    def _resolve(self, path: str) -> Inode:
        path = normalize_path(path)
        ino = self.namespace_index.get(path)
        if ino is None:
            raise FileNotFound(path)
        return self.inodes[ino]

    def _resolve_parent(self, path: str) -> Tuple[Inode, str]:
        parent_path, base = split_path(path)
        parent = self._resolve(parent_path)
        parent.require_dir()
        return parent, base

    def exists(self, path: str) -> bool:
        """True if ``path`` names a live file or directory."""
        return self.namespace_index.get(normalize_path(path)) is not None

    def stat(self, path: str) -> Inode:
        """The inode behind ``path`` (raises FileNotFound)."""
        return self._resolve(path)

    def readdir(self, path: str) -> List[str]:
        """Sorted entry names of the directory at ``path``."""
        return self._resolve(path).entry_names()

    @property
    def open_file_count(self) -> int:
        """Open descriptors — the background checkpointer's trigger input."""
        return len(self._handles)

    # ------------------------------------------------------------------------
    # cost charging helpers
    # ------------------------------------------------------------------------

    def _metadata_cost(self) -> float:
        cost = cal.METADATA_OP_CPU
        if not self.config.userspace_direct:
            cost += cal.SYSCALL_TRAP_COST + cal.KERNEL_IO_PATH_COST
            self.counters.add("kernel_time", cal.SYSCALL_TRAP_COST + cal.KERNEL_IO_PATH_COST)
        return cost

    def _charge_metadata(self) -> Event:
        self.counters.add("metadata_ops")
        return self.env.timeout(self._metadata_cost())

    def _global_ns_visit(self) -> Generator[Event, Any, None]:
        if self.global_namespace is not None:
            yield from self.global_namespace.execute()

    def _journal(self, op: LogOp, **fields) -> Generator[Event, Any, None]:
        """Append a log record and flush it to the SSD (WAL barrier)."""
        tr = tracer_of(self.env)
        span = None if tr is None else tr.begin(
            "microfs.journal", cat="fs", track=self.instance_name,
            parent=tr.current(self.instance_name), op=op.name)
        yield self.env.timeout(cal.LOG_APPEND_CPU)
        result = self.oplog.append(op, **fields)
        self.counters.add("log_records_coalesced" if result.coalesced else "log_records_new")
        ctx = self.env.obs
        if ctx is not None:
            ctx.metrics.counter("microfs.log_records").add(1)
        if span is not None:
            tr.handoff(span)
        yield from self.data_plane.write_log_page(
            self._log_offset + result.region_offset,
            result.page_bytes,
            result.wire_bytes,
        )
        if span is not None:
            tr.end(span, coalesced=result.coalesced)

    def _permission_check(self, inode: Inode, uid: int, write: bool) -> None:
        """§III-F: "The control plane performs access control checks for
        file IO so that POSIX permissions are respected"."""
        if uid == inode.uid:
            return
        needed = 0o002 if write else 0o004
        if not inode.mode & needed:
            raise PermissionDenied(
                f"uid {uid} denied {'write' if write else 'read'} on inode "
                f"{inode.ino} (mode {oct(inode.mode)}, owner {inode.uid})"
            )

    # ------------------------------------------------------------------------
    # directory-file maintenance
    # ------------------------------------------------------------------------

    def _write_dir_file(self, directory: Inode) -> Generator[Event, Any, None]:
        """Rewrite the tail block of a directory's on-SSD directory file.

        "For each file create, a corresponding entry must be added to the
        directory file stored on the remote SSD" (§IV-G) — this write is
        what bounds create throughput by hardware, not software.
        """
        block = self.config.effective_block_bytes
        needed_blocks = max(1, -(-directory.dir_file_bytes() // block))
        while len(directory.blocks) < needed_blocks:
            directory.blocks.append(self.pool.alloc())
        tail = directory.blocks[-1]
        payload = Payload.synthetic(
            f"{self.instance_name}:dirfile:{directory.ino}:{len(directory.entries)}",
            block,
        )
        # Directory files are metadata: they ride the journal class.
        yield from self.data_plane.write_runs(
            [(self._data_offset + self.pool.offset_of(tail), payload)],
            qos=QoSClass.JOURNAL,
        )

    # ------------------------------------------------------------------------
    # POSIX operations (simulation generators)
    # ------------------------------------------------------------------------

    def mkdir(self, path: str, mode: int = 0o755, uid: Optional[int] = None) -> Generator[Event, Any, Inode]:
        """Create a directory (journaled MKDIR + parent dir-file write)."""
        path = normalize_path(path)
        uid = self.uid if uid is None else uid
        yield self._charge_metadata()
        yield from self._global_ns_visit()
        if self.exists(path):
            raise FileExists(path)
        parent, base = self._resolve_parent(path)
        self._permission_check(parent, uid, write=True)
        ino = self._alloc_ino()
        yield from self._journal(
            LogOp.MKDIR, ino=ino, parent_ino=parent.ino, mode=mode, name=base
        )
        inode = Inode(ino=ino, ftype=FileType.DIRECTORY, mode=mode, uid=uid,
                      ctime=self.env.now, mtime=self.env.now)
        self.inodes[ino] = inode
        parent.add_entry(DirEntry(base, ino, FileType.DIRECTORY))
        self.namespace_index.insert(path, ino)
        yield from self._write_dir_file(parent)
        self.counters.add("mkdirs")
        return inode

    def open(
        self,
        path: str,
        create: bool = False,
        excl: bool = False,
        truncate: bool = False,
        mode: int = 0o644,
        uid: Optional[int] = None,
    ) -> Generator[Event, Any, FileHandle]:
        """``open(2)``: lookup or (journaled) create; returns a FileHandle."""
        path = normalize_path(path)
        uid = self.uid if uid is None else uid
        yield self._charge_metadata()
        yield from self._global_ns_visit()
        existing = self.namespace_index.get(path)
        if existing is not None:
            if excl and create:
                raise FileExists(path)
            inode = self.inodes[existing]
            if inode.ftype is FileType.DIRECTORY:
                raise IsADirectory(path)
            self._permission_check(inode, uid, write=truncate)
            if truncate and inode.size > 0:
                yield from self._truncate(inode)
        elif create:
            inode = yield from self._creat(path, mode, uid)
        else:
            raise FileNotFound(path)
        handle = FileHandle(fd=next(self._fd_counter), ino=inode.ino)
        self._handles[handle.fd] = handle
        self.counters.add("opens")
        return handle

    def _creat(self, path: str, mode: int, uid: int) -> Generator[Event, Any, Inode]:
        parent, base = self._resolve_parent(path)
        self._permission_check(parent, uid, write=True)
        ino = self._alloc_ino()
        yield from self._journal(
            LogOp.CREAT, ino=ino, parent_ino=parent.ino, mode=mode, name=base
        )
        inode = Inode(ino=ino, ftype=FileType.FILE, mode=mode, uid=uid,
                      ctime=self.env.now, mtime=self.env.now)
        self.inodes[ino] = inode
        parent.add_entry(DirEntry(base, ino, FileType.FILE))
        self.namespace_index.insert(path, ino)
        yield from self._write_dir_file(parent)
        self.counters.add("creates")
        return inode

    def _truncate(self, inode: Inode, size: int = 0) -> Generator[Event, Any, None]:
        yield from self._journal(LogOp.TRUNCATE, ino=inode.ino, a=size)
        keep = -(-size // self.config.effective_block_bytes)
        self.pool.free_many(inode.blocks[keep:])
        inode.blocks = inode.blocks[:keep]
        inode.size = min(inode.size, size)
        inode.mtime = self.env.now

    def truncate(self, path: str, size: int, uid: Optional[int] = None) -> Generator[Event, Any, None]:
        """``truncate(2)``: shrink a file to ``size`` bytes, freeing the
        tail blocks. Growing via truncate is not supported (checkpoint
        files never need it)."""
        path = normalize_path(path)
        uid = self.uid if uid is None else uid
        if size < 0:
            raise InvalidArgument(f"negative truncate size {size}")
        yield self._charge_metadata()
        yield from self._global_ns_visit()
        inode = self._resolve(path)
        inode.require_file()
        self._permission_check(inode, uid, write=True)
        if size > inode.size:
            raise InvalidArgument("truncate cannot grow a file")
        yield from self._truncate(inode, size)
        self.counters.add("truncates")

    def rename(self, old: str, new: str, uid: Optional[int] = None) -> Generator[Event, Any, None]:
        """``rename(2)`` within the private namespace. The destination
        must not exist (checkpoint renames are publish-style moves)."""
        old = normalize_path(old)
        new = normalize_path(new)
        uid = self.uid if uid is None else uid
        yield self._charge_metadata()
        yield from self._global_ns_visit()
        inode = self._resolve(old)
        if self.exists(new):
            raise FileExists(new)
        old_parent, old_base = self._resolve_parent(old)
        new_parent, new_base = self._resolve_parent(new)
        self._permission_check(old_parent, uid, write=True)
        self._permission_check(new_parent, uid, write=True)
        yield from self._journal(
            LogOp.RENAME, ino=inode.ino, parent_ino=old_parent.ino,
            a=new_parent.ino, name=f"{old_base}/{new_base}",
        )
        entry = old_parent.remove_entry(old_base)
        new_parent.add_entry(DirEntry(new_base, entry.ino, entry.ftype))
        self._rekey_namespace(old, new)
        yield from self._write_dir_file(old_parent)
        if new_parent.ino != old_parent.ino:
            yield from self._write_dir_file(new_parent)
        self.counters.add("renames")

    def _rekey_namespace(self, old_path: str, new_path: str) -> None:
        """Move a path (and, for directories, its subtree) in the B+Tree."""
        moves = [(old_path, self.namespace_index.get(old_path))]
        prefix = old_path + "/"
        moves.extend(self.namespace_index.keys_with_prefix(prefix))
        for key, ino in moves:
            self.namespace_index.delete(key)
            self.namespace_index.insert(new_path + key[len(old_path):], ino)

    def _handle(self, handle: FileHandle) -> Inode:
        if not handle.open_ or handle.fd not in self._handles:
            raise BadFileDescriptor(f"fd {handle.fd}")
        return self.inodes[handle.ino]

    def _as_payload(self, data: WriteData, ino: int, offset: int) -> Payload:
        if isinstance(data, Payload):
            return data
        if isinstance(data, bytes):
            return Payload.of_bytes(data)
        if isinstance(data, int):
            tag = f"{self.instance_name}:w:{ino}:{offset}:{next(self._write_seq)}"
            return Payload.synthetic(tag, data)
        raise InvalidArgument(f"unsupported write data {type(data)!r}")

    def write(
        self,
        handle: FileHandle,
        data: WriteData,
        qos: QoSClass = QoSClass.CKPT_DATA,
    ) -> Generator[Event, Any, int]:
        """Write at the handle's position (advances it). ``data`` may be
        real bytes, a Payload, or an int byte-count (synthetic bulk)."""
        inode = self._handle(handle)
        inode.require_file()
        payload = self._as_payload(data, inode.ino, handle.pos)
        written = yield from self.pwrite(handle, payload, handle.pos, qos=qos)
        handle.pos += written
        return written

    def pwrite(
        self,
        handle: FileHandle,
        data: WriteData,
        offset: int,
        qos: QoSClass = QoSClass.CKPT_DATA,
    ) -> Generator[Event, Any, int]:
        """Positional write: allocate blocks, journal (WAL), move the data."""
        inode = self._handle(handle)
        inode.require_file()
        if not handle.writable:
            raise BadFileDescriptor(f"fd {handle.fd} not writable")
        payload = self._as_payload(data, inode.ino, offset)
        nbytes = payload.nbytes
        if nbytes == 0:
            return 0
        block = self.config.effective_block_bytes
        end = offset + nbytes
        needed = -(-end // block) - len(inode.blocks)
        if needed > 0:
            yield self.env.timeout(needed * cal.BLOCK_ALLOC_COST)
            inode.blocks.extend(self.pool.alloc_many(needed))
        # In a global namespace, the inode size/mtime update is a shared
        # metadata operation and must take the distributed lock ("other
        # systems must use distributed locking algorithms for each
        # metadata operation", SIII-E) — private namespaces skip this.
        yield from self._global_ns_visit()
        # WAL: journal the operation, flush, then move the data. Under
        # physical logging every few blocks ship a full journal record.
        weight = max(1, -(-max(needed, 0) // cal.PHYSICAL_LOG_BLOCKS_PER_RECORD))
        yield from self._journal(
            LogOp.WRITE, ino=inode.ino, a=offset, b=nbytes, physical_weight=weight
        )
        runs = self._block_runs(inode, offset, payload)
        yield from self.data_plane.write_runs(runs, qos=qos)
        inode.size = max(inode.size, end)
        inode.mtime = self.env.now
        self.counters.add("app_bytes_written", nbytes)
        return nbytes

    def _block_runs(
        self, inode: Inode, offset: int, payload: Payload
    ) -> List[Tuple[int, Payload]]:
        """Split a file-relative write into contiguous device runs."""
        block = self.config.effective_block_bytes
        runs: List[Tuple[int, Payload]] = []
        consumed = 0
        nbytes = payload.nbytes
        while consumed < nbytes:
            file_at = offset + consumed
            index = file_at // block
            intra = file_at % block
            run_blocks = [inode.blocks[index]]
            # Extend the run while device blocks stay contiguous.
            take = block - intra
            while consumed + take < nbytes:
                nxt = (file_at + take) // block
                if inode.blocks[nxt] != run_blocks[-1] + 1:
                    break
                run_blocks.append(inode.blocks[nxt])
                take += block
            take = min(take, nbytes - consumed)
            device_offset = (
                self._data_offset + self.pool.offset_of(run_blocks[0]) + intra
            )
            runs.append((device_offset, payload.slice(consumed, take)))
            consumed += take
        return runs

    def read(
        self,
        handle: FileHandle,
        nbytes: int,
        qos: QoSClass = QoSClass.RECOVERY,
    ) -> Generator[Event, Any, List[Payload]]:
        """Read from the handle position; returns stored payload pieces."""
        pieces = yield from self.pread(handle, nbytes, handle.pos, qos=qos)
        handle.pos += sum(p.nbytes for p in pieces)
        return pieces

    def pread(
        self,
        handle: FileHandle,
        nbytes: int,
        offset: int,
        qos: QoSClass = QoSClass.RECOVERY,
    ) -> Generator[Event, Any, List[Payload]]:
        """Positional read of stored payload pieces (clipped at EOF)."""
        inode = self._handle(handle)
        inode.require_file()
        if not handle.readable:
            raise BadFileDescriptor(f"fd {handle.fd} not readable")
        nbytes = max(0, min(nbytes, inode.size - offset))
        if nbytes == 0:
            return []
        block = self.config.effective_block_bytes
        runs: List[Tuple[int, int]] = []
        consumed = 0
        while consumed < nbytes:
            file_at = offset + consumed
            index = file_at // block
            intra = file_at % block
            take = min(block - intra, nbytes - consumed)
            last = runs[-1] if runs else None
            device_offset = self._data_offset + self.pool.offset_of(inode.blocks[index]) + intra
            if last is not None and last[0] + last[1] == device_offset:
                runs[-1] = (last[0], last[1] + take)
            else:
                runs.append((device_offset, take))
            consumed += take
        extents = yield from self.data_plane.read_runs(runs, qos=qos)
        self.counters.add("app_bytes_read", nbytes)
        return [e.payload for e in extents]

    def fsync(self, handle: FileHandle) -> Generator[Event, Any, None]:
        """Data is unbuffered and the log is flushed per-op, so fsync is
        just a device FLUSH — the stronger-than-POSIX durability of §III-E."""
        self._handle(handle)
        tr = tracer_of(self.env)
        if tr is not None:
            tr.handoff(tr.current(self.instance_name))
        yield self.data_plane.transport.flush(self.data_plane.nsid)
        self.counters.add("fsyncs")

    def close(self, handle: FileHandle) -> Generator[Event, Any, None]:
        """Release the descriptor; may wake the background checkpointer."""
        self._handle(handle)
        yield self._charge_metadata()
        del self._handles[handle.fd]
        handle.open_ = False
        self.counters.add("closes")
        self._signal_checkpointer()

    def unlink(self, path: str, uid: Optional[int] = None) -> Generator[Event, Any, None]:
        """Remove a file or empty directory (journaled; blocks recycled)."""
        path = normalize_path(path)
        uid = self.uid if uid is None else uid
        yield self._charge_metadata()
        yield from self._global_ns_visit()
        inode = self._resolve(path)
        parent, base = self._resolve_parent(path)
        self._permission_check(parent, uid, write=True)
        if inode.ftype is FileType.DIRECTORY:
            if inode.entries:
                raise DirectoryNotEmpty(path)
        yield from self._journal(
            LogOp.UNLINK, ino=inode.ino, parent_ino=parent.ino, name=base
        )
        parent.remove_entry(base)
        self.namespace_index.delete(path)
        self.pool.free_many(inode.blocks)
        del self.inodes[inode.ino]
        yield from self._write_dir_file(parent)
        self.counters.add("unlinks")

    # ------------------------------------------------------------------------
    # internal-state checkpointing (§III-E) and the background thread
    # ------------------------------------------------------------------------

    def needs_state_checkpoint(self) -> bool:
        """§III-E trigger: no open files and low free log space."""
        return (
            self.open_file_count == 0
            and self.oplog.free_fraction < self.config.log_free_threshold
        )

    def serialize_state(self) -> bytes:
        """Pickle the DRAM state (inodes, pool, namespace) for a checkpoint slot."""
        state = {
            "next_ino": self._next_ino,
            "state_lsn": self.oplog.next_lsn - 1,
            "log_epoch": self.oplog.epoch + 1,
            "inodes": {ino: inode.snapshot() for ino, inode in self.inodes.items()},
            "pool": self.pool.snapshot(),
            "namespace": list(self.namespace_index.items()),
            "uid": self.uid,
            "state_slot": self._state_slot,
        }
        return pickle.dumps(state, protocol=4)

    def checkpoint_state(self) -> Generator[Event, Any, int]:
        """Atomically checkpoint internal DRAM state to the reserved region.

        Sequence: state blob to the inactive slot -> superblock commit ->
        log reset. "Log records are only discarded once the checkpoint is
        complete. A failure during checkpoint will not affect the
        durability and consistency of data."
        """
        blob = self.serialize_state()
        slot_bytes = self.config.state_region_bytes // 2
        if len(blob) > slot_bytes:
            raise InvalidArgument(
                f"state blob of {len(blob)} bytes exceeds slot of {slot_bytes}"
            )
        # The background checkpointer interleaves with app ops, so its
        # spans live on a dedicated track (no shared span stack).
        tr = tracer_of(self.env)
        span = None if tr is None else tr.begin(
            "microfs.state_ckpt", cat="fs",
            track=f"{self.instance_name}.ckpt", bytes=len(blob))
        slot = self._state_slot ^ 1
        slot_offset = self._state_offset + slot * slot_bytes
        if tr is not None:
            tr.handoff(span)
        yield from self.data_plane.write_state(slot_offset, blob)
        state_lsn = self.oplog.next_lsn - 1
        superblock = _SB.pack(slot, len(blob), state_lsn, self.oplog.epoch + 1, _SB_MAGIC)
        if tr is not None:
            tr.handoff(span)
        yield from self.data_plane.write_log_page(
            self._sb_offset, superblock.ljust(_SUPERBLOCK_BYTES, b"\x00"), _SUPERBLOCK_BYTES
        )
        self.oplog.reset()
        self._state_slot = slot
        self.state_lsn = state_lsn
        self.state_checkpoints += 1
        self.counters.add("state_checkpoints")
        if span is not None:
            tr.end(span)
        ctx = self.env.obs
        if ctx is not None:
            ctx.metrics.counter("microfs.state_checkpoints").add(1)
        return len(blob)

    def _signal_checkpointer(self) -> None:
        """Wake the background thread if its trigger condition holds.

        "The background thread can exactly determine when the application
        checkpoint process is complete by monitoring the number of open
        files" — modelled as an event the fs raises on the transitions
        that can satisfy the condition (last close, log fill), instead of
        busy-polling simulated time.
        """
        if self._ckpt_signal is not None and not self._ckpt_signal.triggered:
            if self.needs_state_checkpoint():
                self._ckpt_signal.succeed()

    def background_checkpointer(
        self, poll_interval: float = 0.25, stop_event: Optional[Event] = None
    ) -> Generator[Event, Any, None]:
        """The dedicated checkpoint thread (§III-E), overlapped with the
        application compute phase. Run it via ``env.process``; trigger
        ``stop_event`` to retire it at finalize. ``poll_interval`` is a
        slow fallback re-check; the fast path is the fs signalling the
        thread when the trigger condition can hold."""
        while stop_event is None or not stop_event.triggered:
            self._ckpt_signal = self.env.event()
            waits = [self._ckpt_signal, self.env.timeout(poll_interval)]
            if stop_event is not None:
                waits.append(stop_event)
            yield self.env.any_of(waits)
            if self.needs_state_checkpoint():
                yield from self.checkpoint_state()
        self._ckpt_signal = None

    # ------------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------------

    def footprint(self) -> MetadataFootprint:
        """DRAM + on-SSD metadata accounting for Table I."""
        dir_bytes = sum(
            inode.dir_file_bytes()
            for inode in self.inodes.values()
            if inode.ftype is FileType.DIRECTORY
        )
        return MetadataFootprint(
            inode_count=len(self.inodes),
            btree_nodes=self.namespace_index.node_count,
            blockpool_bytes=self.pool.footprint_bytes(),
            log_region_bytes=self.config.log_region_bytes,
            state_region_bytes=self.config.state_region_bytes,
            dir_file_bytes=dir_bytes,
        )

    def check_consistency(self) -> None:
        """fsck: assert cross-structure invariants; raises AssertionError.

        * every namespace-index path maps to a live inode,
        * every directory entry matches the index and the child inode,
        * every inode is reachable from the root exactly once,
        * block accounting matches the pool (no leaks, no double use),
        * file sizes fit their block lists.
        """
        # Index <-> inode table.
        seen_inos = set()
        for path, ino in self.namespace_index.items():
            inode = self.inodes.get(ino)
            assert inode is not None, f"index path {path} -> dead inode {ino}"
            assert ino not in seen_inos, f"inode {ino} indexed twice"
            seen_inos.add(ino)
        assert seen_inos == set(self.inodes), (
            f"unindexed inodes: {set(self.inodes) - seen_inos}"
        )
        # Directory entries <-> index.
        for path, ino in self.namespace_index.items():
            inode = self.inodes[ino]
            if inode.ftype is FileType.DIRECTORY:
                for name, entry in inode.entries.items():
                    child_path = ("" if path == "/" else path) + "/" + name
                    assert self.namespace_index.get(child_path) == entry.ino, (
                        f"dir entry {child_path} disagrees with index"
                    )
                    child = self.inodes.get(entry.ino)
                    assert child is not None and child.ftype is entry.ftype
        # Reachability from the root.
        reachable = {self.ROOT_INO}
        stack = [self.inodes[self.ROOT_INO]]
        while stack:
            node = stack.pop()
            if node.ftype is FileType.DIRECTORY:
                for entry in node.entries.values():
                    assert entry.ino not in reachable, f"inode {entry.ino} linked twice"
                    reachable.add(entry.ino)
                    stack.append(self.inodes[entry.ino])
        assert reachable == set(self.inodes), (
            f"orphan inodes: {set(self.inodes) - reachable}"
        )
        # Block accounting.
        used_blocks = [b for inode in self.inodes.values() for b in inode.blocks]
        assert len(used_blocks) == len(set(used_blocks)), "block double-use"
        assert len(used_blocks) == self.pool.used_blocks, (
            f"pool says {self.pool.used_blocks} used, inodes hold {len(used_blocks)}"
        )
        # Sizes fit block lists.
        block = self.config.effective_block_bytes
        for inode in self.inodes.values():
            if inode.ftype is FileType.FILE:
                assert inode.size <= len(inode.blocks) * block, (
                    f"inode {inode.ino}: size {inode.size} exceeds blocks"
                )

    # superblock decoding shared with recovery
    @staticmethod
    def decode_superblock(raw: bytes) -> Optional[dict]:
        """Parse a superblock page; None when absent/unrecognisable."""
        if len(raw) < _SB.size or raw[: _SB.size] == b"\x00" * _SB.size:
            return None
        slot, state_len, state_lsn, log_epoch, magic = _SB.unpack_from(raw, 0)
        if magic != _SB_MAGIC:
            return None
        return {
            "slot": slot,
            "state_len": state_len,
            "state_lsn": state_lsn,
            "log_epoch": log_epoch,
        }
