"""Inodes and directory entries (§III-E, "POSIX Semantics").

"We borrow several conventional filesystem concepts and techniques, such
as inodes to store file metadata and directory files to store directory
entries."

An inode records type, size, permissions, and the ordered list of
hugeblock indices backing the file. Directory inodes carry their entries
in DRAM; each entry mutation is durably captured by the operation log
(and the directory *file* blocks on the SSD are rewritten by the fs
layer, which is where Figure 8(b)'s create traffic comes from).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import IsADirectory, NotADirectory

__all__ = ["FileType", "Inode", "DirEntry"]


class FileType(enum.Enum):
    FILE = "file"
    DIRECTORY = "dir"


@dataclass(frozen=True)
class DirEntry:
    """One name -> inode mapping inside a directory."""

    name: str
    ino: int
    ftype: FileType


@dataclass
class Inode:  # reproflow: ignore[FLOW103] (writes serialized by MicroFS op order)
    """File or directory metadata. DRAM-resident; journaled via the oplog."""

    ino: int
    ftype: FileType
    mode: int = 0o644
    uid: int = 0
    size: int = 0
    nlink: int = 1
    ctime: float = 0.0
    mtime: float = 0.0
    blocks: List[int] = field(default_factory=list)
    entries: Optional[Dict[str, DirEntry]] = None  # directories only

    def __post_init__(self) -> None:
        if self.ftype is FileType.DIRECTORY and self.entries is None:
            self.entries = {}

    # -- type guards ---------------------------------------------------------------

    def require_file(self) -> None:
        if self.ftype is not FileType.FILE:
            raise IsADirectory(f"inode {self.ino} is a directory")

    def require_dir(self) -> None:
        if self.ftype is not FileType.DIRECTORY:
            raise NotADirectory(f"inode {self.ino} is not a directory")

    # -- directory ops -----------------------------------------------------------------

    def add_entry(self, entry: DirEntry) -> None:
        self.require_dir()
        self.entries[entry.name] = entry

    def remove_entry(self, name: str) -> DirEntry:
        self.require_dir()
        return self.entries.pop(name)

    def lookup(self, name: str) -> Optional[DirEntry]:
        self.require_dir()
        return self.entries.get(name)

    def entry_names(self) -> List[str]:
        self.require_dir()
        return sorted(self.entries)

    # -- accounting ----------------------------------------------------------------------

    def dir_file_bytes(self) -> int:
        """On-SSD size of this directory's *directory file*: 64-byte
        fixed entries (name, ino, type), one header slot."""
        self.require_dir()
        return 64 * (len(self.entries) + 1)

    # -- persistence -----------------------------------------------------------------------

    def snapshot(self) -> dict:
        snap = {
            "ino": self.ino,
            "ftype": self.ftype.value,
            "mode": self.mode,
            "uid": self.uid,
            "size": self.size,
            "nlink": self.nlink,
            "ctime": self.ctime,
            "mtime": self.mtime,
            "blocks": list(self.blocks),
        }
        if self.ftype is FileType.DIRECTORY:
            snap["entries"] = {
                name: (e.ino, e.ftype.value) for name, e in self.entries.items()
            }
        return snap

    @classmethod
    def restore(cls, snap: dict) -> "Inode":
        ftype = FileType(snap["ftype"])
        inode = cls(
            ino=snap["ino"],
            ftype=ftype,
            mode=snap["mode"],
            uid=snap["uid"],
            size=snap["size"],
            nlink=snap["nlink"],
            ctime=snap["ctime"],
            mtime=snap["mtime"],
            blocks=list(snap["blocks"]),
        )
        if ftype is FileType.DIRECTORY:
            for name, (ino, etype) in snap["entries"].items():
                inode.add_entry(DirEntry(name, ino, FileType(etype)))
        return inode
