"""Write-ahead operation log: metadata provenance + record coalescing.

§III-E, "Metadata Provenance": metadata (inodes, block pool, B+Tree)
lives in compute-node DRAM; durability comes from journaling *operations*
— "Only the syscall type and its parameters need to be added to the
log". Replay re-executes the operations; block addresses need not be
logged because the circular pool re-allocates deterministically in log
order.

§III-E, "Log Record Coalescing": consecutive writes to the same file
coalesce into one record via a sliding window — "Instead of adding new
log records for each write, we can simply update the log record for the
previous write" (Figure 5). The log fill rate drops (fewer internal
state checkpoints) and replay length drops (near-instantaneous runtime
recovery, §IV-I).

Records encode to real bytes in fixed 64-byte slots (multi-slot for long
names); recovery decodes the raw log region read back from the SSD. The
physical-logging ablation (``metadata_provenance=False``) pads every
record to a 4 KiB inode image — the "large sized physical log records"
other systems ship.
"""

from __future__ import annotations

import enum
import struct
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.bench import calibration as cal
from repro.errors import InvalidArgument, NoSpace, RecoveryError

__all__ = ["LogOp", "LogRecord", "AppendResult", "OperationLog"]

_SLOT = cal.NVMECR_LOG_RECORD_BYTES  # 64
_PAGE = 4096
_MAGIC = 0xC4
# lsn u64 | epoch u32 | op u8 | magic u8 | ino u64 | parent u64 |
# a u64 | b u64 | mode u32 | name_len u16  => 54 bytes + name
_FIXED = struct.Struct("<QIBBQQQQIH")


class LogOp(enum.Enum):
    MKDIR = 1
    CREAT = 2
    WRITE = 3
    UNLINK = 4
    TRUNCATE = 5
    CLOSE = 6
    RENAME = 7


@dataclass
class LogRecord:
    """One journaled metadata operation."""

    lsn: int
    op: LogOp
    ino: int = 0
    parent_ino: int = 0
    a: int = 0  # WRITE: offset     TRUNCATE: new size
    b: int = 0  # WRITE: length
    mode: int = 0
    name: str = ""
    epoch: int = 0

    # -- wire format -------------------------------------------------------------

    def encode(self) -> bytes:
        name_bytes = self.name.encode()
        if len(name_bytes) > 65535:
            raise InvalidArgument("name too long for log record")
        raw = _FIXED.pack(
            self.lsn, self.epoch, self.op.value, _MAGIC, self.ino,
            self.parent_ino, self.a, self.b, self.mode, len(name_bytes),
        ) + name_bytes
        slots = -(-len(raw) // _SLOT)
        return raw.ljust(slots * _SLOT, b"\x00")

    @property
    def wire_slots(self) -> int:
        return -(-(_FIXED.size + len(self.name.encode())) // _SLOT)

    @classmethod
    def decode_stream(cls, data: bytes, empty_run_limit: int = 80) -> List["LogRecord"]:
        """Decode back-to-back records.

        Empty (all-zero) slots are skipped — physical-logging records are
        slot-padded — but a run longer than ``empty_run_limit`` slots
        means the live log has ended (the rest of the region is erased),
        so scanning stops instead of walking megabytes of zeros.
        """
        records: List[LogRecord] = []
        at = 0
        empty_run = 0
        while at + _FIXED.size <= len(data):
            (lsn, epoch, op, magic, ino, parent, a, b, mode, name_len) = _FIXED.unpack_from(data, at)
            if magic != _MAGIC:
                if data[at : at + _SLOT].strip(b"\x00") == b"":
                    empty_run += 1
                    if empty_run > empty_run_limit:
                        break
                    at += _SLOT  # erased slot — skip
                    continue
                raise RecoveryError(f"corrupt log record at offset {at}")
            empty_run = 0
            name = data[at + _FIXED.size : at + _FIXED.size + name_len].decode()
            record = cls(lsn, LogOp(op), ino, parent, a, b, mode, name, epoch)
            records.append(record)
            at += record.wire_slots * _SLOT
        return records


@dataclass
class AppendResult:
    """What the fs layer must write to the SSD for this append."""

    record: LogRecord
    coalesced: bool
    region_offset: int  # page-aligned offset within the log region
    page_bytes: bytes  # the (re)written page content
    wire_bytes: int = field(default=_PAGE)  # bytes crossing the fabric


class OperationLog:  # reproflow: ignore[FLOW103] (LSN order is the tie-break)
    """Fixed-capacity in-order log with an in-memory mirror.

    The in-memory record list is the authoritative mirror; ``append``
    returns the page image the caller must persist. Slots are allocated
    sequentially; ``reset`` (after an internal-state checkpoint) starts a
    new epoch so stale on-device records are ignored by recovery.
    """

    def __init__(
        self,
        capacity_bytes: int,
        coalescing: bool = True,
        window: int = 8,
        physical_records: bool = False,
    ):
        if capacity_bytes < _PAGE:
            raise InvalidArgument(f"log region of {capacity_bytes} bytes < one page")
        self.capacity_bytes = capacity_bytes
        self.coalescing = coalescing
        self.window = window
        self.physical_records = physical_records
        self.epoch = 1
        self._next_lsn = 1
        self._records: List[LogRecord] = []
        self._slots_used = 0  # in slot units
        self._positions: List[int] = []  # slot index of each record
        self._window: Deque[int] = deque(maxlen=window)  # record indices
        # Lifetime counters for Table I / drilldown accounting.
        self.total_appends = 0
        self.total_coalesced = 0
        self.total_wire_bytes = 0

    # -- capacity ----------------------------------------------------------------

    def _record_slots(self, record: LogRecord, weight: int = 1) -> int:
        if self.physical_records:
            return weight * (cal.PHYSICAL_LOG_RECORD_BYTES // _SLOT)
        return record.wire_slots

    @property
    def capacity_slots(self) -> int:
        return self.capacity_bytes // _SLOT

    @property
    def free_slots(self) -> int:
        return self.capacity_slots - self._slots_used

    @property
    def free_fraction(self) -> float:
        return self.free_slots / self.capacity_slots

    @property
    def record_count(self) -> int:
        return len(self._records)

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    # -- append ---------------------------------------------------------------------

    def append(
        self,
        op: LogOp,
        ino: int = 0,
        parent_ino: int = 0,
        a: int = 0,
        b: int = 0,
        mode: int = 0,
        name: str = "",
        physical_weight: int = 1,
    ) -> AppendResult:
        """Journal one operation; possibly coalesces into a prior WRITE.

        ``physical_weight`` only matters in physical-logging mode: it is
        the number of 4 KiB physical records (inode images + bitmap
        pages) the operation would journal — large writes touch many
        blocks and ship proportionally more journal bytes, the traffic
        metadata provenance eliminates (Figure 7(d)).
        """
        self.total_appends += 1
        if self.coalescing and op is LogOp.WRITE:
            merged = self._try_coalesce(ino, a, b)
            if merged is not None:
                return merged
        record = LogRecord(
            lsn=self._next_lsn, op=op, ino=ino, parent_ino=parent_ino,
            a=a, b=b, mode=mode, name=name, epoch=self.epoch,
        )
        slots = self._record_slots(record, physical_weight)
        if slots > self.free_slots:
            raise NoSpace(
                f"operation log full: need {slots} slots, {self.free_slots} free"
            )
        self._next_lsn += 1
        position = self._slots_used
        self._records.append(record)
        self._positions.append(position)
        self._slots_used += slots
        self._window.append(len(self._records) - 1)
        return self._result(len(self._records) - 1, coalesced=False, physical_weight=physical_weight)

    def _try_coalesce(self, ino: int, offset: int, length: int) -> Optional[AppendResult]:
        """Sliding-window search for the record of the preceding write."""
        for index in reversed(self._window):
            record = self._records[index]
            if record.op is LogOp.WRITE and record.ino == ino:
                if record.a + record.b == offset:
                    record.b += length
                    self.total_coalesced += 1
                    return self._result(index, coalesced=True)
                break  # most recent write to this file doesn't abut: stop
        return None

    def _result(self, index: int, coalesced: bool, physical_weight: int = 1) -> AppendResult:
        record = self._records[index]
        slot = self._positions[index]
        byte_offset = slot * _SLOT
        page_offset = (byte_offset // _PAGE) * _PAGE
        page = self._encode_range(page_offset, _PAGE)
        wire = (
            physical_weight * cal.PHYSICAL_LOG_RECORD_BYTES
            if self.physical_records
            else _PAGE
        )
        self.total_wire_bytes += wire
        return AppendResult(
            record=record, coalesced=coalesced,
            region_offset=page_offset, page_bytes=page, wire_bytes=wire,
        )

    def _encode_range(self, start: int, length: int) -> bytes:
        """Materialise bytes [start, start+length) of the log region."""
        out = bytearray(length)
        for record, slot in zip(self._records, self._positions):
            byte_at = slot * _SLOT
            encoded = record.encode()
            if byte_at + len(encoded) <= start or byte_at >= start + length:
                continue
            lo = max(byte_at, start)
            hi = min(byte_at + len(encoded), start + length)
            out[lo - start : hi - start] = encoded[lo - byte_at : hi - byte_at]
        return bytes(out)

    def encode_region(self) -> bytes:
        """The full live log region image (what recovery reads back)."""
        return self._encode_range(0, self._slots_used * _SLOT)

    # -- truncation --------------------------------------------------------------------

    def reset(self) -> None:
        """Discard all records after a successful internal-state checkpoint.

        "Log records are only discarded once the checkpoint is complete"
        — the caller sequences this after the state write commits.
        """
        self.epoch += 1
        self._records.clear()
        self._positions.clear()
        self._slots_used = 0
        self._window.clear()

    # -- recovery ------------------------------------------------------------------------

    @staticmethod
    def replayable(data: bytes, epoch: int, after_lsn: int) -> List[LogRecord]:
        """Decode a log-region image and filter to records that must be
        replayed on top of a state checkpoint (matching epoch, newer lsn),
        in lsn order."""
        records = [
            r
            for r in LogRecord.decode_stream(data)
            if r.epoch == epoch and r.lsn > after_lsn
        ]
        records.sort(key=lambda r: r.lsn)
        return records
