"""Crash recovery: state-checkpoint load + operation-log replay (§III-E).

"During recovery in the event of a crash, the runtime reconstructs
metadata by replaying operations recorded in the log."

Replay needs no block addresses in the log: the circular block pool is
restored to its checkpointed state and re-allocates deterministically in
lsn order, so every replayed WRITE lands on exactly the blocks the
original write used. That determinism is what lets the log records stay
compact (metadata provenance) — and it is asserted by the recovery
tests.

Log record coalescing pays off here: Table II's recovery numbers drop
from 4 s to "near-instantaneous" runtime recovery because replay length
shrinks by the coalescing factor.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.core.config import RuntimeConfig
from repro.core.control_plane import GlobalNamespaceService
from repro.core.data_plane import DataPlane
from repro.core.microfs.blockpool import BlockPool
from repro.core.microfs.fs import _SUPERBLOCK_BYTES, MicroFS
from repro.core.microfs.inode import DirEntry, FileType, Inode
from repro.core.microfs.oplog import LogOp, LogRecord, OperationLog
from repro.errors import RecoveryError
from repro.nvme.namespace import Partition
from repro.obs.context import tracer_of
from repro.sim.engine import Environment, Event
from repro.obs.metrics import Counter

__all__ = ["RecoveryReport", "recover"]


@dataclass
class RecoveryReport:
    """What recovery did, for assertions and Table II."""

    state_loaded: bool
    state_lsn: int
    records_scanned: int
    records_replayed: int
    duration: float
    files_recovered: int


def recover(
    env: Environment,
    config: RuntimeConfig,
    data_plane: DataPlane,
    partition: Partition,
    instance_name: str = "microfs",
    uid: int = 0,
    global_namespace: Optional[GlobalNamespaceService] = None,
    counters: Optional[Counter] = None,
) -> Generator[Event, Any, tuple]:
    """Rebuild a MicroFS instance from its partition after a crash.

    Returns ``(fs, report)``. A simulation sub-generator: reading the
    superblock, state blob, and log region all cost real device time.
    """
    t0 = env.now
    fs = MicroFS(
        env, config, data_plane, partition,
        instance_name=instance_name, uid=uid,
        global_namespace=global_namespace, counters=counters,
    )
    tr = tracer_of(env)
    span = None if tr is None else tr.begin(
        "microfs.recover", cat="fs", track=instance_name,
        parent=tr.take_handoff())
    # 1. Superblock -> latest committed internal-state checkpoint.
    if tr is not None:
        tr.handoff(span)
    raw_sb = yield from data_plane.read_bytes(fs._sb_offset, _SUPERBLOCK_BYTES)
    superblock = MicroFS.decode_superblock(raw_sb)
    state_loaded = False
    state_lsn = 0
    expect_epoch = 1
    if superblock is not None:
        slot_bytes = config.state_region_bytes // 2
        slot_offset = fs._state_offset + superblock["slot"] * slot_bytes
        if tr is not None:
            tr.handoff(span)
        blob = yield from data_plane.read_bytes(slot_offset, superblock["state_len"])
        _load_state(fs, blob)
        state_loaded = True
        state_lsn = superblock["state_lsn"]
        expect_epoch = superblock["log_epoch"]
    # 2. Log region -> replayable records.
    if tr is not None:
        tr.handoff(span)
    region_bytes = yield from data_plane.read_bytes(
        fs._log_offset, config.log_region_bytes
    )
    all_records = LogRecord.decode_stream(region_bytes)
    records = OperationLog.replayable(region_bytes, expect_epoch, state_lsn)
    # 3. Replay.
    for record in records:
        _apply(fs, record)
    # Restore log bookkeeping so the instance can continue journaling.
    fs.oplog.epoch = expect_epoch
    fs.oplog._next_lsn = (records[-1].lsn + 1) if records else state_lsn + 1
    fs.state_lsn = state_lsn
    report = RecoveryReport(
        state_loaded=state_loaded,
        state_lsn=state_lsn,
        records_scanned=len(all_records),
        records_replayed=len(records),
        duration=env.now - t0,
        files_recovered=sum(
            1 for i in fs.inodes.values() if i.ftype is FileType.FILE
        ),
    )
    if tr is not None:
        tr.end(span, records_replayed=report.records_replayed,
               records_scanned=report.records_scanned,
               state_loaded=state_loaded)
    return fs, report


def _load_state(fs: MicroFS, blob: bytes) -> None:
    try:
        state = pickle.loads(blob)
    except Exception as exc:  # noqa: BLE001 - corrupt blob is a recovery error
        raise RecoveryError(f"corrupt state checkpoint: {exc}") from exc
    fs._next_ino = state["next_ino"]
    fs.uid = state["uid"]
    fs.pool = BlockPool.restore(state["pool"])
    fs.inodes = {
        ino: Inode.restore(snap) for ino, snap in state["inodes"].items()
    }
    # Rebuild the B+Tree from the persisted path->ino mapping ("The state
    # of the B+Tree can also be reconstructed upon recovery").
    fs.namespace_index = type(fs.namespace_index)(order=64)
    for path, ino in state["namespace"]:
        fs.namespace_index.insert(path, ino)
    fs._state_slot = state["state_slot"] ^ 1  # the slot we loaded is now active


def _path_of(fs: MicroFS, parent_ino: int, name: str) -> str:
    """Reverse-map an inode to its path via the namespace index."""
    if parent_ino == MicroFS.ROOT_INO:
        return f"/{name}"
    for path, ino in fs.namespace_index.items():
        if ino == parent_ino:
            return f"{path}/{name}"
    raise RecoveryError(f"replay references unknown parent inode {parent_ino}")


def _apply(fs: MicroFS, record: LogRecord) -> None:
    """Re-execute one journaled operation against in-memory state only."""
    block = fs.config.effective_block_bytes
    if record.op in (LogOp.MKDIR, LogOp.CREAT):
        ftype = FileType.DIRECTORY if record.op is LogOp.MKDIR else FileType.FILE
        parent = fs.inodes.get(record.parent_ino)
        if parent is None:
            raise RecoveryError(f"replay {record}: missing parent")
        inode = Inode(ino=record.ino, ftype=ftype, mode=record.mode, uid=fs.uid)
        fs.inodes[record.ino] = inode
        parent.add_entry(DirEntry(record.name, record.ino, ftype))
        fs.namespace_index.insert(_path_of(fs, record.parent_ino, record.name), record.ino)
        fs._next_ino = max(fs._next_ino, record.ino + 1)
        if ftype is FileType.DIRECTORY:
            _ensure_dir_blocks(fs, parent)
        else:
            _ensure_dir_blocks(fs, parent)
    elif record.op is LogOp.WRITE:
        inode = fs.inodes.get(record.ino)
        if inode is None:
            raise RecoveryError(f"replay WRITE to unknown inode {record.ino}")
        end = record.a + record.b
        needed = -(-end // block) - len(inode.blocks)
        if needed > 0:
            inode.blocks.extend(fs.pool.alloc_many(needed))
        inode.size = max(inode.size, end)
    elif record.op is LogOp.TRUNCATE:
        inode = fs.inodes.get(record.ino)
        if inode is None:
            raise RecoveryError(f"replay TRUNCATE of unknown inode {record.ino}")
        keep = -(-record.a // block)
        fs.pool.free_many(inode.blocks[keep:])
        inode.blocks = inode.blocks[:keep]
        inode.size = min(inode.size, record.a)
    elif record.op is LogOp.RENAME:
        inode = fs.inodes.get(record.ino)
        old_parent = fs.inodes.get(record.parent_ino)
        new_parent = fs.inodes.get(record.a)
        if inode is None or old_parent is None or new_parent is None:
            raise RecoveryError(f"replay RENAME with missing inode(s): {record}")
        old_base, _slash, new_base = record.name.partition("/")
        old_path = _path_of(fs, record.parent_ino, old_base)
        entry = old_parent.remove_entry(old_base)
        new_parent.add_entry(DirEntry(new_base, entry.ino, entry.ftype))
        new_path = _path_of(fs, record.a, new_base)
        fs._rekey_namespace(old_path, new_path)
    elif record.op is LogOp.UNLINK:
        inode = fs.inodes.get(record.ino)
        parent = fs.inodes.get(record.parent_ino)
        if inode is None or parent is None:
            raise RecoveryError(f"replay UNLINK of unknown inode {record.ino}")
        path = _path_of(fs, record.parent_ino, record.name)
        parent.remove_entry(record.name)
        fs.namespace_index.delete(path)
        fs.pool.free_many(inode.blocks)
        del fs.inodes[record.ino]
    elif record.op is LogOp.CLOSE:
        pass  # informational
    else:  # pragma: no cover - enum is closed
        raise RecoveryError(f"unknown log op {record.op}")


def _ensure_dir_blocks(fs: MicroFS, directory: Inode) -> None:
    """Mirror the dir-file block allocation the original op performed,
    keeping pool replay deterministic."""
    block = fs.config.effective_block_bytes
    needed = max(1, -(-directory.dir_file_bytes() // block))
    while len(directory.blocks) < needed:
        directory.blocks.append(fs.pool.alloc())
