"""Multi-level checkpointing (§III-F, "Handling Cascading Failures").

"Most checkpoints are still handled by NVMe-CR, but every so often, one
checkpoint is put on a slower but more reliable parallel filesystem,
such as Lustre."

The checkpointer drives its tiers through duck-typed clients:

* level 1 (classic mode) — a :class:`PosixShim` (NVMe-CR) or any
  baseline filesystem client exposing the same intercepted-POSIX
  surface,
* level 2 (classic mode) — a PFS client exposing
  ``write_file``/``read_file`` (implemented by
  :class:`repro.baselines.lustre.LustreCluster`),
* or an explicit tier hierarchy (``targets``) of
  :class:`~repro.core.placement.TierTarget` entries, fastest first,
  each exposing ``write_file``/``read_file`` — the tiered mode the
  ``tiers`` experiment runs with NVM/CXL fast tiers.

*Which* tier each checkpoint lands on is a pluggable
:class:`~repro.core.placement.PlacementPolicy`; the default
:class:`~repro.core.placement.FixedIntervalPolicy` reproduces the
paper's every-k-th rule bit-identically.

Recovery walks checkpoints newest-first and restores from the newest
one that survived — if a fast tier was lost to a cascading failure,
the most recent durable checkpoint bounds the lost work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Iterable, List, Optional, Sequence

from repro.core.placement import FixedIntervalPolicy, PlacementPolicy, TierTarget
from repro.errors import InvalidArgument, RecoveryError
from repro.sim.engine import Event

__all__ = ["CheckpointRecord", "MultiLevelCheckpointer"]


@dataclass
class CheckpointRecord:
    """Bookkeeping for one checkpoint instance of one rank."""

    step: int
    level: int
    path: str
    nbytes: int
    written_at: float


class MultiLevelCheckpointer:
    """Tiered checkpoint policy for one rank."""

    def __init__(
        self,
        level1=None,
        level2=None,
        pfs_interval: int = 10,
        directory: str = "/ckpt",
        rank: int = 0,
        policy: Optional[PlacementPolicy] = None,
        targets: Optional[Sequence[TierTarget]] = None,
    ):
        """``pfs_interval`` = k: every k-th checkpoint goes to the
        durable tier (the paper's Table II uses one-in-ten). ``rank``
        qualifies file names so the N-N pattern holds on
        shared-namespace systems too.

        Classic mode passes ``level1``/``level2`` clients; tiered mode
        passes ``targets`` (fastest first; levels are positional,
        1-based). ``policy`` defaults to the paper's fixed-interval
        rule either way.
        """
        if pfs_interval < 1:
            raise InvalidArgument(
                f"pfs_interval must be >= 1, got {pfs_interval}"
            )
        if targets is not None:
            targets = list(targets)
            if len(targets) < 2:
                raise InvalidArgument(
                    f"need at least 2 tier targets, got {len(targets)}"
                )
            for index, target in enumerate(targets):
                if target is None or target.client is None:
                    raise InvalidArgument(
                        f"tier target {index + 1} has no client"
                    )
                target.level = index + 1
        else:
            if level1 is None:
                raise InvalidArgument(
                    "MultiLevelCheckpointer needs a non-None level1 client "
                    "(or an explicit tier target list)"
                )
            # level2 may be None: the degenerate no-durable-tier mode the
            # resilience orchestrator runs to show cascading loss is fatal.
            # Placing a checkpoint there raises at write time.
        self.level1 = level1
        self.level2 = level2
        self.pfs_interval = pfs_interval
        self.directory = directory
        self.rank = rank
        self.targets = targets
        n_levels = 2 if targets is None else len(targets)
        self.policy: PlacementPolicy = (
            policy
            if policy is not None
            else FixedIntervalPolicy(pfs_interval, durable_level=n_levels)
        )
        self.records: List[CheckpointRecord] = []
        self._dir_made = False

    @property
    def n_levels(self) -> int:
        return 2 if self.targets is None else len(self.targets)

    def level_for(self, step: int) -> int:
        """1-based checkpoint levels; step counts from 0."""
        return self.policy.preview(step)

    def _path(self, step: int) -> str:
        return f"{self.directory}/rank{self.rank:05d}_ckpt_{step:06d}.dat"

    def _client_for(self, level: int):
        if self.targets is not None:
            return self.targets[level - 1].client
        return self.level1 if level == 1 else self.level2

    # -- write path -------------------------------------------------------------------

    def write_checkpoint(self, step: int, nbytes: int) -> Generator[Event, Any, CheckpointRecord]:
        """Write one checkpoint to the tier the policy selects."""
        level = self.policy.place(step, nbytes, self._now())
        if not 1 <= level <= self.n_levels:
            raise InvalidArgument(
                f"policy placed step {step} on level {level}; "
                f"have levels 1..{self.n_levels}"
            )
        path = self._path(step)
        if self.targets is None and level == 2 and self.level2 is None:
            raise InvalidArgument(
                f"policy placed step {step} on level 2 but no durable "
                "tier client was configured"
            )
        if self.targets is not None:
            yield from self.targets[level - 1].client.write_file(path, nbytes)
            written_at = self._now()
        elif level == 1:
            if not self._dir_made:
                yield from self.level1.mkdir(self.directory)
                self._dir_made = True
            fd = yield from self.level1.open(path, "w")
            yield from self.level1.write(fd, nbytes)
            yield from self.level1.fsync(fd)
            yield from self.level1.close(fd)
            written_at = self._now()
        else:
            yield from self.level2.write_file(path, nbytes)
            written_at = self._now()
        record = CheckpointRecord(step, level, path, nbytes, written_at)
        self.records.append(record)
        return record

    # -- recovery -----------------------------------------------------------------------

    def recover_latest(
        self,
        level1_alive: bool = True,
        prefer_level: Optional[int] = None,
        dead_levels: Iterable[int] = (),
    ) -> Generator[Event, Any, CheckpointRecord]:
        """Read back the newest recoverable checkpoint.

        ``level1_alive=False`` models a cascading failure that took the
        NVMe-CR tier's data with it: only level-2 checkpoints qualify.
        ``dead_levels`` generalises that to any tier subset.
        ``prefer_level`` restricts recovery to one tier (Table II times
        normal recovery from the fast tier).
        """
        dead = set(dead_levels)
        if not level1_alive:
            dead.add(1)
        for record in reversed(self.records):
            if record.level in dead:
                continue
            if prefer_level is not None and record.level != prefer_level:
                continue
            if self.targets is not None:
                yield from self.targets[record.level - 1].client.read_file(
                    record.path)
            elif record.level == 1:
                fd = yield from self.level1.open(record.path, "r")
                yield from self.level1.read(fd, record.nbytes)
                yield from self.level1.close(fd)
            else:
                yield from self.level2.read_file(record.path)
            return record
        raise RecoveryError("no recoverable checkpoint exists")

    # -- fault hooks ----------------------------------------------------------------------

    def forget_levels(self, levels: Iterable[int]) -> None:
        """A strike wiped these tiers: drop their records (and tell a
        loss-aware policy, so its risk bookkeeping restarts)."""
        lost = set(levels)
        self.records = [r for r in self.records if r.level not in lost]
        note = getattr(self.policy, "note_loss", None)
        if note is not None:
            note(sorted(lost))

    # -- accounting ----------------------------------------------------------------------

    def _now(self) -> float:
        # All tiers carry an env; prefer the fast tier's runtime clock.
        if self.targets is not None:
            return self.targets[0].client.env.now
        runtime = getattr(self.level1, "runtime", None)
        if runtime is not None:
            return runtime.env.now
        return self.level2.env.now

    def tier_bytes(self) -> Dict[int, int]:
        out: Dict[int, int] = {
            level: 0 for level in range(1, self.n_levels + 1)
        }
        for record in self.records:
            out[record.level] += record.nbytes
        return out
