"""Multi-level checkpointing (§III-F, "Handling Cascading Failures").

"Most checkpoints are still handled by NVMe-CR, but every so often, one
checkpoint is put on a slower but more reliable parallel filesystem,
such as Lustre."

The checkpointer drives two tiers through duck-typed clients:

* level 1 — a :class:`PosixShim` (NVMe-CR) or any baseline filesystem
  client exposing the same intercepted-POSIX surface,
* level 2 — a PFS client exposing ``write_file``/``read_file``
  (implemented by :class:`repro.baselines.lustre.LustreClient`).

Recovery walks checkpoints newest-first and restores from the newest
one that survived — if the level-1 tier was lost to a cascading failure,
the most recent level-2 checkpoint bounds the lost work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from repro.errors import RecoveryError
from repro.sim.engine import Event

__all__ = ["CheckpointRecord", "MultiLevelCheckpointer"]


@dataclass
class CheckpointRecord:
    """Bookkeeping for one checkpoint instance of one rank."""

    step: int
    level: int
    path: str
    nbytes: int
    written_at: float


class MultiLevelCheckpointer:
    """Two-tier checkpoint policy for one rank."""

    def __init__(
        self,
        level1,
        level2,
        pfs_interval: int = 10,
        directory: str = "/ckpt",
        rank: int = 0,
    ):
        """``pfs_interval`` = k: every k-th checkpoint goes to level 2
        (the paper's Table II uses one-in-ten). ``rank`` qualifies file
        names so the N-N pattern holds on shared-namespace systems too.
        """
        if pfs_interval < 1:
            raise ValueError(f"pfs_interval must be >= 1, got {pfs_interval}")
        self.level1 = level1
        self.level2 = level2
        self.pfs_interval = pfs_interval
        self.directory = directory
        self.rank = rank
        self.records: List[CheckpointRecord] = []
        self._dir_made = False

    def level_for(self, step: int) -> int:
        """1-based checkpoint levels; step counts from 0."""
        return 2 if (step + 1) % self.pfs_interval == 0 else 1

    def _path(self, step: int) -> str:
        return f"{self.directory}/rank{self.rank:05d}_ckpt_{step:06d}.dat"

    # -- write path -------------------------------------------------------------------

    def write_checkpoint(self, step: int, nbytes: int) -> Generator[Event, Any, CheckpointRecord]:
        """Write one checkpoint to the tier the policy selects."""
        level = self.level_for(step)
        path = self._path(step)
        if level == 1:
            if not self._dir_made:
                yield from self.level1.mkdir(self.directory)
                self._dir_made = True
            fd = yield from self.level1.open(path, "w")
            yield from self.level1.write(fd, nbytes)
            yield from self.level1.fsync(fd)
            yield from self.level1.close(fd)
            written_at = self._now()
        else:
            yield from self.level2.write_file(path, nbytes)
            written_at = self._now()
        record = CheckpointRecord(step, level, path, nbytes, written_at)
        self.records.append(record)
        return record

    # -- recovery -----------------------------------------------------------------------

    def recover_latest(
        self, level1_alive: bool = True, prefer_level: Optional[int] = None
    ) -> Generator[Event, Any, CheckpointRecord]:
        """Read back the newest recoverable checkpoint.

        ``level1_alive=False`` models a cascading failure that took the
        NVMe-CR tier's data with it: only level-2 checkpoints qualify.
        ``prefer_level`` restricts recovery to one tier (Table II times
        normal recovery from the fast tier).
        """
        for record in reversed(self.records):
            if record.level == 1 and not level1_alive:
                continue
            if prefer_level is not None and record.level != prefer_level:
                continue
            if record.level == 1:
                fd = yield from self.level1.open(record.path, "r")
                yield from self.level1.read(fd, record.nbytes)
                yield from self.level1.close(fd)
            else:
                yield from self.level2.read_file(record.path)
            return record
        raise RecoveryError("no recoverable checkpoint exists")

    # -- accounting ----------------------------------------------------------------------

    def _now(self) -> float:
        # Both tiers carry an env; prefer level1's runtime clock.
        runtime = getattr(self.level1, "runtime", None)
        if runtime is not None:
            return runtime.env.now
        return self.level2.env.now

    def tier_bytes(self) -> Dict[int, int]:
        out: Dict[int, int] = {1: 0, 2: 0}
        for record in self.records:
            out[record.level] += record.nbytes
        return out
