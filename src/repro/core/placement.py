"""Checkpoint placement policies over heterogeneous storage tiers.

§III-F's rule — "every so often, one checkpoint is put on a slower but
more reliable parallel filesystem" — is a *policy*, not a mechanism.
This module makes it pluggable:

* :class:`FixedIntervalPolicy` is the paper's every-k-th rule, kept
  bit-identical to the historical ``MultiLevelCheckpointer.level_for``
  (the pinned tab2 baselines run through it unchanged);
* :class:`CostModelPolicy` picks, per checkpoint, the tier minimising
  expected cost: the tier's write time plus the expected rework if a
  tier-loss strike lands before the next durable checkpoint — a
  function of each tier's write bandwidth, residual failure
  probability, and restore cost (the placement question JASS poses for
  byte-addressable NVM).

A :class:`TierTarget` is one placement destination: a client exposing
``write_file``/``read_file`` plus the stats the cost model needs.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.errors import InvalidArgument

__all__ = [
    "CostModelPolicy",
    "FixedIntervalPolicy",
    "PlacementPolicy",
    "TierTarget",
]


class TierTarget:
    """One checkpoint destination in a tier hierarchy.

    ``residual_failure_prob`` is the probability that a tier-loss
    strike takes this tier's data with it (0.0 = durable: the PFS).
    ``restore_cost_s`` is a fixed per-restore overhead on top of the
    read-back transfer (remount, reconnect, namespace scan).
    """

    __slots__ = (
        "name",
        "client",
        "level",
        "write_bandwidth",
        "read_bandwidth",
        "write_latency",
        "residual_failure_prob",
        "restore_cost_s",
    )

    def __init__(
        self,
        name: str,
        client: Any,
        write_bandwidth: float,
        read_bandwidth: float,
        write_latency: float = 0.0,
        residual_failure_prob: float = 0.0,
        restore_cost_s: float = 0.0,
        level: int = 0,
    ):
        if write_bandwidth <= 0 or read_bandwidth <= 0:
            raise InvalidArgument(f"tier {name}: bandwidths must be positive")
        if not 0.0 <= residual_failure_prob <= 1.0:
            raise InvalidArgument(
                f"tier {name}: residual_failure_prob must be in [0, 1]"
            )
        self.name = name
        self.client = client
        self.level = level
        self.write_bandwidth = write_bandwidth
        self.read_bandwidth = read_bandwidth
        self.write_latency = write_latency
        self.residual_failure_prob = residual_failure_prob
        self.restore_cost_s = restore_cost_s

    @property
    def durable(self) -> bool:
        return self.residual_failure_prob == 0.0

    def write_time(self, nbytes: int) -> float:
        return self.write_latency + nbytes / self.write_bandwidth

    def read_time(self, nbytes: int) -> float:
        return self.restore_cost_s + nbytes / self.read_bandwidth

    def __repr__(self) -> str:
        return (
            f"TierTarget({self.name!r}, level={self.level}, "
            f"residual={self.residual_failure_prob:g})"
        )


class PlacementPolicy:
    """Chooses the 1-based checkpoint level for each step.

    ``place`` is the write-path hook (stateful policies update their
    bookkeeping there, exactly once per checkpoint); ``preview`` must
    be side-effect-free — it backs the public
    ``MultiLevelCheckpointer.level_for``.
    """

    __slots__ = ()

    def place(self, step: int, nbytes: int, now: float) -> int:
        raise NotImplementedError

    def preview(self, step: int) -> int:
        raise NotImplementedError


class FixedIntervalPolicy(PlacementPolicy):
    """The paper's every-k-th rule (§III-F / Table II), bit-identical.

    Steps count from 0; every ``interval``-th checkpoint goes to the
    durable level, all others to the fast level.
    """

    __slots__ = ("interval", "fast_level", "durable_level")

    def __init__(self, interval: int, fast_level: int = 1, durable_level: int = 2):
        if interval < 1:
            raise InvalidArgument(
                f"pfs_interval must be >= 1, got {interval}"
            )
        self.interval = interval
        self.fast_level = fast_level
        self.durable_level = durable_level

    def place(self, step: int, nbytes: int, now: float) -> int:
        return self.preview(step)

    def preview(self, step: int) -> int:
        return (
            self.durable_level
            if (step + 1) % self.interval == 0
            else self.fast_level
        )


class CostModelPolicy(PlacementPolicy):
    """Expected-cost placement over a tier list (fastest first).

    For each checkpoint, every tier ``t`` is scored as::

        cost(t) = write_time(t)
                + exposure / strike_mtbf
                  * residual_failure_prob(t)
                  * (work_at_risk + restore_time(t))

    where ``work_at_risk`` is the wall time since the last checkpoint
    that would survive a strike killing tier ``t``, and ``exposure`` is
    that window extended by one more checkpoint interval (the soonest a
    better checkpoint could exist). Durable tiers have zero risk term,
    so as unprotected work accumulates the policy pushes checkpoints
    down-hierarchy — reproducing an adaptive Young/Daly-style durable
    interval without hard-coding k.
    """

    __slots__ = ("targets", "strike_mtbf", "_last_now", "_last_at")

    def __init__(self, targets: Sequence[TierTarget], strike_mtbf: float):
        if not targets:
            raise InvalidArgument("CostModelPolicy needs at least one tier")
        if strike_mtbf <= 0:
            raise InvalidArgument(
                f"strike_mtbf must be positive, got {strike_mtbf}"
            )
        if not any(t.durable for t in targets):
            raise InvalidArgument(
                "CostModelPolicy needs a durable tier (residual prob 0)"
            )
        self.targets = list(targets)
        self.strike_mtbf = strike_mtbf
        self._last_now: Optional[float] = None
        #: Last checkpoint wall time per level (1-based index 0 unused).
        self._last_at: List[Optional[float]] = [None] * (len(self.targets) + 1)

    # -- scoring --------------------------------------------------------------

    def _since_surviving(self, level: int, now: float) -> float:
        """Wall time since the newest checkpoint that survives losing
        ``level`` and every less-reliable tier above it."""
        threshold = self.targets[level - 1].residual_failure_prob
        newest: Optional[float] = None
        for lv, at in enumerate(self._last_at[1:], start=1):
            if at is None:
                continue
            if self.targets[lv - 1].residual_failure_prob < threshold:
                if newest is None or at > newest:
                    newest = at
        if newest is None:
            return now
        return max(0.0, now - newest)

    def _score(self, level: int, nbytes: int, now: float, interval: float) -> float:
        target = self.targets[level - 1]
        write = target.write_time(nbytes)
        if target.durable:
            return write
        at_risk = self._since_surviving(level, now)
        exposure = at_risk + interval + write
        p_strike = min(1.0, exposure / self.strike_mtbf)
        rework = at_risk + interval + target.read_time(nbytes)
        return write + p_strike * target.residual_failure_prob * rework

    def _choose(self, nbytes: int, now: float) -> int:
        interval = (
            now - self._last_now if self._last_now is not None else 0.0
        )
        best_level = 1
        best_cost = float("inf")
        for level in range(1, len(self.targets) + 1):
            cost = self._score(level, nbytes, now, interval)
            if cost < best_cost:
                best_cost = cost
                best_level = level
        return best_level

    # -- PlacementPolicy ------------------------------------------------------

    def place(self, step: int, nbytes: int, now: float) -> int:
        level = self._choose(nbytes, now)
        self._last_at[level] = now
        self._last_now = now
        return level

    def preview(self, step: int) -> int:
        # Side-effect-free estimate with the current bookkeeping; uses
        # a nominal checkpoint size of the last interval's exposure.
        now = self._last_now if self._last_now is not None else 0.0
        return self._choose(0, now)

    def note_loss(self, levels: Sequence[int]) -> None:
        """Fault hook: checkpoints on ``levels`` were wiped."""
        for level in levels:
            if 1 <= level < len(self._last_at):
                self._last_at[level] = None
