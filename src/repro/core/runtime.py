"""NVMe-CR runtime instance: one per application process (§III-B).

Wires the three per-rank components of Figure 3 — control plane (inside
:class:`MicroFS`), data plane, and the rank's slice of the storage
balancer's plan — around the rank's MPI communicator. Initialisation is
the *only* coordinated step ("coordination is only necessary in the
initialization routine"):

1. split ``COMM_WORLD`` by assigned SSD into ``MPI_COMM_CR``,
2. validate namespace ownership (security model),
3. partition the namespace by ``MPI_COMM_CR`` rank,
4. connect the NVMf session and build the MicroFS instance,
5. barrier; after this, no instance ever coordinates again.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro.core.balancer import BalancerPlan
from repro.core.config import RuntimeConfig
from repro.core.control_plane import GlobalNamespaceService
from repro.core.data_plane import DataPlane
from repro.core.microfs.fs import MicroFS
from repro.core.microfs.recovery import RecoveryReport, recover
from repro.core.security import SecurityManager
from repro.errors import SimulationError
from repro.fabric.nvmf import NVMfInitiator, NVMfTarget
from repro.fabric.rdma import RdmaFabric
from repro.fabric.transport import FabricTransport, LocalPCIeTransport, Transport
from repro.mpi.comm import Communicator
from repro.obs.context import tracer_of
from repro.obs.tracer import NULL_CONTEXT
from repro.sim.engine import Environment, Event
from repro.obs.metrics import Counter

__all__ = ["NVMeCRRuntime"]


class NVMeCRRuntime:
    """One rank's ephemeral storage runtime. Lives exactly as long as the
    application ("The runtime mirrors the lifespan of the application")."""

    def __init__(
        self,
        env: Environment,
        config: RuntimeConfig,
        comm: Communicator,
        plan: BalancerPlan,
        node_name: str,
        fabric: RdmaFabric,
        targets: Dict[str, NVMfTarget],
        uid: int = 0,
        global_namespace: Optional[GlobalNamespaceService] = None,
    ):
        self.env = env
        self.config = config
        self.comm = comm
        self.plan = plan
        self.node_name = node_name
        self.fabric = fabric
        self.targets = targets
        self.uid = uid
        self.global_namespace = global_namespace
        self.security = SecurityManager(plan.job.spec.name, uid)
        self.counters = Counter()
        self.initiator = NVMfInitiator(env, node_name, fabric)
        self.comm_cr: Optional[Communicator] = None
        self.fs: Optional[MicroFS] = None
        self.data_plane: Optional[DataPlane] = None
        self._ckpt_stop: Optional[Event] = None
        self._initialized = False

    @property
    def _track(self) -> str:
        return f"{self.plan.job.spec.name}.r{self.comm.rank}"

    def _span(self, name: str, **attrs):
        tr = tracer_of(self.env)
        if tr is None:
            return NULL_CONTEXT
        return tr.span(name, cat="runtime", track=self._track, **attrs)

    # -- lifecycle -------------------------------------------------------------------

    def init(self, start_checkpointer: bool = True) -> Generator[Event, Any, None]:
        """The work behind the intercepted ``MPI_Init`` (§III-C)."""
        if self._initialized:
            raise SimulationError("runtime already initialized")
        with self._span("runtime.init"):
            yield from self._init(start_checkpointer)

    def _init(self, start_checkpointer: bool) -> Generator[Event, Any, None]:
        rank = self.comm.rank
        grant = self.plan.grant_of_rank(rank)
        # 1. MPI_COMM_CR: all processes sharing this SSD.
        self.comm_cr = yield from self.comm.split(self.plan.color_of_rank(rank))
        # 2. Security: the namespace must belong to this job.
        self.security.check_namespace(grant.namespace)
        # 3. Private partition of the shared namespace.
        partition = self.plan.partition_for(rank, self.config.effective_block_bytes)
        # 4. Data plane over NVMf (or local PCIe when co-located).
        transport = self._build_transport(grant)
        self.data_plane = DataPlane(
            self.env, transport, grant.namespace.nsid, self.config, self.counters
        )
        self.fs = MicroFS(
            self.env, self.config, self.data_plane, partition,
            instance_name=f"{self.plan.job.spec.name}.r{rank}",
            uid=self.uid,
            global_namespace=self.global_namespace,
            counters=self.counters,
        )
        if start_checkpointer:
            self._ckpt_stop = self.env.event()
            self.env.process(self.fs.background_checkpointer(stop_event=self._ckpt_stop))
        # 5. Everybody ready before the application proceeds.
        yield from self.comm.barrier()
        self._initialized = True

    def _build_transport(self, grant) -> Transport:
        if grant.node_name == self.node_name:
            return LocalPCIeTransport(self.env, grant.ssd)
        entry = self.targets[grant.node_name]
        candidates = entry if isinstance(entry, (list, tuple)) else [entry]
        for target in candidates:
            if target.ssd is grant.ssd:
                # Bind initiator+target so the unified pipeline's retry
                # path can reconnect after a target daemon restart.
                return FabricTransport(
                    self.initiator.connect(target),
                    initiator=self.initiator,
                    target=target,
                )
        raise SimulationError(
            f"no NVMf target on {grant.node_name} exports {grant.ssd.name}"
        )

    def finalize(self) -> Generator[Event, Any, None]:
        """The work behind the intercepted ``MPI_Finalize``: retire the
        background thread, drop sessions, and rendezvous."""
        self._require_init()
        with self._span("runtime.finalize"):
            if self._ckpt_stop is not None and not self._ckpt_stop.triggered:
                self._ckpt_stop.succeed()
            yield from self.comm.barrier()
            self.initiator.disconnect_all()
            self._initialized = False

    def recover(self) -> Generator[Event, Any, RecoveryReport]:
        """Rebuild this rank's MicroFS from its partition after a crash.

        Requires init-time wiring (plan, transport) but a *fresh* fs —
        models runtime restart on the replacement process.
        """
        if self.data_plane is None:
            raise SimulationError("recover() before init()")
        rank = self.comm.rank
        partition = self.plan.partition_for(rank, self.config.effective_block_bytes)
        with self._span("runtime.recover"):
            fs, report = yield from recover(
                self.env, self.config, self.data_plane, partition,
                instance_name=f"{self.plan.job.spec.name}.r{rank}",
                uid=self.uid,
                global_namespace=self.global_namespace,
                counters=self.counters,
            )
        self.fs = fs
        ctx = self.env.obs
        if ctx is not None:
            ctx.metrics.counter("runtime.recoveries").add(1)
            ctx.metrics.histogram("runtime.recovery_replayed_records",
                                  unit="1").observe(report.records_replayed)
        return report

    # -- helpers ------------------------------------------------------------------------

    def _require_init(self) -> None:
        if not self._initialized or self.fs is None:
            raise SimulationError("runtime not initialized (call init())")

    @property
    def microfs(self) -> MicroFS:
        self._require_init()
        return self.fs
