"""The NVMe-CR security model (§III-F, "Security Model").

Two independent mechanisms:

1. **Namespace isolation** — jobs receive whole NVMe namespaces; a
   runtime may only attach namespaces owned by its own job. "This
   approach allows SSDs to be shared between applications while relying
   on the isolation property of namespaces to maintain security."
2. **POSIX permission checks** — the control plane (a trusted
   intermediary between application and SSD) checks uid/mode on file
   operations; implemented in :meth:`MicroFS._permission_check` and
   exercised by the tests here via the public API.
"""

from __future__ import annotations

from repro.errors import PermissionDenied
from repro.nvme.namespace import Namespace

__all__ = ["SecurityManager"]


class SecurityManager:
    """Validates namespace attachment at runtime initialisation."""

    def __init__(self, job_name: str, uid: int):
        self.job_name = job_name
        self.uid = uid
        self.denials = 0

    def check_namespace(self, namespace: Namespace) -> None:
        """Reject attaching a namespace owned by a different job."""
        if namespace.owner_job != self.job_name:
            self.denials += 1
            raise PermissionDenied(
                f"job {self.job_name!r} may not attach namespace "
                f"{namespace.nsid} owned by {namespace.owner_job!r}"
            )

    def can_access(self, namespace: Namespace) -> bool:
        try:
            self.check_namespace(namespace)
        except PermissionDenied:
            return False
        return True
