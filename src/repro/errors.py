"""Exception hierarchy for the NVMe-CR reproduction.

Every package raises subclasses of :class:`ReproError` so callers can
catch simulator-level failures without masking programming errors.
POSIX-shaped failures carry an ``errno``-style name so the interception
shim (:mod:`repro.core.interception`) can map them back onto the return
conventions applications expect.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------
# Simulation kernel
# --------------------------------------------------------------------------


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly or reached a bad state."""


class Deadlock(SimulationError):
    """``run(until=...)`` could not advance: no events before the horizon."""


# --------------------------------------------------------------------------
# Devices and fabric
# --------------------------------------------------------------------------


class DeviceError(ReproError):
    """Generic NVMe device failure."""


class OutOfSpace(DeviceError):
    """A namespace or partition has no free blocks left."""


class InvalidCommand(DeviceError):
    """A malformed NVMe command was submitted (bad LBA range, bad nsid...)."""


class DevicePoweredOff(DeviceError):
    """Command submitted to a device that lost power."""


class FabricError(ReproError):
    """NVMe-over-Fabrics transport failure (disconnected QP, bad target)."""


class DeadlineExceeded(ReproError):
    """An IORequest's deadline passed before its retries could finish."""


# --------------------------------------------------------------------------
# Filesystem / runtime (POSIX-shaped)
# --------------------------------------------------------------------------


class FSError(ReproError):
    """Base class for filesystem errors; carries a POSIX errno name."""

    errno_name = "EIO"


class FileNotFound(FSError):
    """ENOENT: path does not exist."""

    errno_name = "ENOENT"


class FileExists(FSError):
    """EEXIST: exclusive create of an existing path."""

    errno_name = "EEXIST"


class NotADirectory(FSError):
    """ENOTDIR: a path component is not a directory."""

    errno_name = "ENOTDIR"


class IsADirectory(FSError):
    """EISDIR: data operation attempted on a directory."""

    errno_name = "EISDIR"


class DirectoryNotEmpty(FSError):
    """ENOTEMPTY: rmdir of a non-empty directory."""

    errno_name = "ENOTEMPTY"


class BadFileDescriptor(FSError):
    """EBADF: operation on a closed or unknown descriptor."""

    errno_name = "EBADF"


class NoSpace(FSError):
    """ENOSPC: the block pool is exhausted."""

    errno_name = "ENOSPC"


class PermissionDenied(FSError):
    """EACCES: the security model rejected the access."""

    errno_name = "EACCES"


class InvalidArgument(FSError):
    """EINVAL: bad offset, size, or flag combination."""

    errno_name = "EINVAL"


# --------------------------------------------------------------------------
# Storage-system registry
# --------------------------------------------------------------------------


class UnknownSystem(ReproError):
    """A storage-system name not present in :mod:`repro.systems`."""


# --------------------------------------------------------------------------
# Scheduler / balancer
# --------------------------------------------------------------------------


class SchedulerError(ReproError):
    """The job scheduler could not satisfy a request."""


class AllocationError(SchedulerError):
    """No storage allocation satisfying the constraints exists."""


class RecoveryError(ReproError):
    """Log replay or state-checkpoint load failed during recovery."""


class ConsensusError(ReproError):
    """A Raft-group operation could not complete (no quorum, timeout)."""


class NotLeader(ConsensusError):
    """A proposal reached a non-leader member; retry at ``leader_hint``."""

    def __init__(self, leader_hint=None):
        super().__init__(f"not the leader (hint: {leader_hint})")
        self.leader_hint = leader_hint
