"""Engine-neutral execution layer: plans, executors, deterministic merge.

Experiments describe *what* to simulate as an :class:`ExecutionPlan` —
an ordered list of independent :class:`SimUnit` specs plus a reduce
function — and an executor decides *where* the units run:

* :class:`InProcessExecutor` — the existing behaviour: every unit runs
  sequentially on this process's event loop.
* :class:`ShardedExecutor` — partitions units across worker processes
  (deterministic longest-processing-time assignment), runs each shard's
  units in plan order, and merges per-unit event streams, metrics
  snapshots, spans, and fault timelines back into one result with a
  stable global order.

The invariant both backends uphold: **same seed, same plan ⇒ bit
identical merged results, for any shard count** — unit outputs depend
only on their parameters (each builds its own seeded environment), and
the merge is keyed by unit index, never by completion order.
"""

from repro.exec.executors import (
    ExecutionError,
    Executor,
    InProcessExecutor,
    ShardedExecutor,
    make_executor,
    run_unit,
)
from repro.exec.merge import MergedArtifacts, merge_results
from repro.exec.plan import ExecutionPlan, ExecutionResult, SimUnit, UnitResult

__all__ = [
    "ExecutionError",
    "ExecutionPlan",
    "ExecutionResult",
    "Executor",
    "InProcessExecutor",
    "MergedArtifacts",
    "ShardedExecutor",
    "SimUnit",
    "UnitResult",
    "make_executor",
    "merge_results",
    "run_unit",
]
