"""Plan executors: in-process, and sharded across worker processes.

This module is the one place the reproduction touches process-level
machinery (``multiprocessing``, ``os.getpid``, wall-clock timing for
shard diagnostics).  DetLint allowlists exactly this file for DET001
(wall clock) and DET008 (process identity): worker wall times and pids
are diagnostics that never feed simulated time or any fingerprinted
field, so determinism is preserved by construction — the merge layer is
keyed by unit index alone.

Shard assignment is deterministic longest-processing-time: units sort
by declared ``weight`` (descending, index tiebreak) and greedily land on
the least-loaded shard.  Assignment affects only *where* a unit runs,
never its result, so rebalancing is always safe.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Any, List, Optional, Sequence, Tuple

from repro.exec.merge import merge_results
from repro.exec.plan import (
    ExecutionPlan,
    ExecutionResult,
    SimUnit,
    UnitResult,
    resolve_unit_fn,
)

__all__ = ["ExecutionError", "Executor", "InProcessExecutor",
           "ShardedExecutor", "assign_units", "make_executor", "run_unit"]


class ExecutionError(RuntimeError):
    """A unit or worker shard failed; carries the worker traceback."""


def run_unit(unit: SimUnit, shard: int = 0, trace: Optional[bool] = None,
             profile: Optional[bool] = None,
             telemetry: Optional[bool] = None) -> UnitResult:
    """Run one unit in this process and harvest its observability.

    The unit function executes inside a nested ``obs.capture`` session
    (inheriting the outer session's switches unless overridden), so
    every environment it builds through :mod:`repro.systems` is
    collected: metrics snapshots, spans, event counts, and the final
    simulated clock all land on the :class:`UnitResult`.  Contexts are
    re-registered with any outer session afterwards, keeping CLI-level
    ``--metrics``/``--trace`` working through the plan path.
    """
    from repro import obs
    from repro.obs.context import current_session

    fn = resolve_unit_fn(unit.fn)
    session = current_session()
    want_trace = trace if trace is not None else (
        session.trace if session is not None else False)
    want_profile = profile if profile is not None else (
        session.profile if session is not None else False)
    want_telemetry = telemetry if telemetry is not None else (
        getattr(session, "telemetry", False) if session is not None else False)
    t0 = time.perf_counter()
    with obs.capture(trace=want_trace, profile=want_profile,
                     telemetry=want_telemetry) as cap:
        payload = fn(**unit.params)
    wall = time.perf_counter() - t0

    timeline: List[dict] = []
    if isinstance(payload, dict) and "_timeline" in payload:
        timeline = payload.pop("_timeline") or []

    contexts = cap.contexts
    from repro.obs.metrics import MetricsRegistry

    metrics = MetricsRegistry()
    for ctx in contexts:
        metrics.merge(ctx.metrics)
    spans: List[dict] = []
    for ctx in contexts:
        if ctx.tracer.enabled:
            spans.extend(s.to_dict() for s in ctx.tracer.spans)
            spans.extend(s.to_dict() for s in ctx.tracer.instants)

    if session is not None:
        for ctx in contexts:
            session.register(ctx)

    return UnitResult(
        index=unit.index,
        label=unit.label,
        payload=payload,
        sim_now=max((ctx.env.now for ctx in contexts), default=0.0),
        events_scheduled=sum(ctx.env.events_scheduled for ctx in contexts),
        metrics=metrics.to_snapshot(),
        spans=spans,
        timeline=timeline,
        shard=shard,
        wall_s=wall,
    )


def assign_units(units: Sequence[SimUnit], shards: int) -> List[List[SimUnit]]:
    """Deterministic LPT partition: heaviest first onto the lightest shard."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    buckets: List[List[SimUnit]] = [[] for _ in range(shards)]
    loads = [0.0] * shards
    for unit in sorted(units, key=lambda u: (-u.weight, u.index)):
        target = min(range(shards), key=lambda s: (loads[s], s))
        buckets[target].append(unit)
        loads[target] += unit.weight
    for bucket in buckets:
        bucket.sort(key=lambda u: u.index)  # run in plan order within a shard
    return buckets


class Executor:
    """Executes an :class:`ExecutionPlan`; subclasses pick the substrate."""

    def execute(self, plan: ExecutionPlan) -> ExecutionResult:
        raise NotImplementedError


class InProcessExecutor(Executor):
    """The classic backend: every unit on this process's event loop."""

    def execute(self, plan: ExecutionPlan) -> ExecutionResult:
        t0 = time.perf_counter()
        results = [run_unit(unit) for unit in plan.units]
        merged = merge_results(plan, results)
        return ExecutionResult(
            value=plan.reduce(results),
            results=results,
            merged=merged,
            shards=1,
            backend="in-process",
            wall_s=time.perf_counter() - t0,
        )


def _shard_worker(shard_id: int, units: List[SimUnit], conn: Any,
                  trace: bool, profile: bool, telemetry: bool) -> None:
    """Worker-process entry point: run one shard's units in plan order.

    Runs in a child process (fork or spawn); the pid is reported for
    diagnostics only.  Any inherited capture session belongs to the
    parent and is dropped before running.
    """
    from repro.obs import context as obs_context

    obs_context._SESSION = None  # forked workers must not feed the parent's session
    pid = os.getpid()
    try:
        results = [run_unit(unit, shard=shard_id, trace=trace,
                            profile=profile, telemetry=telemetry)
                   for unit in units]
        conn.send(("ok", shard_id, pid, results))
    except BaseException:  # noqa: BLE001 - worker must report, not die silently
        conn.send(("error", shard_id, pid, traceback.format_exc()))
    finally:
        conn.close()


class ShardedExecutor(Executor):
    """Partitions units across worker processes; merges deterministically.

    ``start_method`` picks the ``multiprocessing`` context (``fork`` is
    the fast default on Linux; ``spawn`` is hygienic but pays a fresh
    interpreter per worker).  ``inline`` runs each shard's units in this
    process through the *same* partition/serialize/merge pipeline — the
    degenerate backend used by determinism tests and single-CPU hosts,
    bit-identical to the process backends by construction.
    """

    def __init__(self, shards: int, start_method: str = "fork",
                 trace: bool = False, profile: bool = False,
                 telemetry: bool = False) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if start_method not in ("fork", "spawn", "forkserver", "inline"):
            raise ValueError(f"unknown start method {start_method!r}")
        self.shards = shards
        self.start_method = start_method
        self.trace = trace
        self.profile = profile
        self.telemetry = telemetry

    def execute(self, plan: ExecutionPlan) -> ExecutionResult:
        t0 = time.perf_counter()
        assignment = assign_units(plan.units, self.shards)
        if self.start_method == "inline" or self.shards == 1:
            shard_results, shard_walls = self._run_inline(assignment)
        else:
            shard_results, shard_walls = self._run_processes(assignment)
        results = sorted(
            (r for bucket in shard_results for r in bucket),
            key=lambda r: r.index,
        )
        merged = merge_results(plan, results)
        return ExecutionResult(
            value=plan.reduce(results),
            results=results,
            merged=merged,
            shards=self.shards,
            backend=f"sharded/{self.start_method}",
            wall_s=time.perf_counter() - t0,
            shard_wall_s=shard_walls,
        )

    def _run_inline(
        self, assignment: List[List[SimUnit]]
    ) -> Tuple[List[List[UnitResult]], List[float]]:
        shard_results: List[List[UnitResult]] = []
        walls: List[float] = []
        for shard_id, units in enumerate(assignment):
            t0 = time.perf_counter()
            shard_results.append(
                [run_unit(u, shard=shard_id, trace=self.trace or None,
                          profile=self.profile or None,
                          telemetry=self.telemetry or None) for u in units]
            )
            walls.append(time.perf_counter() - t0)
        return shard_results, walls

    def _run_processes(
        self, assignment: List[List[SimUnit]]
    ) -> Tuple[List[List[UnitResult]], List[float]]:
        import multiprocessing as mp

        ctx = mp.get_context(self.start_method)
        workers = []
        for shard_id, units in enumerate(assignment):
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_shard_worker,
                args=(shard_id, units, child_conn, self.trace, self.profile,
                      self.telemetry),
                name=f"repro-shard-{shard_id}",
            )
            t0 = time.perf_counter()
            proc.start()
            child_conn.close()
            workers.append((shard_id, proc, parent_conn, t0))

        shard_results: List[List[UnitResult]] = [[] for _ in assignment]
        walls = [0.0] * len(assignment)
        failure: Optional[str] = None
        for shard_id, proc, conn, t0 in workers:
            try:
                status, _sid, _pid, body = conn.recv()
            except EOFError:
                proc.join()
                status, body = "error", (
                    f"shard {shard_id} worker exited without reporting "
                    f"(exitcode={proc.exitcode})")
            walls[shard_id] = time.perf_counter() - t0
            proc.join()
            conn.close()
            if status == "ok":
                shard_results[shard_id] = body
            elif failure is None:
                failure = f"shard {shard_id} failed:\n{body}"
        if failure is not None:
            raise ExecutionError(failure)
        return shard_results, walls


def make_executor(shards: int = 1, start_method: Optional[str] = None,
                  trace: bool = False, profile: bool = False,
                  telemetry: bool = False) -> Executor:
    """The CLI's routing rule: ``--shards 1`` keeps the classic engine."""
    if shards <= 1 and start_method is None:
        return InProcessExecutor()
    return ShardedExecutor(max(1, shards), start_method=start_method or "fork",
                           trace=trace, profile=profile, telemetry=telemetry)
