"""Deterministic merge of per-unit results into one run-level view.

Every merge here is keyed by unit index and simulated time — never by
completion order, worker identity, or the wall clock — so the merged
artefacts are bit-identical for any shard count:

* **metrics** — per-unit :class:`~repro.obs.metrics.MetricsRegistry`
  snapshots fold in unit order (counters add, histograms add bucket-wise,
  gauges last-writer-wins by unit order, matching a sequential run).
* **spans** — per-unit span dicts get globally unique ids (per-unit
  offsets in index order) and a stable global ordering by
  ``(begin, unit, id)``.
* **fault timelines** — per-unit record lists merge through
  :meth:`repro.faults.timeline.FaultTimeline.merge`, which re-issues
  fault ids by injection time and annotates cross-shard blast radii.
* **event streams** — each unit's fingerprint hashes its payload, final
  clock, scheduled-event count, metrics, spans, and timeline; the merged
  fingerprint chains them in unit order.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.exec.plan import ExecutionPlan, UnitResult
from repro.faults.timeline import FaultTimeline
from repro.obs.metrics import MetricsRegistry

__all__ = ["MergedArtifacts", "merge_results", "merge_spans"]


@dataclass
class MergedArtifacts:
    """The run-level rollup of every unit's deterministic outputs."""

    fingerprint: str
    events_scheduled: int
    sim_now: float  # max over units: the fleet-wide simulated horizon
    metrics: MetricsRegistry
    spans: List[Dict[str, Any]]
    timeline: FaultTimeline
    unit_fingerprints: List[str] = field(default_factory=list)

    def summary(self) -> Dict[str, float]:
        """Flat numeric summary (metrics + fault rollup + totals)."""
        out = dict(self.metrics.flat())
        out.update(self.timeline.summary() if len(self.timeline) else {})
        out["exec.units"] = float(len(self.unit_fingerprints))
        out["exec.events_scheduled"] = float(self.events_scheduled)
        out["exec.sim_now_s"] = self.sim_now
        return out


def merge_spans(results: List[UnitResult]) -> List[Dict[str, Any]]:
    """Globally ordered span list with per-unit id offsets applied."""
    merged: List[Dict[str, Any]] = []
    offset = 0
    for result in results:
        top = 0
        for span in result.spans:
            entry = dict(span)
            top = max(top, int(entry["id"]))
            entry["id"] = int(entry["id"]) + offset
            if entry.get("parent") is not None:
                entry["parent"] = int(entry["parent"]) + offset
            entry["unit"] = result.index
            merged.append(entry)
        offset += top
    merged.sort(key=lambda s: (s["begin"], s["unit"], s["id"]))
    return merged


def merge_results(plan: ExecutionPlan, results: List[UnitResult]) -> MergedArtifacts:
    """Merge complete unit results (sorted by index) into one view."""
    results = sorted(results, key=lambda r: r.index)
    expected = [u.index for u in plan.units]
    got = [r.index for r in results]
    if got != expected:
        missing = sorted(set(expected) - set(got))
        raise ValueError(
            f"plan {plan.title!r}: incomplete results (missing units {missing})")

    metrics = MetricsRegistry()
    for result in results:
        if result.metrics:
            metrics.merge_snapshot(result.metrics)

    timeline = FaultTimeline.merge(
        [FaultTimeline.from_records(r.timeline) for r in results if r.timeline]
    )

    unit_prints = [r.fingerprint() for r in results]
    chain = hashlib.sha256()
    for print_ in unit_prints:
        chain.update(print_.encode())
    return MergedArtifacts(
        fingerprint=chain.hexdigest(),
        events_scheduled=sum(r.events_scheduled for r in results),
        sim_now=max((r.sim_now for r in results), default=0.0),
        metrics=metrics,
        spans=merge_spans(results),
        timeline=timeline,
        unit_fingerprints=unit_prints,
    )
