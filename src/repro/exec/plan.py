"""Execution plans: picklable unit specs and their results.

A :class:`SimUnit` names a top-level function by import path plus the
keyword arguments to call it with — both must be picklable so the unit
can be shipped to a worker process unchanged.  The function builds its
own :class:`~repro.sim.engine.Environment` (usually through
:mod:`repro.systems`) with explicit seeds and returns a picklable
payload; everything else a unit produced (metrics, spans, fault
records, event counts) is harvested by the run harness from the
observability contexts it attached.

:class:`UnitResult.fingerprint` hashes every deterministic field — the
bit-identity check "1 shard == N shards" compares merged fingerprints,
so anything nondeterministic (which shard ran the unit, wall time) is
deliberately excluded.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable, Dict, List, Optional

__all__ = ["SimUnit", "UnitResult", "ExecutionPlan", "ExecutionResult",
           "resolve_unit_fn"]


@dataclass(frozen=True)
class SimUnit:
    """One independent simulation: an importable function plus kwargs."""

    index: int
    label: str
    fn: str  # "package.module:function" — importable from any process
    params: Dict[str, Any] = field(default_factory=dict)
    #: Deterministic cost estimate used for shard load balancing only;
    #: it never affects results, merely which worker runs the unit.
    weight: float = 1.0

    def __post_init__(self) -> None:
        if ":" not in self.fn:
            raise ValueError(
                f"unit fn must be 'module:function', got {self.fn!r}")


def resolve_unit_fn(spec: str) -> Callable[..., Any]:
    """Import ``package.module:function`` and return the callable."""
    module_name, _, attr = spec.partition(":")
    fn = getattr(import_module(module_name), attr, None)
    if fn is None or not callable(fn):
        raise ValueError(f"unit fn {spec!r} does not resolve to a callable")
    return fn


@dataclass
class UnitResult:
    """Everything one unit produced, in picklable form."""

    index: int
    label: str
    payload: Any
    sim_now: float = 0.0
    events_scheduled: int = 0
    metrics: Dict[str, Any] = field(default_factory=dict)  # registry snapshot
    spans: List[Dict[str, Any]] = field(default_factory=list)
    timeline: List[Dict[str, Any]] = field(default_factory=list)
    #: Which shard ran the unit and how long it took on the host —
    #: diagnostics only, excluded from the fingerprint.
    shard: int = 0
    wall_s: float = 0.0

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON of the deterministic fields."""
        body = json.dumps(
            {
                "index": self.index,
                "label": self.label,
                "payload": self.payload,
                "sim_now": self.sim_now,
                "events_scheduled": self.events_scheduled,
                "metrics": self.metrics,
                "spans": self.spans,
                "timeline": self.timeline,
            },
            sort_keys=True,
            separators=(",", ":"),
            default=repr,
        )
        return hashlib.sha256(body.encode()).hexdigest()


@dataclass
class ExecutionPlan:
    """An ordered set of independent units plus the reduce step.

    ``reduce(results)`` receives the :class:`UnitResult` list sorted by
    unit index (complete — executors fail loudly rather than drop
    units) and builds the experiment's artefact, usually a
    :class:`~repro.bench.harness.ResultTable`.
    """

    title: str
    units: List[SimUnit]
    reduce: Callable[[List["UnitResult"]], Any]

    def __post_init__(self) -> None:
        indices = [u.index for u in self.units]
        if indices != list(range(len(self.units))):
            raise ValueError(
                f"plan {self.title!r}: unit indices must be 0..n-1 in order, "
                f"got {indices}")


@dataclass
class ExecutionResult:
    """What an executor returns: the reduced value plus merge artefacts."""

    value: Any  # the reduce() output (usually a ResultTable)
    results: List[UnitResult]
    merged: Any  # exec.merge.MergedArtifacts
    shards: int = 1
    backend: str = "in-process"
    wall_s: float = 0.0
    shard_wall_s: Optional[List[float]] = None

    @property
    def fingerprint(self) -> str:
        """The merged deterministic fingerprint (bit-identity check)."""
        return self.merged.fingerprint
