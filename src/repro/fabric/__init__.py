"""NVMe-over-Fabrics transport.

Implements the paper's Figure 4 data path: an SPDK-style NVMf *target*
daemon on each storage node and an NVMf *initiator* embedded in each
runtime instance, talking over an RDMA model of the 100 Gb EDR
InfiniBand fabric. The whole stack is "userspace": per-command costs are
the calibrated SPDK ones, with no syscall traps — the kernel path of
Figure 2 is modelled separately by :mod:`repro.baselines.kernel`.
"""

from repro.fabric.rdma import RdmaFabric, RdmaSpec, edr_infiniband
from repro.fabric.nvmf import NVMfInitiator, NVMfSession, NVMfTarget
from repro.fabric.transport import FabricTransport, LocalPCIeTransport, Transport

__all__ = [
    "FabricTransport",
    "LocalPCIeTransport",
    "NVMfInitiator",
    "NVMfSession",
    "NVMfTarget",
    "RdmaFabric",
    "RdmaSpec",
    "Transport",
    "edr_infiniband",
]
