"""SPDK-style NVMe-over-Fabrics target and initiator.

One :class:`NVMfTarget` daemon runs per storage node and is multi-tenant
(the reason the paper picks SPDK, §III-D). An :class:`NVMfInitiator` is
embedded in each NVMe-CR runtime instance; ``connect`` yields an
:class:`NVMfSession` bound to one target — the paper's "each runtime
instance directly accesses its own remote SSD partition via NVMf".

Cost model per batched submission: one fabric round trip (submissions
within a batch are pipelined, completions polled), per-message initiator
CPU, a per-command target-side SPDK cost folded into the rate cap, and
the device's own service — with the QP's line rate as an upper bound on
the data stream.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.errors import FabricError
from repro.fabric.rdma import RdmaFabric
from repro.io.envelope import merge_adjacent_extents
from repro.io.qos import QoSClass
from repro.nvme.commands import CommandResult, Payload
from repro.nvme.device import SSD
from repro.obs.context import tracer_of
from repro.obs.metrics import Counter
from repro.sim.engine import Environment, Event
from repro.units import us

__all__ = ["NVMfTarget", "NVMfInitiator", "NVMfSession"]

# SPDK target-side processing per command: "negligible software
# overhead" (§III-D) but not zero — one sub-microsecond poll-mode pass.
_TARGET_PER_COMMAND = us(0.4)


class NVMfTarget:
    """SPDK NVMf target daemon exporting one SSD's namespaces."""

    def __init__(self, env: Environment, node_name: str, ssd: SSD):
        self.env = env
        self.node_name = node_name
        self.ssd = ssd
        self.sessions = 0
        self.alive = True
        self.counters = Counter()

    def subsystem_nqn(self) -> str:
        """NVMe Qualified Name for discovery."""
        return f"nqn.2021-01.repro:{self.node_name}:{self.ssd.name}"

    def kill(self) -> None:
        """Target daemon dies (fault injection): every session breaks.

        Device data is untouched — this is a software failure; initiators
        reconnect once a replacement daemon is up (:meth:`revive`).
        """
        self.alive = False
        self.counters.add("deaths")
        ctx = self.env.obs
        if ctx is not None:
            ctx.metrics.counter("nvmf.target.deaths").add(1)

    def revive(self) -> None:
        self.alive = True


class NVMfSession:  # reproflow: ignore[FLOW103] (counters owned by the session's client)
    """One initiator's connection (QP) to a target."""

    def __init__(
        self,
        env: Environment,
        fabric: RdmaFabric,
        initiator_node: str,
        target: NVMfTarget,
    ):
        self.env = env
        self.fabric = fabric
        self.initiator_node = initiator_node
        self.target = target
        self.connected = True
        self.qid = target.ssd.allocate_queue()
        target.sessions += 1
        self.counters = Counter()

    @property
    def is_local(self) -> bool:
        return self.initiator_node == self.target.node_name

    def _require_connected(self) -> None:
        if not self.connected:
            raise FabricError(
                f"session to {self.target.subsystem_nqn()} is disconnected"
            )
        if not self.target.alive:
            # The daemon died under us: the QP is torn down too.
            self.disconnect()
            raise FabricError(
                f"target {self.target.subsystem_nqn()} is dead (daemon fault)"
            )

    def disconnect(self) -> None:
        if self.connected:
            self.connected = False
            self.target.sessions -= 1

    # -- IO ----------------------------------------------------------------------

    def _track(self) -> str:
        return f"nvmf.{self.initiator_node}>{self.target.node_name}"

    def write(
        self,
        nsid: int,
        offset: int,
        payload: Payload,
        command_size: int,
        qos: Optional[QoSClass] = None,
    ) -> Event:
        """Batched remote write; event value is the device CommandResult."""
        self._require_connected()
        tr = tracer_of(self.env)
        span = None if tr is None else tr.begin(
            "nvmf.write", cat="fabric", track=self._track(),
            parent=tr.take_handoff(), bytes=payload.nbytes,
            local=self.is_local)
        return self.env.process(
            self._io(
                lambda cap: self.target.ssd.write(
                    nsid, offset, payload, command_size, rate_cap=cap, qos=qos
                ),
                payload.nbytes,
                command_size,
                span,
                qos,
            )
        )

    def read(
        self,
        nsid: int,
        offset: int,
        nbytes: int,
        command_size: int,
        qos: Optional[QoSClass] = None,
    ) -> Event:
        self._require_connected()
        tr = tracer_of(self.env)
        span = None if tr is None else tr.begin(
            "nvmf.read", cat="fabric", track=self._track(),
            parent=tr.take_handoff(), bytes=nbytes, local=self.is_local)
        return self.env.process(
            self._io(
                lambda cap: self.target.ssd.read(
                    nsid, offset, nbytes, command_size, rate_cap=cap, qos=qos
                ),
                nbytes,
                command_size,
                span,
                qos,
            )
        )

    def write_batch(
        self,
        nsid: int,
        chunks: List[Tuple[int, Payload]],
        command_size: int,
        qos: Optional[QoSClass] = None,
    ) -> Event:
        """Doorbell-batched write: coalesce adjacent extents, ring once.

        The whole batch shares a *single* fabric round trip (one
        ``nvmf.rtt`` span) and the per-command QD-1 round-trip cap is
        lifted — pipelined submissions keep the wire full, which is the
        point of batching. Event value is the list of device
        CommandResults, one per (possibly merged) extent.
        """
        self._require_connected()
        merged = merge_adjacent_extents(list(chunks))
        total = sum(p.nbytes for _off, p in merged)
        tr = tracer_of(self.env)
        span = None if tr is None else tr.begin(
            "nvmf.write", cat="fabric", track=self._track(),
            parent=tr.take_handoff(), bytes=total, batch=len(merged),
            local=self.is_local)
        return self.env.process(self._io_batch(nsid, merged, command_size, span, qos))

    def flush(self, nsid: int, qos: Optional[QoSClass] = None) -> Event:
        self._require_connected()
        # Claim the handoff here (synchronously) so a stale parent never
        # leaks to an unrelated later span.
        tr = tracer_of(self.env)
        span = None if tr is None else tr.begin(
            "nvmf.flush", cat="fabric", track=self._track(),
            parent=tr.take_handoff(), local=self.is_local)
        return self.env.process(self._flush(nsid, span, qos))

    def _io(
        self, submit, nbytes: int, command_size: int, span=None,
        qos: Optional[QoSClass] = None,
    ) -> Generator[Event, Any, CommandResult]:
        tr = tracer_of(self.env) if span is not None else None
        n_cmds = max(1, -(-nbytes // command_size))
        rtt = self.fabric.round_trip(
            self.initiator_node, self.target.node_name, qos=qos)
        cpu = self.fabric.spec.per_message_cpu + n_cmds * _TARGET_PER_COMMAND
        if rtt + cpu > 0:
            hop = None if tr is None else tr.begin(
                "nvmf.rtt", cat="fabric", track=self._track(), parent=span,
                rtt_s=rtt, cpu_s=cpu,
                hops=0 if self.is_local else self.fabric.topo.hop_count(
                    self.initiator_node, self.target.node_name))
            yield self.env.timeout(rtt + cpu)
            if hop is not None:
                tr.end(hop)
        if self.is_local:
            cap = None
        else:
            # Run-to-completion over the fabric: each in-flight command
            # pays the round trip, so a session's stream is capped at
            # command_size/rtt on top of the (possibly degraded) line rate.
            cap = self.fabric.payload_cap(self.initiator_node, self.target.node_name)
            if rtt > 0:
                cap = min(cap, command_size / rtt)
        if tr is not None:
            tr.handoff(span)
        result = yield submit(cap)
        self.counters.add("bytes", nbytes)
        self.counters.add("commands", n_cmds)
        self.target.counters.add("bytes", nbytes)
        ctx = self.env.obs
        if ctx is not None:
            m = ctx.metrics
            m.counter("nvmf.bytes", unit="B").add(nbytes)
            m.counter("nvmf.commands").add(n_cmds)
            m.counter("nvmf.target.bytes", unit="B").add(nbytes)
            if not self.is_local:
                m.counter("nvmf.remote_bytes", unit="B").add(nbytes)
                m.counter("nvmf.fabric_wait_s", unit="s").add(rtt + cpu)
        if tr is not None:
            tr.end(span)
        return result

    def _io_batch(
        self,
        nsid: int,
        merged: List[Tuple[int, Payload]],
        command_size: int,
        span=None,
        qos: Optional[QoSClass] = None,
    ) -> Generator[Event, Any, List[CommandResult]]:
        tr = tracer_of(self.env) if span is not None else None
        total = sum(p.nbytes for _off, p in merged)
        n_cmds = sum(
            max(1, -(-p.nbytes // command_size)) for _off, p in merged
        )
        rtt = self.fabric.round_trip(
            self.initiator_node, self.target.node_name, qos=qos)
        cpu = self.fabric.spec.per_message_cpu + n_cmds * _TARGET_PER_COMMAND
        if rtt + cpu > 0:
            hop = None if tr is None else tr.begin(
                "nvmf.rtt", cat="fabric", track=self._track(), parent=span,
                rtt_s=rtt, cpu_s=cpu, batch=len(merged),
                hops=0 if self.is_local else self.fabric.topo.hop_count(
                    self.initiator_node, self.target.node_name))
            yield self.env.timeout(rtt + cpu)
            if hop is not None:
                tr.end(hop)
        if self.is_local:
            cap = None
        else:
            # Doorbell batching pipelines submissions behind one ring:
            # the per-command command_size/rtt QD-1 ceiling of _io does
            # not apply; only the (possibly degraded) line rate does.
            cap = self.fabric.payload_cap(self.initiator_node, self.target.node_name)
        events = []
        for offset, payload in merged:
            if tr is not None:
                tr.handoff(span)
            events.append(
                self.target.ssd.write(
                    nsid, offset, payload, command_size, rate_cap=cap, qos=qos
                )
            )
        yield self.env.all_of(events)
        results = [ev.value for ev in events]
        self.counters.add("bytes", total)
        self.counters.add("commands", n_cmds)
        self.counters.add("batches")
        self.target.counters.add("bytes", total)
        ctx = self.env.obs
        if ctx is not None:
            m = ctx.metrics
            m.counter("nvmf.bytes", unit="B").add(total)
            m.counter("nvmf.commands").add(n_cmds)
            m.counter("nvmf.batches").add(1)
            m.counter("nvmf.target.bytes", unit="B").add(total)
            if not self.is_local:
                m.counter("nvmf.remote_bytes", unit="B").add(total)
                m.counter("nvmf.fabric_wait_s", unit="s").add(rtt + cpu)
        if tr is not None:
            tr.end(span)
        return results

    def _flush(
        self, nsid: int, span=None, qos: Optional[QoSClass] = None
    ) -> Generator[Event, Any, None]:
        tr = tracer_of(self.env) if span is not None else None
        rtt = self.fabric.round_trip(
            self.initiator_node, self.target.node_name, qos=qos)
        if rtt > 0:
            yield self.env.timeout(rtt)
            ctx = self.env.obs
            if ctx is not None and not self.is_local:
                ctx.metrics.counter("nvmf.fabric_wait_s", unit="s").add(rtt)
        if tr is not None:
            tr.handoff(span)
        yield self.target.ssd.flush(nsid)
        if tr is not None:
            tr.end(span)


class NVMfInitiator:
    """Per-runtime-instance NVMf client; connects to target daemons."""

    def __init__(self, env: Environment, node_name: str, fabric: RdmaFabric):
        self.env = env
        self.node_name = node_name
        self.fabric = fabric
        self._sessions: Dict[str, NVMfSession] = {}

    def connect(self, target: NVMfTarget) -> NVMfSession:
        """Open (or reuse) a session to a target."""
        if not target.alive:
            raise FabricError(
                f"cannot connect: target {target.subsystem_nqn()} is dead"
            )
        nqn = target.subsystem_nqn()
        session = self._sessions.get(nqn)
        if session is None or not session.connected:
            session = NVMfSession(self.env, self.fabric, self.node_name, target)
            self._sessions[nqn] = session
        return session

    def disconnect_all(self) -> None:
        for session in self._sessions.values():
            session.disconnect()
        self._sessions.clear()
