"""RDMA fabric latency/bandwidth model.

Calibrated to 100 Gbps EDR InfiniBand with ConnectX-5 adapters (§IV-A):
~0.6 us end-to-end verbs latency plus ~0.1 us per switch hop, 12.5 GB/s
line rate. Guz et al. [6] measured ~10 us NVMf round trips and < 10 %
application-level overhead; with batched, pipelined submissions the
per-batch round trip amortises to the < 3.5 % the paper reports
(Figure 8(a)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import FabricError
from repro.topology.network import NetworkTopology
from repro.units import Gbit_per_s, us

__all__ = ["RdmaSpec", "RdmaFabric", "edr_infiniband"]


@dataclass(frozen=True)
class RdmaSpec:
    """Static fabric characteristics."""

    name: str
    link_bandwidth: float  # bytes/s per port
    base_latency: float  # NIC-to-NIC verbs latency, seconds
    per_hop_latency: float  # per switch traversal
    per_message_cpu: float  # initiator-side post/poll cost per message

    def __post_init__(self) -> None:
        if self.link_bandwidth <= 0:
            raise FabricError(f"{self.name}: link bandwidth must be positive")


def edr_infiniband() -> RdmaSpec:
    """The paper's 100 Gbps EDR fabric."""
    return RdmaSpec(
        name="EDR InfiniBand 100Gbps",
        link_bandwidth=Gbit_per_s(100),
        base_latency=us(0.6),
        per_hop_latency=us(0.1),
        per_message_cpu=us(0.3),
    )


class RdmaFabric:
    """Topology-aware RDMA message timing.

    Hosts may carry a *degrade factor* (fault injection): a value in
    ``(0, 1]`` scales the endpoint's usable link capacity — bandwidth
    drops to ``factor`` of line rate and per-message latency stretches
    by ``1/factor`` (flapping links retransmit). ``0`` severs the link.
    """

    def __init__(self, topo: NetworkTopology, spec: RdmaSpec, env=None):
        self.topo = topo
        self.spec = spec
        self.env = env  # optional: enables per-message metrics via env.obs
        self._degraded: dict = {}  # host -> remaining capacity factor

    # -- fault injection ----------------------------------------------------

    def degrade(self, host: str, factor: float) -> None:
        """Degrade ``host``'s link to ``factor`` of capacity (0 = dead)."""
        if factor < 0 or factor > 1:
            raise FabricError(f"degrade factor must be in [0, 1], got {factor}")
        self._degraded[host] = factor

    def restore(self, host: str) -> None:
        self._degraded.pop(host, None)

    def link_factor(self, src: str, dst: str) -> float:
        """Remaining capacity along ``src -> dst`` (worst endpoint)."""
        return min(
            self._degraded.get(src, 1.0), self._degraded.get(dst, 1.0)
        )

    def is_severed(self, src: str, dst: str) -> bool:
        return src != dst and self.link_factor(src, dst) == 0.0

    # -- timing -------------------------------------------------------------

    def one_way_latency(self, src: str, dst: str, qos=None) -> float:
        """Propagation + switching latency for one message (no payload).

        ``qos`` (a :class:`~repro.io.qos.QoSClass` from the envelope) only
        labels the per-class message counter; the wire is class-blind.
        """
        if src == dst:
            return 0.0
        hops = self.topo.hop_count(src, dst)
        latency = self.spec.base_latency + hops * self.spec.per_hop_latency
        factor = self.link_factor(src, dst)
        if factor <= 0.0:
            raise FabricError(f"link {src} -> {dst} is severed")
        latency = latency / factor
        if self.env is not None:
            ctx = self.env.obs
            if ctx is not None:
                m = ctx.metrics
                m.counter("rdma.messages").add(1)
                m.counter("rdma.hops").add(hops)
                m.histogram("rdma.one_way_latency_s").observe(latency)
                if qos is not None:
                    m.counter(f"rdma.{qos.value}.messages").add(1)
        return latency

    def round_trip(self, src: str, dst: str, qos=None) -> float:
        return 2.0 * self.one_way_latency(src, dst, qos=qos)

    def payload_cap(self, src: Optional[str] = None, dst: Optional[str] = None) -> float:
        """Rate cap a single QP's data stream sees (the line rate,
        scaled down when either endpoint's link is degraded)."""
        factor = 1.0
        if src is not None and dst is not None and src != dst:
            factor = self.link_factor(src, dst)
            if factor <= 0.0:
                raise FabricError(f"link {src} -> {dst} is severed")
        return self.spec.link_bandwidth * factor
