"""RDMA fabric latency/bandwidth model.

Calibrated to 100 Gbps EDR InfiniBand with ConnectX-5 adapters (§IV-A):
~0.6 us end-to-end verbs latency plus ~0.1 us per switch hop, 12.5 GB/s
line rate. Guz et al. [6] measured ~10 us NVMf round trips and < 10 %
application-level overhead; with batched, pipelined submissions the
per-batch round trip amortises to the < 3.5 % the paper reports
(Figure 8(a)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FabricError
from repro.topology.network import NetworkTopology
from repro.units import Gbit_per_s, us

__all__ = ["RdmaSpec", "RdmaFabric", "edr_infiniband"]


@dataclass(frozen=True)
class RdmaSpec:
    """Static fabric characteristics."""

    name: str
    link_bandwidth: float  # bytes/s per port
    base_latency: float  # NIC-to-NIC verbs latency, seconds
    per_hop_latency: float  # per switch traversal
    per_message_cpu: float  # initiator-side post/poll cost per message

    def __post_init__(self) -> None:
        if self.link_bandwidth <= 0:
            raise FabricError(f"{self.name}: link bandwidth must be positive")


def edr_infiniband() -> RdmaSpec:
    """The paper's 100 Gbps EDR fabric."""
    return RdmaSpec(
        name="EDR InfiniBand 100Gbps",
        link_bandwidth=Gbit_per_s(100),
        base_latency=us(0.6),
        per_hop_latency=us(0.1),
        per_message_cpu=us(0.3),
    )


class RdmaFabric:
    """Topology-aware RDMA message timing."""

    def __init__(self, topo: NetworkTopology, spec: RdmaSpec):
        self.topo = topo
        self.spec = spec

    def one_way_latency(self, src: str, dst: str) -> float:
        """Propagation + switching latency for one message (no payload)."""
        if src == dst:
            return 0.0
        hops = self.topo.hop_count(src, dst)
        return self.spec.base_latency + hops * self.spec.per_hop_latency

    def round_trip(self, src: str, dst: str) -> float:
        return 2.0 * self.one_way_latency(src, dst)

    def payload_cap(self) -> float:
        """Rate cap a single QP's data stream sees (the line rate)."""
        return self.spec.link_bandwidth
