"""Uniform transport interface over local-PCIe and NVMf access.

The microfs data plane does not care whether its SSD partition is local
(Figure 7(c)'s local experiments) or remote over NVMf (everything else);
both are exposed through :class:`Transport`. Every operation accepts the
envelope's QoS class, and :meth:`Transport.write_batch` is the
doorbell-batched submission the unified pipeline uses when
``RuntimeConfig.batching`` is on.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Tuple

from repro.errors import FabricError
from repro.fabric.nvmf import NVMfInitiator, NVMfSession, NVMfTarget
from repro.io.qos import QoSClass
from repro.nvme.commands import Payload
from repro.nvme.device import SSD
from repro.sim.engine import Environment, Event

__all__ = ["Transport", "LocalPCIeTransport", "FabricTransport"]


class Transport(abc.ABC):
    """Byte-addressed IO to one namespace of one SSD."""

    @abc.abstractmethod
    def write(
        self,
        nsid: int,
        offset: int,
        payload: Payload,
        command_size: int,
        qos: Optional[QoSClass] = None,
    ) -> Event:
        """Batched write; completion event yields a CommandResult."""

    @abc.abstractmethod
    def write_batch(
        self,
        nsid: int,
        chunks: List[Tuple[int, Payload]],
        command_size: int,
        qos: Optional[QoSClass] = None,
    ) -> Event:
        """Doorbell-batched write of many extents; the event yields the
        list of CommandResults. On the fabric this costs one round trip
        for the whole batch."""

    @abc.abstractmethod
    def read(
        self,
        nsid: int,
        offset: int,
        nbytes: int,
        command_size: int,
        qos: Optional[QoSClass] = None,
    ) -> Event:
        """Batched read; result's ``extra['extents']`` holds stored data."""

    @abc.abstractmethod
    def flush(self, nsid: int, qos: Optional[QoSClass] = None) -> Event:
        """Durability barrier."""

    def reconnect(self) -> None:
        """Re-establish the transport after a failure (no-op locally)."""

    @property
    @abc.abstractmethod
    def description(self) -> str:
        """Human-readable label for logs and tables."""


class LocalPCIeTransport(Transport):
    """Direct userspace access to a node-local SSD (SPDK, no fabric)."""

    def __init__(self, env: Environment, ssd: SSD):
        self.env = env
        self.ssd = ssd

    def write(
        self,
        nsid: int,
        offset: int,
        payload: Payload,
        command_size: int,
        qos: Optional[QoSClass] = None,
    ) -> Event:
        return self.ssd.write(nsid, offset, payload, command_size, qos=qos)

    def write_batch(
        self,
        nsid: int,
        chunks: List[Tuple[int, Payload]],
        command_size: int,
        qos: Optional[QoSClass] = None,
    ) -> Event:
        # No fabric round trip to amortise locally: issue all extents
        # concurrently and complete when the last one does.
        events = [
            self.ssd.write(nsid, offset, payload, command_size, qos=qos)
            for offset, payload in chunks
        ]
        return self.env.all_of(events)

    def read(
        self,
        nsid: int,
        offset: int,
        nbytes: int,
        command_size: int,
        qos: Optional[QoSClass] = None,
    ) -> Event:
        return self.ssd.read(nsid, offset, nbytes, command_size, qos=qos)

    def flush(self, nsid: int, qos: Optional[QoSClass] = None) -> Event:
        return self.ssd.flush(nsid)

    @property
    def description(self) -> str:
        return f"local-pcie:{self.ssd.name}"


class FabricTransport(Transport):
    """Remote access through an NVMf session.

    When built with its ``initiator``/``target`` pair, :meth:`reconnect`
    can replace a dead session after a target daemon restart — the
    retry path of the unified pipeline's envelope budgets.
    """

    def __init__(
        self,
        session: NVMfSession,
        initiator: Optional[NVMfInitiator] = None,
        target: Optional[NVMfTarget] = None,
    ):
        self.session = session
        self.initiator = initiator
        self.target = target

    def reconnect(self) -> None:
        if self.session.connected and self.session.target.alive:
            return
        if self.initiator is None or self.target is None:
            raise FabricError(
                f"cannot reconnect {self.description}: no initiator/target bound"
            )
        self.session = self.initiator.connect(self.target)

    def write(
        self,
        nsid: int,
        offset: int,
        payload: Payload,
        command_size: int,
        qos: Optional[QoSClass] = None,
    ) -> Event:
        return self.session.write(nsid, offset, payload, command_size, qos=qos)

    def write_batch(
        self,
        nsid: int,
        chunks: List[Tuple[int, Payload]],
        command_size: int,
        qos: Optional[QoSClass] = None,
    ) -> Event:
        return self.session.write_batch(nsid, chunks, command_size, qos=qos)

    def read(
        self,
        nsid: int,
        offset: int,
        nbytes: int,
        command_size: int,
        qos: Optional[QoSClass] = None,
    ) -> Event:
        return self.session.read(nsid, offset, nbytes, command_size, qos=qos)

    def flush(self, nsid: int, qos: Optional[QoSClass] = None) -> Event:
        return self.session.flush(nsid, qos=qos)

    @property
    def description(self) -> str:
        return (
            f"nvmf:{self.session.initiator_node}->"
            f"{self.session.target.subsystem_nqn()}"
        )
