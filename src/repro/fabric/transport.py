"""Uniform transport interface over local-PCIe and NVMf access.

The microfs data plane does not care whether its SSD partition is local
(Figure 7(c)'s local experiments) or remote over NVMf (everything else);
both are exposed through :class:`Transport`.
"""

from __future__ import annotations

import abc

from repro.fabric.nvmf import NVMfSession
from repro.nvme.commands import Payload
from repro.nvme.device import SSD
from repro.sim.engine import Environment, Event

__all__ = ["Transport", "LocalPCIeTransport", "FabricTransport"]


class Transport(abc.ABC):
    """Byte-addressed IO to one namespace of one SSD."""

    @abc.abstractmethod
    def write(self, nsid: int, offset: int, payload: Payload, command_size: int) -> Event:
        """Batched write; completion event yields a CommandResult."""

    @abc.abstractmethod
    def read(self, nsid: int, offset: int, nbytes: int, command_size: int) -> Event:
        """Batched read; result's ``extra['extents']`` holds stored data."""

    @abc.abstractmethod
    def flush(self, nsid: int) -> Event:
        """Durability barrier."""

    @property
    @abc.abstractmethod
    def description(self) -> str:
        """Human-readable label for logs and tables."""


class LocalPCIeTransport(Transport):
    """Direct userspace access to a node-local SSD (SPDK, no fabric)."""

    def __init__(self, env: Environment, ssd: SSD):
        self.env = env
        self.ssd = ssd

    def write(self, nsid: int, offset: int, payload: Payload, command_size: int) -> Event:
        return self.ssd.write(nsid, offset, payload, command_size)

    def read(self, nsid: int, offset: int, nbytes: int, command_size: int) -> Event:
        return self.ssd.read(nsid, offset, nbytes, command_size)

    def flush(self, nsid: int) -> Event:
        return self.ssd.flush(nsid)

    @property
    def description(self) -> str:
        return f"local-pcie:{self.ssd.name}"


class FabricTransport(Transport):
    """Remote access through an NVMf session."""

    def __init__(self, session: NVMfSession):
        self.session = session

    def write(self, nsid: int, offset: int, payload: Payload, command_size: int) -> Event:
        return self.session.write(nsid, offset, payload, command_size)

    def read(self, nsid: int, offset: int, nbytes: int, command_size: int) -> Event:
        return self.session.read(nsid, offset, nbytes, command_size)

    def flush(self, nsid: int) -> Event:
        return self.session.flush(nsid)

    @property
    def description(self) -> str:
        return (
            f"nvmf:{self.session.initiator_node}->"
            f"{self.session.target.subsystem_nqn()}"
        )
