"""repro.faults — deterministic fault injection and recovery orchestration.

The subsystem has four layers:

* :mod:`repro.faults.model` — typed fault kinds and blast-radius
  computation over the cluster's failure domains;
* :mod:`repro.faults.hazard` — seeded renewal processes (exponential /
  Weibull) drawn from named RNG streams, common across systems;
* :mod:`repro.faults.injector` — the sim process that applies physical
  effects to live devices, daemons, links, and the scheduler;
* :mod:`repro.faults.recovery` — orchestration that exercises the real
  recovery paths (requeue, log replay, level-2 fallback);
* :mod:`repro.faults.timeline` — the observable record of all of it.
"""

from repro.faults.hazard import HazardSpec, campaign_failure_times, draw_arrival_times
from repro.faults.injector import FaultInjector
from repro.faults.model import (
    BlastRadius,
    Fault,
    FaultKind,
    LeaderKill,
    LinkDegrade,
    NetworkPartition,
    NodeCrash,
    NVMfTargetDeath,
    PDUFailure,
    SSDPowerLoss,
    SwitchFailure,
    blast_radius,
)
from repro.faults.recovery import RecoveryOrchestrator, ResilientRunReport
from repro.faults.timeline import FaultRecord, FaultTimeline

__all__ = [
    "BlastRadius",
    "Fault",
    "FaultKind",
    "FaultInjector",
    "FaultRecord",
    "FaultTimeline",
    "HazardSpec",
    "LeaderKill",
    "LinkDegrade",
    "NetworkPartition",
    "NodeCrash",
    "NVMfTargetDeath",
    "PDUFailure",
    "RecoveryOrchestrator",
    "ResilientRunReport",
    "SSDPowerLoss",
    "SwitchFailure",
    "blast_radius",
    "campaign_failure_times",
    "draw_arrival_times",
]
