"""Seeded hazard processes: when does each component next fail?

Fault arrival times are pre-drawn per component from named RNG streams
(:class:`repro.sim.rng.RngHub` discipline), not sampled inside the
simulation loop. That buys two properties the resilience experiments
assert:

* **Determinism** — the schedule depends only on ``(seed, component)``,
  never on event interleaving, so the same seed always yields the same
  :class:`~repro.faults.timeline.FaultTimeline`.
* **Common random numbers** — comparing storage systems under the same
  seed, every system is hit by the *same* fault sequence; measured
  differences are the systems', not the dice's (the discipline
  :class:`repro.apps.mtbf.FailureCampaign` already follows).

Each component class gets its own hazard: exponential (memoryless, the
classic MTBF model) or Weibull (``shape < 1`` infant mortality,
``shape > 1`` wear-out — the SSD literature's usual fit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.sim.rng import RngHub

__all__ = ["HazardSpec", "draw_arrival_times", "campaign_failure_times"]


@dataclass(frozen=True)
class HazardSpec:
    """Failure law for one component class.

    ``mtbf`` is the per-component mean time between faults; ``shape`` is
    the Weibull shape parameter (1.0 = exponential). The component class
    names the RNG stream, so adding a hazard for one class can never
    perturb another class's draws.
    """

    component_class: str
    mtbf: float
    shape: float = 1.0

    def __post_init__(self) -> None:
        if self.mtbf <= 0:
            raise ValueError(f"{self.component_class}: mtbf must be positive")
        if self.shape <= 0:
            raise ValueError(f"{self.component_class}: shape must be positive")


def draw_arrival_times(
    seed: int, spec: HazardSpec, component_id: str, horizon: float
) -> List[float]:
    """All fault arrival times for one component in ``[0, horizon)``.

    A renewal process: inter-arrival gaps are iid exponential(mtbf) or
    Weibull scaled so the mean gap equals ``mtbf``.
    """
    rng = RngHub(seed).stream(f"faults.{spec.component_class}.{component_id}")
    if spec.shape != 1.0:
        # E[scale * W(shape)] = scale * Γ(1 + 1/shape)
        scale = spec.mtbf / math.gamma(1.0 + 1.0 / spec.shape)
    times: List[float] = []
    t = 0.0
    while True:
        if spec.shape == 1.0:
            gap = float(rng.exponential(spec.mtbf))
        else:
            gap = float(scale * rng.weibull(spec.shape))
        t += gap
        if t >= horizon:
            return times
        times.append(t)


def campaign_failure_times(
    seed: int, mtbf: float, horizon: float, rank: int = 0
) -> List[float]:
    """Per-rank failure times for an injector-fed failure campaign.

    Streamed by ``(seed, rank)`` only — deliberately *not* by storage
    system — so every system compared under one seed sees the identical
    failure sequence (common random numbers).
    """
    spec = HazardSpec(component_class=f"campaign.mtbf{mtbf:g}", mtbf=mtbf)
    return draw_arrival_times(seed, spec, f"rank{rank}", horizon)
