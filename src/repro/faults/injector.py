"""The fault injector: a sim process that actually kills things.

Before this subsystem the repo modelled failures as abstract lost time.
The injector instead fires typed faults — from a deterministic schedule
or from seeded hazard processes — and applies their *physical* effects
to the live simulation objects: SSDs lose power mid-command, NVMf target
daemons die and break their sessions, fabric links degrade, scheduler
nodes drop out of the free pool. Recovery orchestration subscribes to
injections and drives the repair machinery the codebase already has
(scheduler requeue, MicroFS log replay, the level-2 PFS tier).

Determinism: the planned schedule is sorted by ``(time, insertion
sequence)`` and hazard draws are pre-computed from named RNG streams
(:mod:`repro.faults.hazard`), so a seed fully determines the timeline.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.faults.hazard import HazardSpec, draw_arrival_times
from repro.faults.model import (
    BlastRadius,
    Fault,
    LeaderKill,
    LinkDegrade,
    NetworkPartition,
    blast_radius,
)
from repro.faults.timeline import FaultRecord, FaultTimeline
from repro.obs.context import tracer_of
from repro.sim.engine import Environment, Event, Process
from repro.topology.failure_domains import derive_failure_domains

__all__ = ["FaultInjector"]

FaultHandler = Callable[[FaultRecord, Fault, BlastRadius], None]


class FaultInjector:  # reproflow: ignore[FLOW103] (_run/_repair alternate by protocol)
    """Schedules faults and applies their physical effects.

    Component inventories are attached explicitly (or wholesale via
    :meth:`for_deployment`); faults whose targets have no attached
    hardware still land in the timeline — observability does not depend
    on wiring completeness.
    """

    def __init__(
        self,
        env: Environment,
        cluster: Any = None,
        seed: int = 0,
        timeline: Optional[FaultTimeline] = None,
    ):
        self.env = env
        self.cluster = cluster
        self.domains = (
            derive_failure_domains(cluster) if cluster is not None else []
        )
        self.seed = int(seed)
        self.timeline = timeline if timeline is not None else FaultTimeline()
        self.ssds: Dict[str, List[Any]] = {}  # node name -> SSD devices
        self.targets: Dict[str, List[Any]] = {}  # node name -> NVMf targets
        self.fabric: Any = None
        self.scheduler: Any = None
        self.consensus: Any = None  # RaftGroup for control-plane faults
        self._leader_kills: List[str] = []  # victims pending revival (FIFO)
        self.down_nodes: set = set()
        self._planned: List[Tuple[float, int, Fault, Optional[float]]] = []
        self._seq = 0
        self._handlers: List[FaultHandler] = []
        self._repair_handlers: List[FaultHandler] = []
        self._started = False

    # -- wiring -------------------------------------------------------------

    @classmethod
    def for_deployment(
        cls,
        deployment: Any,
        seed: int = 0,
        timeline: Optional[FaultTimeline] = None,
    ) -> "FaultInjector":
        """Attach every component of an :class:`apps.Deployment`."""
        injector = cls(
            deployment.env, deployment.cluster, seed=seed, timeline=timeline
        )
        for node, devices in deployment.all_ssds.items():
            for ssd in devices:
                injector.attach_ssd(node, ssd)
        for node, targets in deployment.targets.items():
            for target in targets if isinstance(targets, (list, tuple)) else [targets]:
                injector.attach_target(node, target)
        injector.fabric = deployment.fabric
        injector.scheduler = deployment.scheduler
        return injector

    def attach_ssd(self, node_name: str, ssd: Any) -> None:
        self.ssds.setdefault(node_name, []).append(ssd)

    def attach_target(self, node_name: str, target: Any) -> None:
        self.targets.setdefault(node_name, []).append(target)

    def attach_consensus(self, group: Any) -> None:
        """Wire a :class:`~repro.consensus.group.RaftGroup` so
        :class:`LeaderKill` / :class:`NetworkPartition` faults drive real
        consensus recovery instead of landing as timeline-only records."""
        self.consensus = group

    def subscribe(self, handler: FaultHandler) -> None:
        """Call ``handler(record, fault, radius)`` at each injection."""
        self._handlers.append(handler)

    def subscribe_repair(self, handler: FaultHandler) -> None:
        """Call ``handler(record, fault, radius)`` when a fault's repair
        completes (component back up; distinct from app recovery)."""
        self._repair_handlers.append(handler)

    def is_down(self, node_name: str) -> bool:
        return node_name in self.down_nodes

    def targets_on(self, node_name: str) -> List[Any]:
        """NVMf target daemons attached on one node."""
        return list(self.targets.get(node_name, []))

    # -- scheduling ---------------------------------------------------------

    def at(
        self, time: float, fault: Fault, repair_after: Optional[float] = None
    ) -> None:
        """Plan one fault at an absolute simulated time (run by
        :meth:`start`; ties break by insertion order)."""
        if self._started:
            raise RuntimeError("injector already started; use fire_at()")
        self._planned.append((float(time), self._seq, fault, repair_after))
        self._seq += 1

    def arm_hazard(
        self,
        spec: HazardSpec,
        components: Sequence[str],
        horizon: float,
        fault_factory: Callable[[str], Fault],
        repair_after: Optional[float] = None,
    ) -> int:
        """Plan seeded renewal-process faults for a component class.

        Times are pre-drawn per component from ``(seed, class,
        component)`` streams — common random numbers across systems.
        Returns the number of faults planned.
        """
        planned = 0
        for component in components:
            for t in draw_arrival_times(self.seed, spec, component, horizon):
                self.at(t, fault_factory(component), repair_after)
                planned += 1
        return planned

    def planned(self) -> List[Tuple[float, Fault]]:
        """The armed schedule in firing order (time, fault)."""
        return [(t, f) for t, _seq, f, _r in sorted(self._planned, key=lambda p: (p[0], p[1]))]

    def start(self) -> Process:
        """Launch the injection process over the planned schedule."""
        self._started = True
        return self.env.process(self._run())

    def _run(self) -> Generator[Event, Any, None]:
        for time, _seq, fault, repair_after in sorted(
            self._planned, key=lambda p: (p[0], p[1])
        ):
            delay = time - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self.inject(fault, repair_after)

    def fire_at(
        self, time: float, fault: Fault, repair_after: Optional[float] = None
    ) -> Process:
        """One-shot: an independent process firing ``fault`` at ``time``
        (usable after :meth:`start`, e.g. from reactive scenarios)."""

        def proc() -> Generator[Event, Any, None]:
            delay = time - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self.inject(fault, repair_after)

        return self.env.process(proc())

    # -- injection ----------------------------------------------------------

    def inject(
        self, fault: Fault, repair_after: Optional[float] = None
    ) -> FaultRecord:
        """Apply ``fault`` right now; returns its timeline record."""
        radius = blast_radius(fault, self.cluster, self.domains or None)
        self._apply(fault, radius)
        record = self.timeline.record(fault, self.env.now, radius)
        tr = tracer_of(self.env)
        if tr is not None:
            tr.instant("fault.inject", cat="fault", track="faults",
                       kind=fault.kind.value, target=fault.target)
        ctx = self.env.obs
        if ctx is not None:
            ctx.metrics.counter("faults.injected").add(1)
        for handler in self._handlers:
            handler(record, fault, radius)
        if repair_after is not None and repair_after > 0:
            self.env.process(self._repair(record, fault, radius, repair_after))
        return record

    def _apply(self, fault: Fault, radius: BlastRadius) -> None:
        if isinstance(fault, (LeaderKill, NetworkPartition)):
            self._apply_consensus(fault)
            return
        for node in radius.ssds:
            for ssd in self.ssds.get(node, []):
                if ssd.powered:
                    ssd.power_fail()
        for node in radius.targets:
            for target in self.targets.get(node, []):
                if getattr(target, "alive", True):
                    target.kill()
        if self.fabric is not None:
            factor = fault.factor if isinstance(fault, LinkDegrade) else 0.0
            for host in radius.links:
                self.fabric.degrade(host, factor)
        for node in radius.nodes:
            self.down_nodes.add(node)
            if self.scheduler is not None:
                self.scheduler.mark_node_down(node)

    def _apply_consensus(self, fault: Fault) -> None:
        group = self.consensus
        if group is None:
            return  # timeline-only record; nothing wired to strike
        if isinstance(fault, LeaderKill):
            victim = group.kill_leader()
            if victim is not None:
                self._leader_kills.append(victim)
            return
        assert isinstance(fault, NetworkPartition)
        members = list(fault.members)
        if not members:
            # Worst single cut: the current leader plus enough followers
            # to form the largest still-minority side.
            minority = len(group.members) - group.quorum_size
            lead = group.leader()
            members = [lead] if lead is not None else []
            for name in group.members:
                if len(members) >= minority:
                    break
                if name != lead:
                    members.append(name)
        group.partition(members)

    def _repair_consensus(self, fault: Fault) -> None:
        group = self.consensus
        if group is None:
            return
        if isinstance(fault, LeaderKill):
            if self._leader_kills:
                group.revive(self._leader_kills.pop(0))
            return
        group.heal()

    def _repair(
        self,
        record: FaultRecord,
        fault: Fault,
        radius: BlastRadius,
        repair_after: float,
    ) -> Generator[Event, Any, None]:
        yield self.env.timeout(repair_after)
        if isinstance(fault, (LeaderKill, NetworkPartition)):
            self._repair_consensus(fault)
        for node in radius.ssds:
            for ssd in self.ssds.get(node, []):
                if not ssd.powered:
                    ssd.power_restore()
        for node in radius.targets:
            for target in self.targets.get(node, []):
                if not getattr(target, "alive", True):
                    target.revive()
        if self.fabric is not None:
            for host in radius.links:
                self.fabric.restore(host)
        for node in radius.nodes:
            self.down_nodes.discard(node)
            if self.scheduler is not None:
                self.scheduler.mark_node_up(node)
        self.timeline.mark_repaired(record, self.env.now)
        tr = tracer_of(self.env)
        if tr is not None:
            tr.instant("fault.repair", cat="fault", track="faults",
                       kind=fault.kind.value, target=fault.target)
        ctx = self.env.obs
        if ctx is not None:
            ctx.metrics.counter("faults.repaired").add(1)
        for handler in self._repair_handlers:
            handler(record, fault, radius)
