"""Typed fault kinds and their blast radii (§III-E/F made executable).

The paper's resilience story rests on *failure domains*: storage for a
job is placed on partner domains so that one hardware loss never takes
compute and its checkpoints together. This module turns that story into
data: each fault kind names one physical component, and
:func:`blast_radius` expands it — through :class:`ClusterSpec` and the
derived :class:`FailureDomain` partition — into the full set of hosts,
SSDs, target daemons, and links the fault takes out. A PDU fault, for
example, kills every co-located node *and* every SSD they carry.

Faults are plain frozen dataclasses so schedules hash, compare, and
serialise deterministically (the injector sorts them into a timeline
that must be bit-identical across runs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import ClassVar, List, Optional, Tuple

from repro.topology.cluster import ClusterSpec, NodeKind
from repro.topology.failure_domains import FailureDomain, derive_failure_domains

__all__ = [
    "FaultKind",
    "Fault",
    "NodeCrash",
    "SSDPowerLoss",
    "NVMfTargetDeath",
    "LinkDegrade",
    "SwitchFailure",
    "PDUFailure",
    "LeaderKill",
    "NetworkPartition",
    "BlastRadius",
    "blast_radius",
]


class FaultKind(enum.Enum):
    """Component classes a fault can strike."""

    NODE_CRASH = "node-crash"
    SSD_POWER_LOSS = "ssd-power-loss"
    NVMF_TARGET_DEATH = "nvmf-target-death"
    LINK_DEGRADE = "link-degrade"
    SWITCH_FAILURE = "switch-failure"
    PDU_FAILURE = "pdu-failure"
    LEADER_KILL = "leader-kill"
    NETWORK_PARTITION = "network-partition"


@dataclass(frozen=True)
class Fault:
    """One component-level fault; ``target`` names the component."""

    target: str
    kind: ClassVar[FaultKind]

    def describe(self) -> str:
        return f"{self.kind.value}({self.target})"


@dataclass(frozen=True)
class NodeCrash(Fault):
    """A host dies (kernel panic, DIMM failure, operator error)."""

    kind: ClassVar[FaultKind] = FaultKind.NODE_CRASH


@dataclass(frozen=True)
class SSDPowerLoss(Fault):
    """Every SSD on ``target`` loses power; the host itself survives.

    Committed data survives (device capacitance flushes the RAM buffer),
    in-flight commands are lost — the §III-E durability contract.
    """

    kind: ClassVar[FaultKind] = FaultKind.SSD_POWER_LOSS


@dataclass(frozen=True)
class NVMfTargetDeath(Fault):
    """The SPDK target daemon on ``target`` dies; device and host live.

    Sessions to the target break until it is revived — data on media is
    untouched (a software failure, not a durability event).
    """

    kind: ClassVar[FaultKind] = FaultKind.NVMF_TARGET_DEATH


@dataclass(frozen=True)
class LinkDegrade(Fault):
    """``target``'s fabric link drops to ``factor`` of its capacity."""

    factor: float = 0.25
    kind: ClassVar[FaultKind] = FaultKind.LINK_DEGRADE


@dataclass(frozen=True)
class SwitchFailure(Fault):
    """A switch dies. A ToR failure isolates its whole rack; the core
    switch partitions every rack from every other."""

    kind: ClassVar[FaultKind] = FaultKind.SWITCH_FAILURE


@dataclass(frozen=True)
class PDUFailure(Fault):
    """A power distribution unit dies: ``target`` is a failure-domain id
    (``rack/pdu``) and everything co-located goes down at once."""

    kind: ClassVar[FaultKind] = FaultKind.PDU_FAILURE


@dataclass(frozen=True)
class LeaderKill(Fault):
    """Crash whichever member currently leads the control-plane Raft
    group named ``target``.  The victim is resolved at injection time by
    the attached :class:`~repro.consensus.group.RaftGroup`, so the same
    schedule exercises whoever won the preceding election."""

    kind: ClassVar[FaultKind] = FaultKind.LEADER_KILL


@dataclass(frozen=True)
class NetworkPartition(Fault):
    """Isolate ``members`` of the Raft group ``target`` from the rest.

    Traffic within the isolated side still flows; with a minority
    isolated the majority side re-elects (if the leader was cut off)
    and keeps committing.  An empty ``members`` isolates a largest
    non-quorum minority containing the current leader — the worst
    single cut that must not lose data.
    """

    members: Tuple[str, ...] = ()
    kind: ClassVar[FaultKind] = FaultKind.NETWORK_PARTITION


@dataclass(frozen=True)
class BlastRadius:
    """Everything one fault takes out, by component class.

    * ``nodes`` — hosts that are dead or unreachable (their processes
      are gone as far as the job is concerned),
    * ``ssds`` — node names whose attached SSDs lost power,
    * ``targets`` — node names whose NVMf target daemon is down,
    * ``links`` — hosts whose fabric links are degraded,
    * ``domains`` — failure-domain ids wholly inside the blast.
    """

    nodes: Tuple[str, ...] = ()
    ssds: Tuple[str, ...] = ()
    targets: Tuple[str, ...] = ()
    links: Tuple[str, ...] = ()
    domains: Tuple[str, ...] = ()

    def is_empty(self) -> bool:
        return not (self.nodes or self.ssds or self.targets or self.links)


def _domain_by_id(domains: List[FailureDomain], domain_id: str) -> FailureDomain:
    for domain in domains:
        if domain.domain_id == domain_id:
            return domain
    raise KeyError(f"no failure domain {domain_id!r}")


def _covered_domains(
    domains: List[FailureDomain], dead_nodes: Tuple[str, ...]
) -> Tuple[str, ...]:
    """Domain ids whose *every* node is inside the blast."""
    dead = set(dead_nodes)
    return tuple(
        d.domain_id
        for d in domains
        if d.nodes and all(n.name in dead for n in d.nodes)
    )


def blast_radius(
    fault: Fault,
    cluster: Optional[ClusterSpec] = None,
    domains: Optional[List[FailureDomain]] = None,
) -> BlastRadius:
    """Expand a component fault into everything it takes out.

    Without a cluster the radius degrades to the named component alone
    (the standalone-device path :class:`repro.nvme.power.PowerController`
    uses); with one, shared-hardware effects are derived from the spec
    and its failure-domain partition.
    """
    if cluster is not None and domains is None:
        domains = derive_failure_domains(cluster)
    domains = domains or []

    if isinstance(fault, NodeCrash):
        if cluster is None:
            return BlastRadius(nodes=(fault.target,))
        node = cluster.node(fault.target)
        storage = node.kind is NodeKind.STORAGE
        return BlastRadius(
            nodes=(node.name,),
            # A dead storage host takes its in-chassis SSDs offline and
            # its target daemon with it.
            ssds=(node.name,) if storage and node.ssd_count else (),
            targets=(node.name,) if storage else (),
            domains=_covered_domains(domains, (node.name,)),
        )

    if isinstance(fault, (LeaderKill, NetworkPartition)):
        # Control-plane faults: no physical hardware leaves service —
        # the injector resolves the victim against the attached
        # consensus group at injection time.
        return BlastRadius()

    if isinstance(fault, SSDPowerLoss):
        return BlastRadius(ssds=(fault.target,))

    if isinstance(fault, NVMfTargetDeath):
        return BlastRadius(targets=(fault.target,))

    if isinstance(fault, LinkDegrade):
        return BlastRadius(links=(fault.target,))

    if isinstance(fault, SwitchFailure):
        if cluster is None:
            return BlastRadius(links=(fault.target,))
        for rack in cluster.racks:
            if fault.target == f"switch-{rack.name}":
                # ToR death: the rack is unreachable — hosts still run
                # but no packet reaches them, and no data is lost.
                names = tuple(n.name for n in rack.nodes)
                return BlastRadius(
                    nodes=names,
                    targets=tuple(
                        n.name for n in rack.nodes if n.kind is NodeKind.STORAGE
                    ),
                    domains=_covered_domains(domains, names),
                )
        # Core switch: every host keeps its ToR but loses cross-rack
        # connectivity; model as a degraded link on every host.
        return BlastRadius(links=tuple(n.name for n in cluster.nodes))

    if isinstance(fault, PDUFailure):
        if cluster is None:
            return BlastRadius(domains=(fault.target,))
        domain = _domain_by_id(domains, fault.target)
        names = tuple(n.name for n in domain.nodes)
        return BlastRadius(
            nodes=names,
            ssds=tuple(
                n.name for n in domain.nodes
                if n.kind is NodeKind.STORAGE and n.ssd_count
            ),
            targets=tuple(
                n.name for n in domain.nodes if n.kind is NodeKind.STORAGE
            ),
            domains=(domain.domain_id,),
        )

    raise TypeError(f"unknown fault type {type(fault).__name__}")
