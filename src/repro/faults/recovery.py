"""Recovery orchestration: faults exercising the *real* restart paths.

The :class:`RecoveryOrchestrator` runs one checkpointing job on a
:class:`~repro.apps.deployment.Deployment` while a
:class:`~repro.faults.injector.FaultInjector` fires faults into it, and
drives the same machinery a production stack would:

* **compute-node crash** — the whole MPI world aborts (no
  fault-tolerant MPI), the scheduler :meth:`requeue`\\ s the job onto
  replacement nodes *preserving its namespace grants*, and every new
  rank rebuilds its MicroFS from the partner-domain SSD partition via
  log replay (:meth:`NVMeCRRuntime.recover`), then reads the newest
  surviving checkpoint back;
* **storage-tier loss** (SSD power gone under the job's grants) — the
  level-1 tier is unrecoverable, so ranks fall back to the newest
  level-2 checkpoint on the parallel filesystem
  (:meth:`MultiLevelCheckpointer.recover_latest` with
  ``level1_alive=False``) and run level-2-only from then on;
* **target-daemon death / rack partition** — data is intact but
  unreachable; the orchestrator waits out the repair (or respawns the
  daemon), then takes the level-1 path.

Every step lands in the injector's :class:`FaultTimeline` so tests and
experiments can assert *which* path ran, from where, and how many bytes
were replayed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional

from repro.core.config import RuntimeConfig
from repro.core.interception import PosixShim
from repro.core.multilevel import MultiLevelCheckpointer
from repro.errors import DeviceError, FabricError, FSError, RecoveryError
from repro.faults.injector import FaultInjector
from repro.faults.model import BlastRadius, Fault, FaultKind
from repro.faults.timeline import FaultRecord
from repro.mpi.runtime import launch
from repro.obs.context import tracer_of
from repro.sim.engine import Event, Interrupt

__all__ = ["RecoveryOrchestrator", "ResilientRunReport"]

# Superblock read during log replay (mirrors microfs.layout).
_SUPERBLOCK_BYTES = 4096


@dataclass
class ResilientRunReport:
    """Outcome of one fault-injected run."""

    rounds_target: int
    rounds_completed: int
    compute_time_per_round: float
    wall_time: float
    rounds_lost: int = 0  # rounds of compute redone after rollbacks
    recoveries: int = 0
    level2_mode: bool = False  # storage tier lost; finished on the PFS

    @property
    def effective_progress(self) -> float:
        """Useful compute time over wall time (the resilience metric)."""
        if self.wall_time <= 0:
            return 1.0
        return self.rounds_completed * self.compute_time_per_round / self.wall_time


class RecoveryOrchestrator:
    """Runs a compute/checkpoint loop under fault injection.

    One instance manages one job. ``lustre`` (any object with
    ``write_file``/``read_file``) enables the level-2 tier; without it a
    storage-tier loss is fatal (:class:`RecoveryError`).
    """

    def __init__(
        self,
        deployment,
        injector: FaultInjector,
        *,
        config: Optional[RuntimeConfig] = None,
        lustre=None,
        pfs_interval: int = 4,
        detection_latency: float = 0.1,
        requeue_cost: float = 2.0,
        target_respawn: float = 1.0,
    ):
        self.dep = deployment
        self.env = deployment.env
        self.injector = injector
        self.timeline = injector.timeline
        self.config = config or RuntimeConfig()
        self.lustre = lustre
        self.pfs_interval = pfs_interval
        self.detection_latency = detection_latency
        self.requeue_cost = requeue_cost
        self.target_respawn = target_respawn
        self.job = None
        self.plan = None
        self.shims: List[PosixShim] = []
        self.runtimes: List = []
        self.ckpt_mgrs: List[MultiLevelCheckpointer] = []
        self._pending: List[tuple] = []
        self._signal: Optional[Event] = None
        self._level2_only = False
        injector.subscribe(self._on_fault)

    # -- fault notification -------------------------------------------------

    def _on_fault(self, record: FaultRecord, fault: Fault, radius: BlastRadius) -> None:
        self._pending.append((record, fault, radius))
        if self._signal is not None and not self._signal.triggered:
            self._signal.succeed()

    def _fault_signal(self) -> Event:
        if self._signal is None or self._signal.triggered:
            self._signal = self.env.event()
        return self._signal

    # -- public entry -------------------------------------------------------

    def run(
        self,
        name: str = "resilient",
        nprocs: int = 2,
        rounds: int = 6,
        bytes_per_rank: int = 8 * 1024**2,
        compute_time: float = 1.0,
        procs_per_node: int = 1,
        devices: Optional[int] = None,
        bytes_per_device: int = 2 * 1024**3,
    ) -> ResilientRunReport:
        """Run to completion (drives the simulation)."""
        proc = self.env.process(
            self.run_process(
                name=name, nprocs=nprocs, rounds=rounds,
                bytes_per_rank=bytes_per_rank, compute_time=compute_time,
                procs_per_node=procs_per_node, devices=devices,
                bytes_per_device=bytes_per_device,
            )
        )
        report = self.env.run_until_complete(proc)
        self.env.run()  # drain repairs and stragglers
        return report

    def run_process(
        self,
        name: str = "resilient",
        nprocs: int = 2,
        rounds: int = 6,
        bytes_per_rank: int = 8 * 1024**2,
        compute_time: float = 1.0,
        procs_per_node: int = 1,
        devices: Optional[int] = None,
        bytes_per_device: int = 2 * 1024**3,
    ) -> Generator[Event, Any, ResilientRunReport]:
        env = self.env
        self.job, self.plan = self.dep.submit(
            name, nprocs=nprocs, procs_per_node=procs_per_node,
            devices=devices, bytes_per_device=bytes_per_device,
        )
        start = env.now
        yield from self._launch_ranks(recovering=False)
        self.ckpt_mgrs = [
            MultiLevelCheckpointer(
                self.shims[rank], self.lustre,
                pfs_interval=self.pfs_interval if self.lustre else 10**9,
                rank=rank,
            )
            for rank in range(nprocs)
        ]
        report = ResilientRunReport(
            rounds_target=rounds, rounds_completed=0,
            compute_time_per_round=compute_time, wall_time=0.0,
        )
        completed = 0
        while completed < rounds:
            # -- compute phase ---------------------------------------------
            fault = yield from self._phase(
                [env.process(self._sleep(compute_time))]
            )
            if fault is not None:
                before = completed
                completed = yield from self._recover(fault, completed, report)
                report.rounds_lost += max(0, before - completed)
                continue
            # -- checkpoint phase ------------------------------------------
            step = completed
            fault = yield from self._phase(
                [
                    env.process(self._write_ckpt(rank, step, bytes_per_rank))
                    for rank in range(nprocs)
                ]
            )
            if fault is not None:
                before = completed + 1  # this round's compute is redone
                completed = yield from self._recover(fault, completed, report)
                report.rounds_lost += max(0, before - completed)
                continue
            completed += 1
        report.rounds_completed = completed
        report.wall_time = env.now - start
        report.level2_mode = self._level2_only
        self.dep.scheduler.complete(self.job)
        return report

    # -- phases -------------------------------------------------------------

    def _sleep(self, duration: float) -> Generator[Event, Any, None]:
        try:
            yield self.env.timeout(duration)
        except Interrupt:
            pass

    def _write_ckpt(
        self, rank: int, step: int, nbytes: int
    ) -> Generator[Event, Any, bool]:
        mgr = self.ckpt_mgrs[rank]
        try:
            yield from mgr.write_checkpoint(step, nbytes)
            return True
        except (Interrupt, DeviceError, FabricError, FSError):
            # The fault beat us; the orchestrator rolls this round back.
            return False

    def _phase(self, procs) -> Generator[Event, Any, Optional[tuple]]:
        """Run ``procs`` to completion unless a fault fires first.

        Returns the pending (record, fault, radius) tuple if one did,
        else None. Interrupted/failed procs unwind before returning.
        """
        env = self.env
        work = env.all_of(procs)
        if self._pending:
            # A fault fired between phases: abort before doing work.
            for p in procs:
                if p.is_alive:
                    p.interrupt("fault pending")
            yield work
            return self._pending.pop(0)
        yield env.any_of([work, self._fault_signal()])
        if not work.triggered:
            for p in procs:
                if p.is_alive:
                    p.interrupt("fault injected")
            yield work
        if self._pending:
            return self._pending.pop(0)
        return None

    # -- rank lifecycle -----------------------------------------------------

    def _launch_ranks(self, recovering: bool) -> Generator[Event, Any, List]:
        """(Re)start every rank on ``job.rank_to_node`` placements.

        With ``recovering=True`` each rank replays its partition's
        operation log into a fresh MicroFS before the app resumes. The
        background checkpointer stays off: the orchestrator owns the
        checkpoint schedule, and a half-started daemon racing recovery
        would clobber the superblock it is about to read.
        """
        nprocs = self.job.spec.nprocs
        shims: List[Optional[PosixShim]] = [None] * nprocs
        runtimes: List = [None] * nprocs
        reports: List = [None] * nprocs

        def main(comm):
            runtime = self.dep.build_runtime(comm, self.job, self.plan, self.config)
            yield from runtime.init(start_checkpointer=False)
            if recovering:
                reports[comm.rank] = yield from runtime.recover()
            runtimes[comm.rank] = runtime
            shims[comm.rank] = PosixShim(runtime)

        mpi_job = launch(
            self.env, nprocs, main, node_of_rank=self.job.rank_to_node
        )
        yield mpi_job.done
        mpi_job.done.value  # re-raise rank failures
        self.shims = shims  # type: ignore[assignment]
        self.runtimes = runtimes
        for rank, mgr in enumerate(self.ckpt_mgrs):
            mgr.level1 = shims[rank]  # point existing bookkeeping at new shims
        return reports

    # -- recovery paths -----------------------------------------------------

    def _recover(
        self, pending: tuple, completed: int, report: ResilientRunReport
    ) -> Generator[Event, Any, int]:
        """Handle one fault; returns the new ``completed`` round count."""
        record, fault, radius = pending
        env = self.env
        grant_nodes = {g.node_name for g in self.plan.grants}
        storage_data_lost = bool(set(radius.ssds) & grant_nodes)
        storage_unreachable = bool(set(radius.targets) & grant_nodes)
        compute_hit = bool(set(radius.nodes) & set(self.job.compute_nodes))
        yield env.timeout(self.detection_latency)
        self.timeline.mark_detected(record, env.now)
        tr = tracer_of(env)
        if tr is not None:
            tr.instant("fault.detect", cat="fault", track="faults",
                       kind=fault.kind.value, target=fault.target)
        ctx = env.obs
        if ctx is not None:
            ctx.metrics.counter("faults.detected").add(1)
        if fault.kind is FaultKind.LINK_DEGRADE:
            record.note = "degraded link; running slow, no recovery"
            return completed
        if not (storage_data_lost or storage_unreachable or compute_hit):
            record.note = "outside job footprint"
            return completed
        report.recoveries += 1
        if storage_data_lost:
            return (yield from self._recover_level2(record, report))
        if storage_unreachable and not compute_hit:
            yield from self._await_storage(record)
        return (yield from self._recover_level1(record, completed))

    def _await_storage(self, record: FaultRecord) -> Generator[Event, Any, None]:
        """Wait for dead target daemons / severed racks to come back.

        If the injector scheduled a repair we ride it out; otherwise the
        orchestrator respawns the daemons itself (systemd-style) after
        ``target_respawn`` seconds.
        """
        deadline = self.env.now + self.target_respawn
        while record.repaired_at is None and self.env.now < deadline:
            yield self.env.timeout(min(0.05, self.target_respawn))
        if record.repaired_at is None:
            for node in record.targets:
                for target in self.injector.targets_on(node):
                    if not target.alive:
                        target.revive()
            record.note = "target daemons respawned by orchestrator"

    def _recover_level1(
        self, record: FaultRecord, completed: int
    ) -> Generator[Event, Any, int]:
        """Requeue (if nodes died) and log-replay from partner SSDs."""
        env = self.env
        lost_nodes = set(record.nodes) & set(self.job.compute_nodes)
        if lost_nodes:
            self.dep.scheduler.requeue(self.job, restart_cost=self.requeue_cost)
            yield env.timeout(self.requeue_cost)
        self._drain_ranks()
        reports = yield from self._launch_ranks(recovering=True)
        bytes_replayed = 0
        records_replayed = 0
        for rank, rep in enumerate(reports):
            if rep is None:
                continue
            records_replayed += rep.records_replayed
            bytes_replayed += _SUPERBLOCK_BYTES
            if rep.state_loaded:
                bytes_replayed += self.config.log_region_bytes
        # Restart data: every rank reads its newest surviving checkpoint.
        restored = completed
        if completed > 0:
            restored_steps = []
            for rank in range(self.job.spec.nprocs):
                rec = yield from self.ckpt_mgrs[rank].recover_latest(
                    level1_alive=True
                )
                bytes_replayed += rec.nbytes
                restored_steps.append(rec.step)
            restored = min(restored_steps) + 1
        self.timeline.mark_recovered(
            record,
            env.now,
            level=1,
            restored_from=self.plan.grant_of_rank(0).node_name,
            bytes_replayed=bytes_replayed,
            records_replayed=records_replayed,
            ranks_restarted=self.job.spec.nprocs,
            note=record.note or "log replay from partner-domain SSD",
        )
        self._obs_recovered(record, level=1, bytes_replayed=bytes_replayed)
        return restored

    def _recover_level2(
        self, record: FaultRecord, report: ResilientRunReport
    ) -> Generator[Event, Any, int]:
        """The NVMe tier's data is gone: fall back to the PFS copy."""
        env = self.env
        if self.lustre is None:
            record.note = "storage tier lost and no level-2 tier configured"
            raise RecoveryError(record.note)
        self._drain_ranks()
        lost_nodes = set(record.nodes) & set(self.job.compute_nodes)
        if lost_nodes:
            # Co-located compute died too: reallocate for bookkeeping
            # (the level-2-only loop needs no live runtimes).
            self.dep.scheduler.requeue(self.job, restart_cost=self.requeue_cost)
        yield env.timeout(self.requeue_cost)
        bytes_replayed = 0
        restored_steps = []
        for rank in range(self.job.spec.nprocs):
            try:
                rec = yield from self.ckpt_mgrs[rank].recover_latest(
                    level1_alive=False
                )
            except RecoveryError:
                restored_steps.append(-1)  # no PFS checkpoint yet: from zero
                continue
            bytes_replayed += rec.nbytes
            restored_steps.append(rec.step)
        restored = max(0, min(restored_steps) + 1)
        # The fast tier is gone for the rest of the run: every further
        # checkpoint goes straight to the PFS.
        self._level2_only = True
        for mgr in self.ckpt_mgrs:
            mgr.pfs_interval = 1
        self.timeline.mark_recovered(
            record,
            env.now,
            level=2,
            restored_from="lustre",
            bytes_replayed=bytes_replayed,
            ranks_restarted=self.job.spec.nprocs,
            note="level-1 tier lost; restored from parallel filesystem",
        )
        self._obs_recovered(record, level=2, bytes_replayed=bytes_replayed)
        return restored

    def _obs_recovered(self, record: FaultRecord, level: int,
                       bytes_replayed: int) -> None:
        tr = tracer_of(self.env)
        if tr is not None:
            tr.instant("fault.recover", cat="fault", track="faults",
                       kind=record.kind, target=record.target,
                       level=level, bytes_replayed=bytes_replayed)
        ctx = self.env.obs
        if ctx is not None:
            ctx.metrics.counter("faults.recovered").add(1)

    def _drain_ranks(self) -> None:
        """Tear down transports of the dying world (best effort)."""
        for runtime in self.runtimes:
            if runtime is not None:
                runtime.initiator.disconnect_all()
