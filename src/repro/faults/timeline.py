"""FaultTimeline: the observability record of a fault campaign.

Every injected fault becomes one :class:`FaultRecord` carrying the full
injected / detected / recovered lifecycle, its blast radius, and what
recovery actually did (which tier served the restore, bytes and log
records replayed, ranks restarted). The timeline serialises to canonical
JSON so two runs with the same seed can be compared bit-for-bit — the
common-random-numbers acceptance check — and folds into a flat summary
dict suitable for :attr:`repro.metrics.RunResult.extra`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro.faults.model import BlastRadius, Fault

__all__ = ["FaultRecord", "FaultTimeline"]


@dataclass
class FaultRecord:  # reproflow: ignore[FLOW103] (one fault lifecycle writes phases in order)
    """One fault's lifecycle, from injection to (maybe) recovery."""

    fault_id: int
    kind: str
    target: str
    injected_at: float
    nodes: Tuple[str, ...] = ()
    ssds: Tuple[str, ...] = ()
    targets: Tuple[str, ...] = ()
    links: Tuple[str, ...] = ()
    domains: Tuple[str, ...] = ()
    detected_at: Optional[float] = None
    recovered_at: Optional[float] = None
    repaired_at: Optional[float] = None  # component back up (≠ app recovered)
    recovery_level: Optional[int] = None  # 1 = partner-SSD replay, 2 = PFS tier
    restored_from: Optional[str] = None  # storage node the restore read from
    bytes_replayed: int = 0
    records_replayed: int = 0
    ranks_restarted: int = 0
    note: str = ""

    @property
    def recovered(self) -> bool:
        return self.recovered_at is not None

    def time_to_recover(self) -> Optional[float]:
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.injected_at


class FaultTimeline:
    """Ordered record of every fault injected into one simulation."""

    def __init__(self) -> None:
        self.records: List[FaultRecord] = []

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # -- recording ----------------------------------------------------------

    def record(
        self, fault: Fault, at: float, radius: Optional[BlastRadius] = None
    ) -> FaultRecord:
        radius = radius or BlastRadius()
        rec = FaultRecord(
            fault_id=len(self.records),
            kind=fault.kind.value,
            target=fault.target,
            injected_at=at,
            nodes=radius.nodes,
            ssds=radius.ssds,
            targets=radius.targets,
            links=radius.links,
            domains=radius.domains,
        )
        self.records.append(rec)
        return rec

    def mark_detected(self, rec: FaultRecord, at: float) -> None:
        rec.detected_at = at

    def mark_repaired(self, rec: FaultRecord, at: float) -> None:
        rec.repaired_at = at

    def mark_recovered(
        self,
        rec: FaultRecord,
        at: float,
        level: int = 1,
        restored_from: Optional[str] = None,
        bytes_replayed: int = 0,
        records_replayed: int = 0,
        ranks_restarted: int = 0,
        note: str = "",
    ) -> None:
        rec.recovered_at = at
        rec.recovery_level = level
        rec.restored_from = restored_from
        rec.bytes_replayed += int(bytes_replayed)
        rec.records_replayed += int(records_replayed)
        rec.ranks_restarted += int(ranks_restarted)
        if note:
            rec.note = note

    # -- sharded-run merge ---------------------------------------------------

    def to_records(self) -> List[Dict]:
        """Picklable plain-dict image of every record, in order."""
        return [asdict(rec) for rec in self.records]

    @classmethod
    def from_records(cls, records: List[Dict]) -> "FaultTimeline":
        """Rebuild a timeline from :meth:`to_records` output."""
        timeline = cls()
        for raw in records:
            data = dict(raw)
            for key in ("nodes", "ssds", "targets", "links", "domains"):
                data[key] = tuple(data.get(key, ()))
            timeline.records.append(FaultRecord(**data))
        return timeline

    @classmethod
    def merge(cls, timelines: List["FaultTimeline"]) -> "FaultTimeline":
        """Deterministically merge per-shard timelines into one.

        Records keep their relative order within a shard; across shards
        they interleave by injection time (ties broken by source shard,
        then original id), and fault ids are re-issued globally so the
        merged timeline fingerprints like a single-run one.  The source
        shard is preserved in ``note`` only when a fault's blast radius
        touches a failure domain that other shards also hit — the
        cross-shard blast-radius signal recovery planning needs.
        """
        domain_shards: Dict[str, set] = {}
        for shard, timeline in enumerate(timelines):
            for rec in timeline.records:
                for domain in rec.domains:
                    domain_shards.setdefault(domain, set()).add(shard)
        keyed = sorted(
            ((rec.injected_at, shard, rec.fault_id, rec)
             for shard, timeline in enumerate(timelines)
             for rec in timeline.records),
            key=lambda item: item[:3],
        )
        merged = cls()
        for injected_at, shard, _old_id, rec in keyed:
            data = asdict(rec)
            data["fault_id"] = len(merged.records)
            cross = sorted(
                d for d in rec.domains if len(domain_shards.get(d, ())) > 1
            )
            if cross:
                marker = f"cross-shard[{shard}]: {','.join(cross)}"
                data["note"] = f"{rec.note}; {marker}" if rec.note else marker
            for key in ("nodes", "ssds", "targets", "links", "domains"):
                data[key] = tuple(data[key])
            merged.records.append(FaultRecord(**data))
        return merged

    def cross_shard_domains(self) -> List[str]:
        """Failure domains a merged timeline saw from more than one shard."""
        out = set()
        for rec in self.records:
            if "cross-shard[" in rec.note:
                out.update(rec.note.rsplit(": ", 1)[-1].split(","))
        return sorted(out)

    # -- export -------------------------------------------------------------

    def to_json(self, path: Optional[str] = None) -> str:
        """Canonical JSON (sorted keys, fixed separators): bit-identical
        for bit-identical campaigns."""
        payload = [asdict(rec) for rec in self.records]
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text)
        return text

    def fingerprint(self) -> str:
        """SHA-256 of the canonical JSON; equal ⇔ identical timelines."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    def summary(self) -> Dict[str, float]:
        """Flat numeric summary for :attr:`RunResult.extra` / table rows."""
        recovered = [r for r in self.records if r.recovered]
        ttrs = [r.time_to_recover() for r in recovered]
        out: Dict[str, float] = {
            "faults_injected": float(len(self.records)),
            "faults_recovered": float(len(recovered)),
            "bytes_replayed": float(sum(r.bytes_replayed for r in self.records)),
            "records_replayed": float(
                sum(r.records_replayed for r in self.records)
            ),
            "ranks_restarted": float(
                sum(r.ranks_restarted for r in self.records)
            ),
            "mean_ttr_s": (sum(ttrs) / len(ttrs)) if ttrs else 0.0,
            "level2_recoveries": float(
                sum(1 for r in recovered if r.recovery_level == 2)
            ),
        }
        by_kind: Dict[str, int] = {}
        for rec in self.records:
            by_kind[rec.kind] = by_kind.get(rec.kind, 0) + 1
        for kind, count in sorted(by_kind.items()):
            out[f"faults[{kind}]"] = float(count)
        return out
