"""Consistent-hashing data distributors.

GlusterFS distributes files across storage servers by hashing the file
name (the paper cites the Lamping–Veach jump consistent hash analysis
[17] for its load-imbalance behaviour at low concurrency). Both the
jump hash and a classic vnode ring are implemented; Figure 7(b) uses
:func:`jump_hash` for the GlusterFS model, and the ring is available as
an alternative distributor for ablations.
"""

from repro.hashing.jump import jump_hash, place_names
from repro.hashing.ring import HashRing

__all__ = ["jump_hash", "place_names", "HashRing"]
