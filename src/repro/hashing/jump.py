"""Lamping–Veach jump consistent hash.

Reference: J. Lamping and E. Veach, "A Fast, Minimal Memory, Consistent
Hash Algorithm", arXiv:1406.2294 — the paper's citation [17] for why
consistent hashing has a high standard deviation of load at low key
counts, which is exactly the property Figure 7(b) measures.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List

__all__ = ["jump_hash", "place_names"]

_2_31 = float(1 << 31)
_MASK64 = (1 << 64) - 1


def _key64(key: object) -> int:
    """Stable 64-bit key from any printable object (not Python's hash())."""
    digest = hashlib.blake2b(repr(key).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def jump_hash(key: object, num_buckets: int) -> int:
    """Map ``key`` to a bucket in ``[0, num_buckets)``.

    Direct transcription of the Lamping–Veach algorithm, using their
    64-bit LCG (2862933555777941757). Non-integer keys are first folded
    through blake2b so the distribution does not depend on Python's
    per-process string hashing.
    """
    if num_buckets <= 0:
        raise ValueError(f"num_buckets must be positive, got {num_buckets}")
    k = key if isinstance(key, int) else _key64(key)
    k &= _MASK64
    b, j = -1, 0
    while j < num_buckets:
        b = j
        k = (k * 2862933555777941757 + 1) & _MASK64
        j = int((b + 1) * (_2_31 / ((k >> 33) + 1)))
    return b


def place_names(names: Iterable[object], num_buckets: int) -> List[int]:
    """Vectorised convenience: bucket index per name, in order."""
    return [jump_hash(name, num_buckets) for name in names]
