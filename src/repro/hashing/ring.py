"""Classic consistent-hash ring with virtual nodes.

Provided as an alternative distributor for the ablation benches: rings
with few vnodes show even worse low-concurrency imbalance than jump
hash; adding vnodes trades memory for smoothness. The NVMe-CR storage
balancer needs neither — it maps processes round-robin (§III-F).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List

__all__ = ["HashRing"]


def _point(data: str) -> int:
    """Position on the 64-bit ring for a label."""
    digest = hashlib.blake2b(data.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class HashRing:
    """Map keys to member buckets via a vnode ring."""

    def __init__(self, members: List[str], vnodes: int = 64):
        if not members:
            raise ValueError("hash ring needs at least one member")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._points: List[int] = []
        self._owners: Dict[int, str] = {}
        for member in members:
            self.add(member)

    def add(self, member: str) -> None:
        for i in range(self.vnodes):
            point = _point(f"{member}#{i}")
            if point in self._owners:
                continue  # vanishingly rare 64-bit collision
            self._owners[point] = member
            bisect.insort(self._points, point)

    def remove(self, member: str) -> None:
        for i in range(self.vnodes):
            point = _point(f"{member}#{i}")
            if self._owners.get(point) == member:
                del self._owners[point]
                index = bisect.bisect_left(self._points, point)
                del self._points[index]

    def lookup(self, key: object) -> str:
        """Owner of ``key``: first vnode clockwise from the key's point."""
        if not self._points:
            raise ValueError("lookup on empty ring")
        point = _point(repr(key))
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]

    def members(self) -> List[str]:
        return sorted(set(self._owners.values()))
