"""Unified I/O request pipeline: typed envelopes + QoS classes.

Every hop of the write path — app shim, MicroFS, data plane, NVMf
session, NVMe device — consumes and produces one typed envelope:
:class:`~repro.io.envelope.IORequest` going down, and
:class:`~repro.io.envelope.IOCompletion` coming back up. The envelope
carries the traffic class (:class:`~repro.io.qos.QoSClass`), the
deadline/retry budget, and the span link the observability layer needs
to stitch cross-layer traces.
"""

from repro.io.envelope import (
    IOCompletion,
    IORequest,
    iter_read_chunks,
    iter_write_chunks,
    merge_adjacent_extents,
)
from repro.io.qos import DEFAULT_WRR_WEIGHTS, QoSClass

__all__ = [
    "DEFAULT_WRR_WEIGHTS",
    "IOCompletion",
    "IORequest",
    "QoSClass",
    "iter_read_chunks",
    "iter_write_chunks",
    "merge_adjacent_extents",
]
