"""The typed I/O envelope: one request shape for every layer.

:class:`IORequest` describes a logical I/O — op, namespace, extent
list, QoS class, deadline, retry budget — plus the exact accounting the
data plane's cost model needs (command count, span attributes, counter
names). :class:`IOCompletion` is the uniform answer: status, a latency
breakdown by pipeline stage, and the retries spent.

The chunking helpers here are *the* single implementation of payload
splitting; :meth:`IORequest.chunks` replaces the copies that used to
live in ``DataPlane.write_runs``, ``DataPlane.read_runs``, and
``DataPlane._chunk``. The pinned-seed tests in ``tests/io`` prove the
unification preserves the exact event sequence of the pre-refactor
code.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import InvalidArgument
from repro.io.qos import QoSClass
from repro.nvme.commands import Opcode, Payload

__all__ = [
    "IORequest",
    "IOCompletion",
    "iter_write_chunks",
    "iter_read_chunks",
    "merge_adjacent_extents",
]


def iter_write_chunks(
    offset: int, payload: Payload, limit: Optional[int]
) -> Iterator[Tuple[int, Payload]]:
    """Split a write payload into at-most-``limit``-byte (offset, payload)
    pieces. ``limit=None`` means no splitting. A zero-byte payload still
    yields itself (matching the historical ``DataPlane._chunk``)."""
    if limit is None or payload.nbytes <= limit:
        yield offset, payload
        return
    at = 0
    while at < payload.nbytes:
        size = min(limit, payload.nbytes - at)
        yield offset + at, payload.slice(at, size)
        at += size


def iter_read_chunks(
    offset: int, nbytes: int, limit: Optional[int]
) -> Iterator[Tuple[int, int]]:
    """Split a read into at-most-``limit``-byte (offset, nbytes) pieces.

    A zero-byte read yields nothing (matching the historical
    ``DataPlane.read_runs`` loop, which never issued empty commands).
    """
    if nbytes <= 0:
        return
    if limit is None or nbytes <= limit:
        yield offset, nbytes
        return
    at = offset
    remaining = nbytes
    while remaining > 0:
        size = min(remaining, limit)
        yield at, size
        at += size
        remaining -= size


def merge_adjacent_extents(
    chunks: List[Tuple[int, Payload]]
) -> List[Tuple[int, Payload]]:
    """Coalesce device-adjacent real-data chunks into single extents.

    Only consecutive entries whose device ranges abut are merged, and
    only when both carry real bytes — synthetic (fingerprinted) payloads
    keep their identity tags so read-back verification still holds; they
    share the batch's single fabric round trip without being fused.
    """
    merged: List[Tuple[int, Payload]] = []
    for offset, payload in chunks:
        if merged:
            prev_off, prev = merged[-1]
            if (
                prev_off + prev.nbytes == offset
                and not prev.is_synthetic
                and not payload.is_synthetic
            ):
                merged[-1] = (prev_off, Payload.of_bytes(prev.data + payload.data))
                continue
        merged.append((offset, payload))
    return merged


class IORequest:
    """Typed envelope for one logical I/O through the unified pipeline.

    ``extents`` are ``(offset, Payload)`` pairs for writes and
    ``(offset, nbytes)`` pairs for reads. ``chunk_bytes`` bounds the
    per-command submission size (``None`` submits extents whole), and
    ``n_cmds`` overrides the derived command count where a caller's cost
    model differs from the generic ceil-division (the state-checkpoint
    path charges floor division, a historical calibration choice the
    pinned baselines depend on).

    A ``__slots__`` class (not a dataclass): one envelope is allocated
    per logical I/O on the hot path, and ``@dataclass(slots=True)``
    needs Python >= 3.10 while this tree supports 3.9.
    """

    __slots__ = (
        "op",
        "nsid",
        "extents",
        "command_size",
        "qos",
        "chunk_bytes",
        "n_cmds",
        "flush_after",
        "charge_software",
        "syscalls",
        "deadline",
        "retry_budget",
        "retry_backoff",
        "batchable",
        "tier",
        "span_name",
        "span_attrs",
        "counters",
    )

    def __init__(
        self,
        op: Opcode,
        nsid: int,
        extents: List[tuple],
        command_size: int,
        qos: QoSClass = QoSClass.BEST_EFFORT,
        chunk_bytes: Optional[int] = None,
        n_cmds: Optional[int] = None,
        flush_after: bool = False,
        charge_software: bool = True,
        syscalls: int = 1,
        deadline: Optional[float] = None,
        retry_budget: int = 0,
        retry_backoff: float = 50e-6,
        batchable: bool = False,
        tier: Optional[str] = None,
        span_name: str = "dataplane.io",
        span_attrs: Optional[Dict[str, Any]] = None,
        counters: Optional[List[Tuple[str, float]]] = None,
    ):
        if op not in (Opcode.READ, Opcode.WRITE):
            raise InvalidArgument(f"IORequest op must be READ or WRITE, got {op}")
        if command_size <= 0:
            raise InvalidArgument(f"command_size must be positive, got {command_size}")
        if retry_budget < 0:
            raise InvalidArgument(f"retry_budget must be >= 0, got {retry_budget}")
        if retry_backoff < 0:
            raise InvalidArgument("retry_backoff must be >= 0")
        if not isinstance(qos, QoSClass):
            raise InvalidArgument(f"qos must be a QoSClass, got {qos!r}")
        self.op = op
        self.nsid = nsid
        self.extents = extents
        self.command_size = command_size
        self.qos = qos
        self.chunk_bytes = chunk_bytes
        self.n_cmds = n_cmds
        self.flush_after = flush_after
        self.charge_software = charge_software
        self.syscalls = syscalls
        #: Absolute simulated-time deadline; a retry never starts past it.
        self.deadline = deadline
        #: Transport (fabric) failures tolerated before the error propagates.
        self.retry_budget = retry_budget
        #: First retry back-off, doubled per attempt.
        self.retry_backoff = retry_backoff
        #: Eligible for doorbell batching when the config enables it.
        self.batchable = batchable
        #: Target storage tier (a :class:`repro.tiers.base.TierKind`
        #: value string); ``None`` means the submitting data plane's
        #: default tier. Accounting identity only — routing stays with
        #: the transport the plane was built over.
        self.tier = tier
        self.span_name = span_name
        self.span_attrs: Dict[str, Any] = {} if span_attrs is None else span_attrs
        #: (name, delta) counter bumps applied on success.
        self.counters: List[Tuple[str, float]] = (
            [] if counters is None else counters
        )

    def __repr__(self) -> str:
        return (
            f"IORequest(op={self.op.name}, nsid={self.nsid}, "
            f"extents={len(self.extents)}, qos={self.qos.value}, "
            f"bytes={self.total_bytes})"
        )

    # -- derived accounting -------------------------------------------------

    @property
    def is_write(self) -> bool:
        return self.op is Opcode.WRITE

    @property
    def total_bytes(self) -> int:
        if self.is_write:
            return sum(p.nbytes for _off, p in self.extents)
        return sum(n for _off, n in self.extents)

    def derived_cmds(self) -> int:
        """Command count: the explicit override, else ceil per extent."""
        if self.n_cmds is not None:
            return self.n_cmds
        if self.is_write:
            return sum(
                max(1, math.ceil(p.nbytes / self.command_size))
                for _off, p in self.extents
            )
        return sum(
            max(1, math.ceil(n / self.command_size)) for _off, n in self.extents
        )

    def chunks(self) -> Iterator[tuple]:
        """The unified chunk stream: every extent split at ``chunk_bytes``."""
        if self.is_write:
            for offset, payload in self.extents:
                yield from iter_write_chunks(offset, payload, self.chunk_bytes)
        else:
            for offset, nbytes in self.extents:
                yield from iter_read_chunks(offset, nbytes, self.chunk_bytes)

    # -- factories (one per historical DataPlane entry point) ---------------

    @classmethod
    def write_runs(
        cls,
        nsid: int,
        runs: List[Tuple[int, Payload]],
        command_size: int,
        chunk_bytes: Optional[int],
        qos: QoSClass = QoSClass.CKPT_DATA,
        **overrides: Any,
    ) -> "IORequest":
        total = sum(p.nbytes for _off, p in runs)
        req = cls(
            op=Opcode.WRITE, nsid=nsid, extents=list(runs),
            command_size=command_size, qos=qos, chunk_bytes=chunk_bytes,
            batchable=True, span_name="dataplane.write", **overrides,
        )
        n_cmds = req.derived_cmds()
        req.span_attrs = {"bytes": total, "cmds": n_cmds}
        req.counters = [("data_bytes_written", total), ("data_commands", n_cmds)]
        return req

    @classmethod
    def read_runs(
        cls,
        nsid: int,
        runs: List[Tuple[int, int]],
        command_size: int,
        chunk_bytes: Optional[int],
        qos: QoSClass = QoSClass.RECOVERY,
        **overrides: Any,
    ) -> "IORequest":
        total = sum(n for _off, n in runs)
        req = cls(
            op=Opcode.READ, nsid=nsid, extents=list(runs),
            command_size=command_size, qos=qos, chunk_bytes=chunk_bytes,
            span_name="dataplane.read", **overrides,
        )
        req.span_attrs = {"bytes": total, "cmds": req.derived_cmds()}
        req.counters = [("data_bytes_read", total)]
        return req

    @classmethod
    def log_page(
        cls,
        nsid: int,
        region_offset: int,
        page: bytes,
        wire_bytes: int,
        qos: QoSClass = QoSClass.JOURNAL,
        **overrides: Any,
    ) -> "IORequest":
        payload = Payload.of_bytes(page.ljust(wire_bytes, b"\x00"))
        req = cls(
            op=Opcode.WRITE, nsid=nsid, extents=[(region_offset, payload)],
            command_size=max(4096, wire_bytes), qos=qos,
            n_cmds=1, flush_after=True, span_name="dataplane.log_page",
            **overrides,
        )
        req.span_attrs = {"bytes": wire_bytes}
        req.counters = [("log_bytes_written", wire_bytes), ("log_flushes", 1)]
        return req

    @classmethod
    def state_blob(
        cls,
        nsid: int,
        region_offset: int,
        data: bytes,
        command_size: int,
        qos: QoSClass = QoSClass.CKPT_DATA,
        **overrides: Any,
    ) -> "IORequest":
        padded = data.ljust(-(-len(data) // 4096) * 4096, b"\x00")
        req = cls(
            op=Opcode.WRITE, nsid=nsid,
            extents=[(region_offset, Payload.of_bytes(padded))],
            command_size=command_size, qos=qos,
            # Historical cost model: floor division, not ceil.
            n_cmds=max(1, len(padded) // command_size),
            flush_after=True, span_name="dataplane.state", **overrides,
        )
        req.span_attrs = {"bytes": len(padded)}
        req.counters = [("state_bytes_written", len(padded))]
        return req

    @classmethod
    def recovery_read(
        cls,
        nsid: int,
        region_offset: int,
        nbytes: int,
        command_size: int,
        qos: QoSClass = QoSClass.RECOVERY,
        **overrides: Any,
    ) -> "IORequest":
        req = cls(
            op=Opcode.READ, nsid=nsid, extents=[(region_offset, nbytes)],
            command_size=command_size, qos=qos, charge_software=False,
            span_name="dataplane.read", **overrides,
        )
        req.span_attrs = {"bytes": nbytes, "recovery": True}
        return req


class IOCompletion:
    """Uniform completion record for one IORequest."""

    __slots__ = (
        "status",
        "qos",
        "nbytes",
        "n_cmds",
        "latency_s",
        "software_s",
        "admission_s",
        "transfer_s",
        "flush_s",
        "retries_used",
        "value",
    )

    def __init__(
        self,
        status: str,
        qos: QoSClass,
        nbytes: int,
        n_cmds: int,
        latency_s: float,
        software_s: float = 0.0,
        admission_s: float = 0.0,
        transfer_s: float = 0.0,
        flush_s: float = 0.0,
        retries_used: int = 0,
        value: Any = None,
    ):
        self.status = status
        self.qos = qos
        self.nbytes = nbytes
        self.n_cmds = n_cmds
        self.latency_s = latency_s
        self.software_s = software_s
        self.admission_s = admission_s
        self.transfer_s = transfer_s
        self.flush_s = flush_s
        self.retries_used = retries_used
        #: Bytes written (writes) or the stored extents (reads).
        self.value = value

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def __repr__(self) -> str:
        return (
            f"IOCompletion(status={self.status!r}, qos={self.qos.value}, "
            f"nbytes={self.nbytes}, latency_s={self.latency_s:.6g}, "
            f"retries={self.retries_used})"
        )
