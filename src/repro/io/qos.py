"""Traffic classes for the unified I/O pipeline.

The runtime differentiates three kinds of traffic (plus a default): the
operation-log WAL barrier (latency-critical, tiny), bulk checkpoint
data (bandwidth-bound, large), and recovery reads (restart critical
path). The classes ride inside every :class:`~repro.io.envelope.IORequest`
so any layer — data-plane admission, NVMf batching, device arbitration —
can arbitrate, batch, or shed load by class.

This module is dependency-free on purpose: the NVMe command layer
imports it without creating cycles.
"""

from __future__ import annotations

import enum

__all__ = ["QoSClass", "DEFAULT_WRR_WEIGHTS"]


class QoSClass(enum.Enum):
    """Traffic class carried by every IORequest."""

    #: Operation-log appends and superblock commits: the WAL barrier.
    #: Tiny, synchronous, and on the critical path of every metadata op.
    JOURNAL = "journal"
    #: Bulk checkpoint payloads (app dumps, internal-state blobs).
    CKPT_DATA = "ckpt_data"
    #: Reads that rebuild state after a crash — restart critical path.
    RECOVERY = "recovery"
    #: Anything unclassified (baseline traffic, background work).
    BEST_EFFORT = "best_effort"


#: NVMe WRR-style default weights: journal urgent, recovery high,
#: checkpoint data medium, best-effort low. Uniform weights (all equal)
#: degenerate to round-robin and change nothing under one active class —
#: the bit-identical default the pinned-seed baselines rely on is
#: "no arbiter installed at all" (``SSD.arbiter is None``).
DEFAULT_WRR_WEIGHTS = {
    QoSClass.JOURNAL: 8,
    QoSClass.RECOVERY: 4,
    QoSClass.CKPT_DATA: 2,
    QoSClass.BEST_EFFORT: 1,
}
