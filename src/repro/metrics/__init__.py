"""Measurement definitions used by the evaluation (§IV)."""

from repro.metrics.efficiency import (
    coefficient_of_variation,
    efficiency,
    progress_rate,
)
from repro.metrics.collector import RunResult, summarize_stats

__all__ = [
    "RunResult",
    "coefficient_of_variation",
    "efficiency",
    "progress_rate",
    "summarize_stats",
]
