"""Aggregation of per-rank results into experiment rows."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.apps.checkpoint import CheckpointStats

__all__ = ["RunResult", "summarize_stats"]


@dataclass
class RunResult:
    """One experiment configuration's measured outcome (one table row)."""

    system: str
    nprocs: int
    checkpoint_time: float = 0.0
    restart_time: float = 0.0
    compute_time: float = 0.0
    total_bytes: int = 0
    checkpoint_efficiency: Optional[float] = None
    restart_efficiency: Optional[float] = None
    progress: Optional[float] = None
    extra: Dict[str, float] = field(default_factory=dict)


def summarize_stats(
    system: str, nprocs: int, per_rank: List[CheckpointStats], obs=None
) -> RunResult:
    """Fold per-rank CheckpointStats into one row.

    Checkpoint/restart times are barrier-delimited, so every rank holds
    the same phase durations; the max across ranks is used defensively.
    Passing the run's :class:`~repro.obs.ObsContext` as ``obs`` merges
    its metric summaries (counters, latency percentiles) into ``extra``.
    """
    if not per_rank:
        raise ValueError("no per-rank stats")
    ckpt = max(s.checkpoint_time for s in per_rank)
    rest = max(s.restart_time for s in per_rank)
    compute = float(np.mean([s.compute_time for s in per_rank]))
    total_bytes = sum(s.bytes_written for s in per_rank)
    result = RunResult(
        system=system,
        nprocs=nprocs,
        checkpoint_time=ckpt,
        restart_time=rest,
        compute_time=compute,
        total_bytes=total_bytes,
    )
    if obs is not None:
        result.extra.update(obs.flat_extra())
    return result
