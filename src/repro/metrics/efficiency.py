"""The paper's three evaluation metrics.

* **Efficiency** (Figure 9): "the ratio of the peak IO bandwidth visible
  to applications to the peak theoretical bandwidth offered by hardware".
* **Progress rate** (Table II): "the ratio of application time spent in
  compute to total application time".
* **Coefficient of variation** of per-server load (Figure 7(b)): the
  load-imbalance measure, std/mean of bytes stored per storage server.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["efficiency", "progress_rate", "coefficient_of_variation"]


def efficiency(
    total_bytes: float, wall_time: float, hardware_bandwidth: float
) -> float:
    """Application-visible bandwidth over hardware peak, clipped to [0, 1]."""
    if wall_time <= 0 or hardware_bandwidth <= 0:
        raise ValueError("wall_time and hardware_bandwidth must be positive")
    return min(1.0, (total_bytes / wall_time) / hardware_bandwidth)


def progress_rate(compute_time: float, total_time: float) -> float:
    """Compute fraction of total application time."""
    if total_time <= 0:
        raise ValueError("total_time must be positive")
    if compute_time < 0 or compute_time > total_time + 1e-9:
        raise ValueError("compute_time must lie within total_time")
    return compute_time / total_time


def coefficient_of_variation(loads: Sequence[float]) -> float:
    """std/mean of per-server load; 0 means perfect balance."""
    arr = np.asarray(loads, dtype=float)
    if arr.size == 0:
        raise ValueError("no loads given")
    mean = arr.mean()
    if mean == 0:
        return 0.0
    return float(arr.std() / mean)
