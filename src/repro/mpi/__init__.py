"""Simulated MPI runtime.

NVMe-CR uses MPI exactly twice: at ``MPI_Init`` (storage partitioning
through ``MPI_COMM_CR``, built with a communicator split) and at
``MPI_Finalize``. This package provides communicators with the
collectives those paths need — ``barrier``, ``bcast``, ``allgather``,
``gather``, and ``split`` — where every rank is a simulation process.

Collectives follow mpi4py-style semantics: all ranks of a communicator
must call the same collectives in the same order.
"""

from repro.mpi.comm import Communicator
from repro.mpi.runtime import MPIJob, launch

__all__ = ["Communicator", "MPIJob", "launch"]
