"""Communicators and collectives for the simulated MPI runtime.

A communicator's state is shared across its ranks; each rank keeps a
per-rank *collective sequence number*, so the k-th collective call on a
rank matches the k-th call on every other rank — the usual MPI ordering
contract. Collectives complete when the last rank arrives, plus a
latency charge of ``ceil(log2(size))`` message hops (binomial-tree
dissemination, the standard cost model).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs.context import tracer_of
from repro.sim.engine import Environment, Event
from repro.units import us

__all__ = ["Communicator"]

# One rendezvous message latency inside a collective (EDR-class fabric).
_MESSAGE_LATENCY = us(1.5)


class _Collective:
    """Rendezvous state for one collective operation instance."""

    __slots__ = ("arrived", "values", "event")

    def __init__(self, env: Environment, size: int):
        self.arrived = 0
        self.values: List[Any] = [None] * size
        self.event = env.event()


class _CommState:
    """State shared by all ranks of one communicator."""

    def __init__(self, env: Environment, size: int):
        self.env = env
        self.size = size
        self.pending: Dict[int, _Collective] = {}
        self.split_results: Dict[int, Dict[int, "Communicator"]] = {}


class Communicator:
    """One rank's handle on a communicator (mirrors ``MPI_Comm``)."""

    def __init__(self, state: _CommState, rank: int, name: str = "WORLD"):
        if not 0 <= rank < state.size:
            raise SimulationError(f"rank {rank} outside communicator of {state.size}")
        self._state = state
        self.rank = rank
        self.name = name
        self._seq = 0

    # -- construction -------------------------------------------------------------

    @classmethod
    def world(cls, env: Environment, size: int) -> List["Communicator"]:
        """Create COMM_WORLD: one handle per rank."""
        if size < 1:
            raise SimulationError(f"communicator size must be >= 1, got {size}")
        state = _CommState(env, size)
        return [cls(state, rank) for rank in range(size)]

    @property
    def size(self) -> int:
        return self._state.size

    @property
    def env(self) -> Environment:
        return self._state.env

    # -- core rendezvous -------------------------------------------------------------

    def _arrive(self, value: Any) -> Tuple[_Collective, int]:
        seq = self._seq
        self._seq += 1
        coll = self._state.pending.get(seq)
        if coll is None:
            coll = _Collective(self.env, self.size)
            self._state.pending[seq] = coll
        coll.values[self.rank] = value
        coll.arrived += 1
        if coll.arrived == self.size:
            del self._state.pending[seq]
            coll.event.succeed(list(coll.values))
        return coll, seq

    def _collective(self, value: Any, op: str = "collective") -> Generator[Event, Any, List[Any]]:
        tr = tracer_of(self.env)
        span = None if tr is None else tr.begin(
            f"mpi.{op}", cat="mpi",
            track=f"mpi.{self.name}.r{self.rank}", size=self.size)
        coll, _seq = self._arrive(value)
        values = yield coll.event
        latency = _MESSAGE_LATENCY * max(1, math.ceil(math.log2(max(2, self.size))))
        yield self.env.timeout(latency)
        if tr is not None:
            tr.end(span)
        ctx = self.env.obs
        if ctx is not None:
            ctx.metrics.counter("mpi.collectives").add(1)
        return values

    # -- collectives ------------------------------------------------------------------

    def barrier(self) -> Generator[Event, Any, None]:
        """All ranks wait for the last arrival."""
        yield from self._collective(None, op="barrier")

    def allgather(self, value: Any) -> Generator[Event, Any, List[Any]]:
        """Every rank receives the list of all ranks' values."""
        return (yield from self._collective(value, op="allgather"))

    def gather(self, value: Any, root: int = 0) -> Generator[Event, Any, Optional[List[Any]]]:
        """Root receives all values; other ranks receive None."""
        values = yield from self._collective(value, op="gather")
        return values if self.rank == root else None

    def bcast(self, value: Any, root: int = 0) -> Generator[Event, Any, Any]:
        """Root's value is delivered to every rank."""
        values = yield from self._collective(
            value if self.rank == root else None, op="bcast")
        return values[root]

    def split(
        self, color: int, key: Optional[int] = None
    ) -> Generator[Event, Any, "Communicator"]:
        """``MPI_Comm_split``: ranks with equal color form a new communicator,
        ordered by (key, old rank). Used to build ``MPI_COMM_CR`` — the
        group of processes sharing one SSD (§III-F)."""
        my_key = self.rank if key is None else key
        coll, seq = self._arrive((color, my_key, self.rank))
        values = yield coll.event
        # Rank 0-arrival builds the sub-communicators exactly once per seq.
        results = self._state.split_results.get(seq)
        if results is None:
            results = {}
            by_color: Dict[int, List[Tuple[int, int]]] = {}
            for col, k, old_rank in values:
                by_color.setdefault(col, []).append((k, old_rank))
            for col, members in by_color.items():
                members.sort()
                sub_state = _CommState(self.env, len(members))
                for new_rank, (_k, old_rank) in enumerate(members):
                    results[old_rank] = Communicator(
                        sub_state, new_rank, name=f"{self.name}.split({col})"
                    )
            self._state.split_results[seq] = results
        latency = _MESSAGE_LATENCY * max(1, math.ceil(math.log2(max(2, self.size))))
        yield self.env.timeout(latency)
        return results[self.rank]
