"""Launching MPI-style jobs inside the simulation.

:func:`launch` plays the role of ``mpiexec``: it spawns one simulation
process per rank, hands each its :class:`Communicator`, and returns an
:class:`MPIJob` whose ``done`` event fires when every rank returns (the
job's exit). Per-rank return values are collected for assertions.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional

from repro.mpi.comm import Communicator
from repro.sim.engine import Environment, Event, Process

__all__ = ["MPIJob", "launch"]

RankMain = Callable[[Communicator], Generator[Event, Any, Any]]


class MPIJob:
    """A running (or finished) simulated MPI job."""

    def __init__(self, env: Environment, procs: List[Process]):
        self.env = env
        self.procs = procs
        self.done: Event = env.all_of(procs)

    @property
    def nprocs(self) -> int:
        return len(self.procs)

    def results(self) -> List[Any]:
        """Per-rank return values; only valid once ``done`` has fired."""
        return [p.value for p in self.procs]

    def result_map(self) -> Dict[int, Any]:
        return dict(enumerate(self.results()))


def launch(
    env: Environment,
    nprocs: int,
    rank_main: RankMain,
    node_of_rank: Optional[Callable[[int], str]] = None,
) -> MPIJob:
    """Start ``nprocs`` ranks running ``rank_main(comm)``.

    ``node_of_rank`` optionally names the host of each rank (round-robin
    placement is the caller's policy); it is attached to the communicator
    handle as ``comm.node`` because the runtime needs to know its host
    for fabric latency.
    """
    comms = Communicator.world(env, nprocs)
    procs: List[Process] = []
    for rank, comm in enumerate(comms):
        if node_of_rank is not None:
            comm.node = node_of_rank(rank)  # type: ignore[attr-defined]
        procs.append(env.process(rank_main(comm)))
    return MPIJob(env, procs)
