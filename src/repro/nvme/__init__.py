"""Simulated NVMe SSDs.

The reproduction's stand-in for the paper's Intel Optane P4800X drives.
An :class:`~repro.nvme.device.SSD` owns NVMe namespaces, hardware
submission/completion queues, an extent store that actually retains
written payloads (so recovery tests replay real bytes), and a calibrated
service model (sustained bandwidth, per-command controller cost,
command-granular arbitration jitter, optional RAM write buffer with
power-loss capacitance).
"""

from repro.nvme.commands import Command, CommandResult, Opcode, Payload
from repro.nvme.device import SSD, SSDSpec, intel_p4800x, generic_nand_ssd
from repro.nvme.namespace import Namespace, Partition
from repro.nvme.power import PowerController
from repro.nvme.queues import QueuePair

__all__ = [
    "Command",
    "CommandResult",
    "Namespace",
    "Opcode",
    "Partition",
    "Payload",
    "PowerController",
    "QueuePair",
    "SSD",
    "SSDSpec",
    "generic_nand_ssd",
    "intel_p4800x",
]
