"""NVMe command set and payload representation.

Payloads are real for small data (log records, directory files, internal
state checkpoints — anything recovery must replay byte-for-byte) and
*fingerprinted* for bulk checkpoint data: a :class:`Payload` in synthetic
mode records length + a content tag, and read-back verifies the tag.
Storing 700 GB of checkpoint bytes in host memory would be pointless;
storing their identity is what the correctness checks need.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import InvalidCommand

if TYPE_CHECKING:  # repro.io.envelope imports this module; avoid the cycle
    from repro.io.qos import QoSClass

__all__ = ["Opcode", "Payload", "Command", "CommandResult"]


class Opcode(enum.Enum):
    """Subset of the NVMe command set the runtime uses."""

    READ = "read"
    WRITE = "write"
    FLUSH = "flush"
    IDENTIFY = "identify"


class Payload:
    """Data carried by a WRITE or returned by a READ.

    Exactly one representation is active:

    * ``data``: real bytes (metadata, logs) — sliceable, replayable.
    * ``tag`` + ``nbytes``: synthetic bulk data — identity-checked only.
    """

    __slots__ = ("data", "tag", "nbytes")

    def __init__(
        self,
        data: Optional[bytes] = None,
        tag: Optional[str] = None,
        nbytes: Optional[int] = None,
    ):
        if data is not None:
            if tag is not None or nbytes is not None:
                raise InvalidCommand("real payload takes no tag/nbytes")
            self.data = bytes(data)
            self.tag = None
            self.nbytes = len(self.data)
        else:
            if tag is None or nbytes is None or nbytes < 0:
                raise InvalidCommand("synthetic payload needs tag and nbytes >= 0")
            self.data = None
            self.tag = tag
            self.nbytes = int(nbytes)

    @classmethod
    def of_bytes(cls, data: bytes) -> "Payload":
        return cls(data=data)

    @classmethod
    def synthetic(cls, tag: str, nbytes: int) -> "Payload":
        return cls(tag=tag, nbytes=nbytes)

    @property
    def is_synthetic(self) -> bool:
        return self.data is None

    def slice(self, offset: int, length: int) -> "Payload":
        """A sub-payload for partial reads/overwrite trimming.

        Synthetic slices keep the parent tag with an offset annotation so
        reads after partial overwrites remain identity-checkable.
        """
        if offset < 0 or length < 0 or offset + length > self.nbytes:
            raise InvalidCommand(
                f"slice [{offset}, {offset + length}) outside payload of "
                f"{self.nbytes} bytes"
            )
        if self.data is not None:
            return Payload(data=self.data[offset : offset + length])
        if offset == 0 and length == self.nbytes:
            return self
        return Payload(tag=f"{self.tag}+{offset}", nbytes=length)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Payload):
            return NotImplemented
        return (
            self.nbytes == other.nbytes
            and self.tag == other.tag
            and self.data == other.data
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.data is not None:
            return f"Payload(bytes[{self.nbytes}])"
        return f"Payload(synthetic {self.tag!r}, {self.nbytes}B)"


@dataclass(frozen=True)
class Command:
    """One NVMe command addressed to a namespace."""

    opcode: Opcode
    nsid: int
    slba: int = 0  # starting logical block address (namespace-relative)
    nblocks: int = 0
    payload: Optional[Payload] = None
    qid: int = 0  # submitting hardware queue
    qos: Optional["QoSClass"] = None  # traffic class from the IORequest envelope

    def __post_init__(self) -> None:
        if self.slba < 0 or self.nblocks < 0:
            raise InvalidCommand(f"negative LBA range: slba={self.slba} n={self.nblocks}")
        if self.opcode is Opcode.WRITE and self.payload is None:
            raise InvalidCommand("WRITE requires a payload")
        if self.opcode in (Opcode.READ, Opcode.WRITE) and self.nblocks == 0:
            raise InvalidCommand(f"{self.opcode.value} of zero blocks")


@dataclass
class CommandResult:
    """Completion record returned for a command."""

    command: Command
    latency: float
    payload: Optional[Payload] = None  # populated for READ
    extra: dict = field(default_factory=dict)
