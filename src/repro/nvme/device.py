"""The simulated NVMe SSD.

Service model (calibration constants live in :mod:`repro.bench.calibration`;
the spec here just carries them):

* **Sustained bandwidth** — reads and writes each flow through a fluid
  max-min :class:`~repro.sim.fairshare.FairShareServer`, so concurrent
  clients share the device fairly, as multi-queue NVMe hardware does.
* **Per-command controller cost** — a batch of ``n`` commands of size
  ``s`` is rate-capped at ``s / per_command_cost``: the controller
  serialises command processing even when flash transfers are parallel.
  This is the device-side half of the small-hugeblock penalty in
  Figure 7(a) (the other half is client software, charged by the data
  plane).
* **Command-granular arbitration jitter** — with ``k`` concurrent flows,
  a new batch waits an exponential extra delay with mean
  ``beta * k * s / bandwidth``: admission behind whole commands of size
  ``s``. This is the paper's "a large block size will increase the
  waiting time for each hardware IO queue" (§IV-B) and produces the
  mild large-block upturn in Figure 7(a).
* **Device RAM + capacitance** — specs with a RAM write buffer ingest at
  RAM speed until a token bucket (refilled at flash speed) empties;
  committed writes always survive power loss (enhanced power-loss data
  protection, §III-D). The P4800X is 3D-XPoint and needs no RAM buffer,
  so its spec sets ``ram_buffer_bytes = 0``.

Writes *commit to the extent store only after the transfer completes* —
a power failure mid-command loses exactly that command, which is what
the microfs durability argument assumes.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional

import numpy as np

from repro.bench import calibration as cal
from repro.errors import DeviceError, DevicePoweredOff, InvalidCommand, OutOfSpace
from repro.nvme.commands import Command, CommandResult, Opcode, Payload
from repro.nvme.extents import Extent
from repro.nvme.namespace import Namespace
from repro.obs.context import tracer_of
from repro.obs.metrics import Counter
from repro.sim.engine import Environment, Event
from repro.sim.fairshare import FairShareServer
from repro.tiers.base import DeviceModel, TierKind

if TYPE_CHECKING:
    from repro.io.qos import QoSClass

__all__ = ["SSDSpec", "SSD", "intel_p4800x", "generic_nand_ssd"]


@dataclass(frozen=True)
class SSDSpec:
    """Static characteristics of an SSD model."""

    model: str
    capacity_bytes: int
    write_bandwidth: float  # sustained, bytes/s
    read_bandwidth: float
    per_command_cost: float  # controller serialisation per command, seconds
    flush_cost: float
    #: Media access latency per command. With the run-to-completion
    #: (queue-depth-1) submission style of microfs principle 1, an
    #: instance's throughput is capped at command_size/access_latency —
    #: the mechanism that makes tiny hugeblocks slow at low concurrency
    #: (Figure 7(d)) and large hugeblocks necessary to saturate.
    access_latency: float = cal.SSD_DEFAULT_ACCESS_LATENCY
    lba_size: int = 4096
    max_hw_queues: int = 32
    max_namespaces: int = 128
    ram_buffer_bytes: int = 0
    ram_write_bandwidth: float = 0.0
    arbitration_beta: float = cal.SSD_ARBITRATION_BETA

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise DeviceError(f"{self.model}: capacity must be positive")
        if self.write_bandwidth <= 0 or self.read_bandwidth <= 0:
            raise DeviceError(f"{self.model}: bandwidths must be positive")
        if self.ram_buffer_bytes > 0 and self.ram_write_bandwidth <= 0:
            raise DeviceError(f"{self.model}: RAM buffer needs ram_write_bandwidth")


def intel_p4800x() -> SSDSpec:
    """Intel Optane P4800X (the paper's device, §IV-A).

    Numbers (and their provenance) live in ``repro.bench.calibration``'s
    ``P4800X_*`` block — this factory only carries them into a spec.
    """
    return SSDSpec(
        model="Intel Optane P4800X",
        capacity_bytes=cal.P4800X_CAPACITY_BYTES,
        write_bandwidth=cal.P4800X_WRITE_BANDWIDTH,
        read_bandwidth=cal.P4800X_READ_BANDWIDTH,
        per_command_cost=cal.P4800X_PER_COMMAND_COST,
        flush_cost=cal.P4800X_FLUSH_COST,
        access_latency=cal.P4800X_ACCESS_LATENCY,
        max_hw_queues=cal.P4800X_MAX_HW_QUEUES,
    )


def generic_nand_ssd() -> SSDSpec:
    """A NAND TLC datacenter SSD with a capacitor-backed DRAM write buffer.

    Used by tests exercising the RAM-buffer burst/drain and power-loss
    capacitance paths that the Optane spec (no RAM) never reaches.
    Numbers live in ``repro.bench.calibration``'s ``NAND_SSD_*`` block.
    """
    return SSDSpec(
        model="Generic NAND DC SSD",
        capacity_bytes=cal.NAND_SSD_CAPACITY_BYTES,
        write_bandwidth=cal.NAND_SSD_WRITE_BANDWIDTH,
        read_bandwidth=cal.NAND_SSD_READ_BANDWIDTH,
        per_command_cost=cal.NAND_SSD_PER_COMMAND_COST,
        flush_cost=cal.NAND_SSD_FLUSH_COST,
        access_latency=cal.NAND_SSD_ACCESS_LATENCY,
        ram_buffer_bytes=cal.NAND_SSD_RAM_BUFFER_BYTES,
        ram_write_bandwidth=cal.NAND_SSD_RAM_WRITE_BANDWIDTH,
    )


class SSD(DeviceModel):  # reproflow: ignore[FLOW103] (deliberate: runtime sanitizer watches SSDs)
    """A live simulated SSD attached to a simulation environment.

    Implements the tier-neutral :class:`~repro.tiers.base.DeviceModel`
    surface so the balancer and tier clients can treat the NVMe fleet
    as one tier among several; the namespace/command paths below remain
    the byte-accurate primary interface.
    """

    kind = TierKind.NVME_SSD

    def __init__(
        self,
        env: Environment,
        spec: SSDSpec,
        name: str,
        rng: Optional[np.random.Generator] = None,
    ):
        self.env = env
        self.spec = spec
        self.name = name
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._write_server = FairShareServer(
            env, capacity=self._ingest_bandwidth(), name=f"{name}.write"
        )
        self._read_server = FairShareServer(
            env, capacity=spec.read_bandwidth, name=f"{name}.read"
        )
        # The controller serialises command processing: an aggregate
        # ceiling of 1/per_command_cost commands/second across all
        # queues. A batch completes when both its data transfer and its
        # command processing are done — small commands make the command
        # stream the binding constraint (the Figure 7(a) small-block
        # penalty), at any concurrency.
        self._cmd_server = FairShareServer(
            env, capacity=1.0 / spec.per_command_cost, name=f"{name}.cmds"
        )
        self._namespaces: Dict[int, Namespace] = {}
        self._nsids = itertools.count(1)
        self._queues_allocated = 0
        self.powered = True
        self._power_epoch = 0
        # RAM write-buffer token bucket (lazy refill at flash rate).
        self._tokens = float(spec.ram_buffer_bytes)
        self._tokens_at = env.now
        self.counters = Counter()
        #: Optional front-end QoS arbiter (see
        #: :class:`repro.nvme.queues.WrrArbiter`). ``None`` — the default
        #: — keeps the admission path yield-free and the pinned-seed
        #: timelines bit-identical.
        self.arbiter = None

    def _ingest_bandwidth(self) -> float:
        if self.spec.ram_buffer_bytes > 0:
            return self.spec.ram_write_bandwidth
        return self.spec.write_bandwidth

    # -- namespace management ---------------------------------------------------

    def create_namespace(self, nbytes: int, owner_job: Optional[str] = None) -> Namespace:
        """Carve a new namespace from unused capacity (§III-F security model)."""
        if len(self._namespaces) >= self.spec.max_namespaces:
            raise DeviceError(f"{self.name}: namespace limit reached")
        if nbytes > self.free_bytes():
            raise OutOfSpace(
                f"{self.name}: need {nbytes} bytes, only {self.free_bytes()} free"
            )
        ns = Namespace(next(self._nsids), nbytes, owner_job=owner_job)
        self._namespaces[ns.nsid] = ns
        monitor = self.env.monitor
        if monitor is not None:
            # SSDs deliberately declare no _san_tiebreak: same-timestamp
            # namespace churn from distinct actors has no ordering rule.
            monitor.note_mutation(self, "create_namespace")
            monitor.note_namespace(self, ns, created=True)
        return ns

    def delete_namespace(self, nsid: int) -> None:
        if nsid not in self._namespaces:
            raise DeviceError(f"{self.name}: no namespace {nsid}")
        ns = self._namespaces[nsid]
        del self._namespaces[nsid]
        monitor = self.env.monitor
        if monitor is not None:
            monitor.note_mutation(self, "delete_namespace")
            monitor.note_namespace(self, ns, created=False)

    def namespace(self, nsid: int) -> Namespace:
        try:
            return self._namespaces[nsid]
        except KeyError:
            raise DeviceError(f"{self.name}: no namespace {nsid}") from None

    def namespaces(self) -> List[Namespace]:
        return list(self._namespaces.values())

    def free_bytes(self) -> int:
        used = sum(ns.nbytes for ns in self._namespaces.values())
        return self.spec.capacity_bytes - used

    # -- hardware queue bookkeeping -----------------------------------------------

    def allocate_queue(self) -> int:
        """Assign a hardware queue id; beyond ``max_hw_queues`` ids wrap.

        The paper gives each microfs instance its own queue but also
        recommends 56-112 processes per SSD, exceeding the P4800X's 32
        queues — so, like real deployments, queue ids are virtualised
        (shared) past the hardware limit.
        """
        qid = self._queues_allocated % self.spec.max_hw_queues
        self._queues_allocated += 1
        return qid

    @property
    def queues_shared(self) -> bool:
        return self._queues_allocated > self.spec.max_hw_queues

    # -- power ---------------------------------------------------------------------

    def power_fail(self) -> None:
        """Drop power: in-flight commands are lost, committed data survives.

        Device capacitance flushes the RAM buffer (already modelled as
        committed-on-completion), matching enhanced power-loss data
        protection [38].
        """
        if not self.powered:
            return
        self.powered = False
        self._power_epoch += 1
        self.counters.add("power_failures")

    def power_restore(self) -> None:
        self.powered = True

    # -- token bucket (RAM buffer) ----------------------------------------------------

    def _take_tokens(self, nbytes: float) -> float:
        """Consume RAM-buffer credit; returns extra delay for the deficit."""
        if self.spec.ram_buffer_bytes == 0:
            return 0.0
        now = self.env.now
        refill = (now - self._tokens_at) * self.spec.write_bandwidth
        self._tokens = min(self.spec.ram_buffer_bytes, self._tokens + refill)
        self._tokens_at = now
        if self._tokens >= nbytes:
            self._tokens -= nbytes
            return 0.0
        deficit = nbytes - self._tokens
        self._tokens = 0.0
        return deficit / self.spec.write_bandwidth

    # -- IO -------------------------------------------------------------------------

    def write(
        self,
        nsid: int,
        offset: int,
        payload: Payload,
        command_size: int,
        rate_cap: Optional[float] = None,
        qos: Optional["QoSClass"] = None,
    ) -> Event:
        """Batch write: ``payload`` at byte ``offset``, split into
        ``command_size``-byte commands. Returns a completion event whose
        value is a :class:`CommandResult`.

        ``rate_cap`` lets the fabric layer impose the network link limit;
        ``qos`` is the envelope's traffic class, consulted by the
        optional front-end arbiter.
        """
        self._check_io(nsid, offset, payload.nbytes, command_size)
        # Claim the caller's handoff parent here, while still inside the
        # caller's synchronous frame (the generator body runs later).
        tr = tracer_of(self.env)
        span = None if tr is None else tr.begin(
            "nvme.write", cat="device", track=self.name,
            parent=tr.take_handoff(), nsid=nsid, bytes=payload.nbytes)
        return self.env.process(
            self._do_write(nsid, offset, payload, command_size, rate_cap, span, qos))

    def _do_write(
        self,
        nsid: int,
        offset: int,
        payload: Payload,
        command_size: int,
        rate_cap: Optional[float],
        span=None,
        qos: Optional["QoSClass"] = None,
    ) -> Generator[Event, Any, CommandResult]:
        self._check_io(nsid, offset, payload.nbytes, command_size)
        ns = self._namespaces[nsid]
        epoch = self._power_epoch
        started = self.env.now
        tr = tracer_of(self.env) if span is not None else None
        n_cmds = max(1, math.ceil(payload.nbytes / command_size))
        # QoS arbitration happens before the jitter draw so that with no
        # arbiter (or an uncontended one) the rng sequence is untouched.
        if self.arbiter is not None:
            yield from self.arbiter.admit(qos)
        try:
            yield from self._service_write(
                payload.nbytes, n_cmds, command_size, rate_cap, epoch, tr, span)
        finally:
            if self.arbiter is not None:
                self.arbiter.release()
        ns.store.write(offset, payload)
        self.counters.add("bytes_written", payload.nbytes)
        self.counters.add("write_commands", n_cmds)
        cmd = Command(
            Opcode.WRITE, nsid, slba=offset // self.spec.lba_size,
            nblocks=max(1, payload.nbytes // self.spec.lba_size), payload=payload,
            qos=qos,
        )
        latency = self.env.now - started
        if tr is not None:
            tr.end(span)
        ctx = self.env.obs
        if ctx is not None:
            ctx.metrics.histogram("nvme.write_latency_s").observe(latency)
        return CommandResult(cmd, latency=latency)

    def read(
        self,
        nsid: int,
        offset: int,
        nbytes: int,
        command_size: int,
        rate_cap: Optional[float] = None,
        qos: Optional["QoSClass"] = None,
    ) -> Event:
        """Batch read; the event's value is a :class:`CommandResult` whose
        ``extra['extents']`` holds the overlapping stored extents."""
        self._check_io(nsid, offset, nbytes, command_size)
        tr = tracer_of(self.env)
        span = None if tr is None else tr.begin(
            "nvme.read", cat="device", track=self.name,
            parent=tr.take_handoff(), nsid=nsid, bytes=nbytes)
        return self.env.process(
            self._do_read(nsid, offset, nbytes, command_size, rate_cap, span, qos))

    def _do_read(
        self,
        nsid: int,
        offset: int,
        nbytes: int,
        command_size: int,
        rate_cap: Optional[float],
        span=None,
        qos: Optional["QoSClass"] = None,
    ) -> Generator[Event, Any, CommandResult]:
        self._check_io(nsid, offset, nbytes, command_size)
        ns = self._namespaces[nsid]
        epoch = self._power_epoch
        started = self.env.now
        tr = tracer_of(self.env) if span is not None else None
        n_cmds = max(1, math.ceil(nbytes / command_size))
        if self.arbiter is not None:
            yield from self.arbiter.admit(qos)
        try:
            yield from self._service_read(
                nbytes, n_cmds, command_size, rate_cap, epoch, tr, span)
        finally:
            if self.arbiter is not None:
                self.arbiter.release()
        extents: List[Extent] = ns.store.read(offset, nbytes)
        self.counters.add("bytes_read", nbytes)
        self.counters.add("read_commands", n_cmds)
        cmd = Command(
            Opcode.READ, nsid, slba=offset // self.spec.lba_size,
            nblocks=max(1, nbytes // self.spec.lba_size),
            qos=qos,
        )
        latency = self.env.now - started
        if tr is not None:
            tr.end(span)
        ctx = self.env.obs
        if ctx is not None:
            ctx.metrics.histogram("nvme.read_latency_s").observe(latency)
        return CommandResult(cmd, latency=latency, extra={"extents": extents})

    def flush(self, nsid: int) -> Event:
        """FLUSH: cheap — committed data is already capacitor-protected."""
        if not self.powered:
            raise DevicePoweredOff(f"{self.name} is powered off")
        self.namespace(nsid)  # validates nsid
        self.counters.add("flushes")
        tr = tracer_of(self.env)
        span = None if tr is None else tr.begin(
            "nvme.flush", cat="device", track=self.name,
            parent=tr.take_handoff(), nsid=nsid)
        return self.env.process(self._do_flush(nsid, span))

    def _do_flush(self, nsid: int, span=None) -> Generator[Event, Any, CommandResult]:
        started = self.env.now
        yield self.env.timeout(self.spec.flush_cost)
        if span is not None:
            tr = tracer_of(self.env)
            if tr is not None:
                tr.end(span)
        return CommandResult(
            Command(Opcode.FLUSH, nsid), latency=self.env.now - started
        )

    def submit(self, command: Command, rate_cap: Optional[float] = None) -> Event:
        """Single-command convenience used by the queue-pair layer."""
        nbytes = command.nblocks * self.spec.lba_size
        offset = command.slba * self.spec.lba_size
        if command.opcode is Opcode.WRITE:
            payload = command.payload
            if payload.nbytes > nbytes:
                raise InvalidCommand(
                    f"payload {payload.nbytes}B exceeds LBA range {nbytes}B"
                )
            return self.write(
                command.nsid, offset, payload, max(nbytes, 1), rate_cap,
                qos=command.qos,
            )
        if command.opcode is Opcode.READ:
            return self.read(
                command.nsid, offset, nbytes, max(nbytes, 1), rate_cap,
                qos=command.qos,
            )
        if command.opcode is Opcode.FLUSH:
            return self.flush(command.nsid)
        if command.opcode is Opcode.IDENTIFY:
            event = self.env.event()
            event.succeed(CommandResult(command, latency=0.0, extra={"spec": self.spec}))
            return event
        raise InvalidCommand(f"unsupported opcode {command.opcode}")

    # -- service-model pieces ------------------------------------------------------

    def _service_write(
        self, nbytes: int, n_cmds: int, command_size: int,
        rate_cap: Optional[float], epoch: int, tr=None, span=None,
    ) -> Generator[Event, Any, None]:
        """The write service-time core: arbitration jitter + RAM token
        bucket, then the fair-share media and command-rate servers.

        Extracted as the tier-neutral seam: the namespace write path and
        the :class:`DeviceModel` tier path both run exactly this.
        """
        jitter = self._arbitration_jitter(command_size, self._write_server)
        bucket_delay = self._take_tokens(nbytes)
        delay = jitter + bucket_delay
        if delay > 0:
            wait = None if tr is None else tr.begin(
                "nvme.wait", cat="device", track=self.name, parent=span,
                jitter_s=jitter, ram_bucket_s=bucket_delay)
            yield self.env.timeout(delay)
            if wait is not None:
                tr.end(wait)
        self._check_power(epoch)
        cap = self._qd1_cap(command_size, rate_cap)
        media_ev = self._write_server.transfer(nbytes, cap=cap)
        cmd_ev = self._cmd_server.transfer(n_cmds)
        if tr is not None:
            media = tr.begin("nvme.media", cat="device", track=self.name,
                             parent=span, bytes=nbytes)
            cmdrate = tr.begin("nvme.cmdrate", cat="device", track=self.name,
                               parent=span, cmds=n_cmds)
            media_ev.callbacks.append(lambda _ev: tr.end(media))
            cmd_ev.callbacks.append(lambda _ev: tr.end(cmdrate))
        yield self.env.all_of([media_ev, cmd_ev])
        self._check_power(epoch)

    def _service_read(
        self, nbytes: int, n_cmds: int, command_size: int,
        rate_cap: Optional[float], epoch: int, tr=None, span=None,
    ) -> Generator[Event, Any, None]:
        """The read service-time core (no RAM bucket on the read path)."""
        jitter = self._arbitration_jitter(command_size, self._read_server)
        if jitter > 0:
            wait = None if tr is None else tr.begin(
                "nvme.wait", cat="device", track=self.name, parent=span,
                jitter_s=jitter)
            yield self.env.timeout(jitter)
            if wait is not None:
                tr.end(wait)
        self._check_power(epoch)
        cap = self._qd1_cap(command_size, rate_cap)
        media_ev = self._read_server.transfer(nbytes, cap=cap)
        cmd_ev = self._cmd_server.transfer(n_cmds)
        if tr is not None:
            media = tr.begin("nvme.media", cat="device", track=self.name,
                             parent=span, bytes=nbytes)
            cmdrate = tr.begin("nvme.cmdrate", cat="device", track=self.name,
                               parent=span, cmds=n_cmds)
            media_ev.callbacks.append(lambda _ev: tr.end(media))
            cmd_ev.callbacks.append(lambda _ev: tr.end(cmdrate))
        yield self.env.all_of([media_ev, cmd_ev])
        self._check_power(epoch)

    # -- DeviceModel tier surface --------------------------------------------------

    def capacity_bytes(self) -> int:
        return self.spec.capacity_bytes

    def write_bandwidth(self) -> float:
        return self.spec.write_bandwidth

    def read_bandwidth(self) -> float:
        return self.spec.read_bandwidth

    def tier_write(self, offset: int, nbytes: int, qos: Optional[Any] = None) -> Event:
        """Tier-seam bulk write: the full service-time core at the
        default hugeblock command size, without extent bookkeeping."""
        return self.env.process(self._tier_write(nbytes))

    def _tier_write(self, nbytes: int) -> Generator[Event, Any, int]:
        command_size = cal.DEFAULT_HUGEBLOCK
        n_cmds = max(1, math.ceil(max(nbytes, 1) / command_size))
        yield from self._service_write(
            nbytes, n_cmds, command_size, None, self._power_epoch)
        self.counters.add("tier_bytes_written", nbytes)
        return nbytes

    def tier_read(self, offset: int, nbytes: int, qos: Optional[Any] = None) -> Event:
        return self.env.process(self._tier_read(nbytes))

    def _tier_read(self, nbytes: int) -> Generator[Event, Any, int]:
        command_size = cal.DEFAULT_HUGEBLOCK
        n_cmds = max(1, math.ceil(max(nbytes, 1) / command_size))
        yield from self._service_read(
            nbytes, n_cmds, command_size, None, self._power_epoch)
        self.counters.add("tier_bytes_read", nbytes)
        return nbytes

    def tier_sync(self) -> Event:
        return self.env.process(self._tier_sync())

    def _tier_sync(self) -> Generator[Event, Any, None]:
        yield self.env.timeout(self.spec.flush_cost)

    def _arbitration_jitter(self, command_size: int, server: FairShareServer) -> float:
        """Admission wait behind whole commands from other active queues."""
        active = server.active_flows
        if active == 0 or self.spec.arbitration_beta == 0.0:
            return 0.0
        mean = self.spec.arbitration_beta * active * command_size / server.capacity
        return float(self.rng.exponential(mean))

    def _qd1_cap(self, command_size: int, extern_cap: Optional[float]) -> Optional[float]:
        """Queue-depth-1 ceiling: one command in flight pays the media
        access latency per command."""
        if self.spec.access_latency <= 0:
            return extern_cap
        cap = command_size / self.spec.access_latency
        if extern_cap is not None:
            cap = min(cap, extern_cap)
        return cap

    def _check_io(self, nsid: int, offset: int, nbytes: int, command_size: int) -> None:
        if not self.powered:
            raise DevicePoweredOff(f"{self.name} is powered off")
        if command_size <= 0:
            raise InvalidCommand(f"command_size must be positive, got {command_size}")
        # Byte-granular addressing is allowed: sub-LBA writes model the
        # controller's internal read-modify-write; costs are still charged
        # per command_size-sized command.
        self.namespace(nsid).check_range(offset, nbytes)

    def _check_power(self, epoch: int) -> None:
        if not self.powered or epoch != self._power_epoch:
            raise DevicePoweredOff(f"{self.name}: power lost during command")
