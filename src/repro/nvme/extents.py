"""Byte-addressed extent store backing each NVMe namespace.

Keeps written payloads in a sorted, non-overlapping list of extents.
Writes split/trim whatever they overlap (last-writer-wins, like flash
FTL mappings); reads return the overlapping pieces plus implicit-zero
gaps. Sequential checkpoint traffic produces O(files) extents, so the
store stays tiny even for multi-hundred-GB simulated dumps.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import InvalidCommand
from repro.nvme.commands import Payload

__all__ = ["Extent", "ExtentStore"]


@dataclass
class Extent:
    """A contiguous written range: [start, start + length)."""

    start: int
    length: int
    payload: Payload

    @property
    def end(self) -> int:
        return self.start + self.length


class ExtentStore:
    """Sorted non-overlapping extents over a byte range of given size."""

    def __init__(self, size: int):
        if size < 0:
            raise InvalidCommand(f"negative store size: {size}")
        self.size = size
        self._starts: List[int] = []
        self._extents: List[Extent] = []

    # -- helpers ---------------------------------------------------------------

    def _check_range(self, start: int, length: int) -> None:
        if start < 0 or length < 0 or start + length > self.size:
            raise InvalidCommand(
                f"range [{start}, {start + length}) outside store of {self.size} bytes"
            )

    def _overlap_slice(self, start: int, end: int) -> Tuple[int, int]:
        """Index range [lo, hi) of extents intersecting [start, end)."""
        lo = bisect.bisect_right(self._starts, start) - 1
        if lo >= 0 and self._extents[lo].end <= start:
            lo += 1
        lo = max(lo, 0)
        hi = bisect.bisect_left(self._starts, end)
        return lo, hi

    # -- mutation ----------------------------------------------------------------

    def write(self, start: int, payload: Payload) -> None:
        """Write ``payload`` at ``start``, replacing what it overlaps."""
        length = payload.nbytes
        self._check_range(start, length)
        if length == 0:
            return
        end = start + length
        lo, hi = self._overlap_slice(start, end)
        keep_before: Optional[Extent] = None
        keep_after: Optional[Extent] = None
        if lo < hi:
            first = self._extents[lo]
            if first.start < start:
                keep_before = Extent(
                    first.start, start - first.start, first.payload.slice(0, start - first.start)
                )
            last = self._extents[hi - 1]
            if last.end > end:
                offset = end - last.start
                keep_after = Extent(end, last.end - end, last.payload.slice(offset, last.end - end))
        replacement = []
        if keep_before:
            replacement.append(keep_before)
        replacement.append(Extent(start, length, payload))
        if keep_after:
            replacement.append(keep_after)
        self._extents[lo:hi] = replacement
        self._starts[lo:hi] = [e.start for e in replacement]

    def discard(self, start: int, length: int) -> None:
        """Remove (trim) any data in [start, start+length) — TRIM/deallocate."""
        self._check_range(start, length)
        if length == 0:
            return
        end = start + length
        lo, hi = self._overlap_slice(start, end)
        replacement = []
        if lo < hi:
            first = self._extents[lo]
            if first.start < start:
                replacement.append(
                    Extent(first.start, start - first.start, first.payload.slice(0, start - first.start))
                )
            last = self._extents[hi - 1]
            if last.end > end:
                offset = end - last.start
                replacement.append(
                    Extent(end, last.end - end, last.payload.slice(offset, last.end - end))
                )
        self._extents[lo:hi] = replacement
        self._starts[lo:hi] = [e.start for e in replacement]

    def clear(self) -> None:
        self._starts.clear()
        self._extents.clear()

    # -- queries ---------------------------------------------------------------

    def read(self, start: int, length: int) -> List[Extent]:
        """Extents overlapping [start, start+length), clipped to the range.

        Gaps (never-written bytes) are simply absent — callers that need
        zero-fill semantics (the POSIX layer) synthesise zeros for gaps.
        """
        self._check_range(start, length)
        end = start + length
        lo, hi = self._overlap_slice(start, end)
        out: List[Extent] = []
        for extent in self._extents[lo:hi]:
            clip_start = max(extent.start, start)
            clip_end = min(extent.end, end)
            if clip_end <= clip_start:
                continue
            offset = clip_start - extent.start
            out.append(
                Extent(clip_start, clip_end - clip_start, extent.payload.slice(offset, clip_end - clip_start))
            )
        return out

    def read_bytes(self, start: int, length: int) -> bytes:
        """Materialise [start, start+length) as real bytes, zero-filling gaps.

        Only valid when every overlapping extent holds real bytes — the
        metadata/log path. Synthetic extents raise, catching misuse.
        """
        pieces = self.read(start, length)
        out = bytearray(length)
        for extent in pieces:
            if extent.payload.is_synthetic:
                raise InvalidCommand(
                    "read_bytes over synthetic payload — bulk data has no real bytes"
                )
            at = extent.start - start
            out[at : at + extent.length] = extent.payload.data
        return bytes(out)

    def bytes_stored(self) -> int:
        return sum(e.length for e in self._extents)

    def extent_count(self) -> int:
        return len(self._extents)
