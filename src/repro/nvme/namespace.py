"""NVMe namespaces and per-process partitions.

The paper's security model (§III-F) allocates storage to jobs at NVMe
*namespace* granularity and then slices each namespace into per-process
*partitions* ("each process gets a contiguous segment of the SSD based
on its rank and the communicator size"). A partition is pure arithmetic
over its namespace — no coordination is needed after creation, which is
exactly the point of the design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import InvalidCommand
from repro.nvme.extents import ExtentStore

__all__ = ["Namespace", "Partition"]


class Namespace:
    """A contiguous, isolated slice of an SSD's capacity."""

    def __init__(self, nsid: int, nbytes: int, owner_job: Optional[str] = None):
        if nbytes <= 0:
            raise InvalidCommand(f"namespace size must be positive, got {nbytes}")
        self.nsid = nsid
        self.nbytes = nbytes
        self.owner_job = owner_job
        self.store = ExtentStore(nbytes)

    def check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.nbytes:
            raise InvalidCommand(
                f"ns{self.nsid}: [{offset}, {offset + length}) outside "
                f"{self.nbytes}-byte namespace"
            )

    def partition(self, rank: int, nranks: int, block_size: int) -> "Partition":
        """Contiguous per-rank segment, aligned down to ``block_size``.

        Mirrors §III-F: the namespace is divided between the ranks of the
        ``MPI_COMM_CR`` communicator sharing this SSD; segment boundaries
        align to the hugeblock size so allocators never straddle ranks.
        """
        if not 0 <= rank < nranks:
            raise InvalidCommand(f"rank {rank} outside communicator of {nranks}")
        if block_size <= 0:
            raise InvalidCommand(f"block_size must be positive, got {block_size}")
        usable_blocks = self.nbytes // block_size
        per_rank = usable_blocks // nranks
        if per_rank == 0:
            raise InvalidCommand(
                f"namespace too small: {usable_blocks} blocks across {nranks} ranks"
            )
        start = rank * per_rank * block_size
        return Partition(self, start, per_rank * block_size)

    def partitions_for(self, nranks: int, block_size: int) -> List["Partition"]:
        return [self.partition(rank, nranks, block_size) for rank in range(nranks)]


@dataclass(frozen=True)
class Partition:
    """A rank's private contiguous window into a namespace."""

    namespace: Namespace
    offset: int
    nbytes: int

    def check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.nbytes:
            raise InvalidCommand(
                f"partition: [{offset}, {offset + length}) outside "
                f"{self.nbytes}-byte partition"
            )

    def absolute(self, offset: int) -> int:
        """Translate a partition-relative offset to a namespace offset."""
        return self.offset + offset
