"""Power-failure injection for durability testing.

Drives :meth:`SSD.power_fail` / :meth:`SSD.power_restore` from the
simulation, so tests can assert the paper's durability claim: "a
completely written checkpoint file will never hold corrupted data and
can safely be used for recovery" (§III-E) — committed writes survive,
in-flight writes vanish, and log replay reconstructs consistent
metadata.
"""

from __future__ import annotations

from typing import Any, Generator, List

from repro.nvme.device import SSD
from repro.sim.engine import Environment, Event

__all__ = ["PowerController"]


class PowerController:
    """Schedules power loss (and optional restoration) on a set of SSDs."""

    def __init__(self, env: Environment, ssds: List[SSD]):
        self.env = env
        self.ssds = list(ssds)
        self.events: List[tuple] = []  # (time, action)

    def fail_at(self, t: float, restore_after: float = 0.0) -> None:
        """Cut power to all controlled SSDs at time ``t``.

        If ``restore_after`` > 0, power returns that many seconds later
        (capacitors have flushed; committed data intact).
        """
        self.env.process(self._run(t, restore_after))

    def _run(self, t: float, restore_after: float) -> Generator[Event, Any, None]:
        delay = t - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        for ssd in self.ssds:
            ssd.power_fail()
        self.events.append((self.env.now, "fail"))
        if restore_after > 0:
            yield self.env.timeout(restore_after)
            for ssd in self.ssds:
                ssd.power_restore()
            self.events.append((self.env.now, "restore"))
