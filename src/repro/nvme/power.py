"""Power-failure injection for durability testing.

Drives :meth:`SSD.power_fail` / :meth:`SSD.power_restore` from the
simulation, so tests can assert the paper's durability claim: "a
completely written checkpoint file will never hold corrupted data and
can safely be used for recovery" (§III-E) — committed writes survive,
in-flight writes vanish, and log replay reconstructs consistent
metadata.

Scheduling is delegated to :class:`repro.faults.injector.FaultInjector`
(the controller predates the fault subsystem; it remains as the
device-level convenience surface). Every controlled SSD is attached
under one pseudo-node, so a ``fail_at`` is exactly one
:class:`~repro.faults.model.SSDPowerLoss` fault whose blast radius is
the controller's whole device set — and it lands in the injector's
:class:`~repro.faults.timeline.FaultTimeline` like any other fault.
"""

from __future__ import annotations

from typing import List

from repro.nvme.device import SSD
from repro.sim.engine import Environment

__all__ = ["PowerController"]

# One pseudo-node groups all controlled devices into a single fault.
_GROUP = "power-controller"


class PowerController:
    """Schedules power loss (and optional restoration) on a set of SSDs."""

    def __init__(self, env: Environment, ssds: List[SSD]):
        from repro.faults.injector import FaultInjector

        self.env = env
        self.ssds = list(ssds)
        self.events: List[tuple] = []  # (time, action)
        self._injector = FaultInjector(env)
        for ssd in self.ssds:
            self._injector.attach_ssd(_GROUP, ssd)
        self._injector.subscribe(
            lambda rec, fault, radius: self.events.append((self.env.now, "fail"))
        )
        self._injector.subscribe_repair(
            lambda rec, fault, radius: self.events.append((self.env.now, "restore"))
        )

    @property
    def timeline(self):
        """The injector's FaultTimeline for these devices."""
        return self._injector.timeline

    def fail_at(self, t: float, restore_after: float = 0.0) -> None:
        """Cut power to all controlled SSDs at time ``t``.

        If ``restore_after`` > 0, power returns that many seconds later
        (capacitors have flushed; committed data intact).
        """
        from repro.faults.model import SSDPowerLoss

        self._injector.fire_at(
            t,
            SSDPowerLoss(_GROUP),
            repair_after=restore_after if restore_after > 0 else None,
        )
