"""Hardware submission/completion queue pairs with polled completion.

Microfs principle 1 requires a *run-to-completion* pipeline: submit,
poll, no interrupts, no locks (§III-A). :class:`QueuePair` models one
hardware SQ/CQ pair: submissions retain order, completions land on the
CQ as the device finishes them, and ``poll()`` drains ready completions
without blocking — returning an empty list when nothing is ready, just
like a real polled driver.

In-order completion per queue is guaranteed ("the use of a single IO
queue per instance guarantees that IO operations are completed in the
order they are received"): a command's completion is withheld until all
earlier submissions on the same queue have completed.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from repro.errors import DeviceError
from repro.nvme.commands import Command, CommandResult
from repro.nvme.device import SSD
from repro.obs.context import tracer_of
from repro.sim.engine import Environment, Event

__all__ = ["QueuePair"]


class QueuePair:
    """One SQ/CQ pair bound to an SSD, with bounded queue depth."""

    def __init__(self, env: Environment, ssd: SSD, depth: int = 128):
        if depth < 1:
            raise DeviceError(f"queue depth must be >= 1, got {depth}")
        self.env = env
        self.ssd = ssd
        self.qid = ssd.allocate_queue()
        self.depth = depth
        self._inflight: Deque[dict] = deque()  # submission order
        self._completions: Deque[CommandResult] = deque()

    # -- submission --------------------------------------------------------------

    def submit(self, command: Command, rate_cap: Optional[float] = None) -> None:
        """Post a command to the SQ. Raises if the queue is full."""
        if len(self._inflight) >= self.depth:
            raise DeviceError(f"queue {self.qid} full (depth {self.depth})")
        slot = {"done": False, "result": None, "error": None}
        self._inflight.append(slot)
        tr = tracer_of(self.env)
        if tr is not None:
            # Span covers SQ post -> CQ entry; the device span (which
            # claims the handoff) nests inside it via the parent link.
            qspan = tr.begin(f"nvme.qp.{command.opcode.name.lower()}",
                             cat="device", track=f"{self.ssd.name}.q{self.qid}",
                             parent=tr.take_handoff(), depth=len(self._inflight))
            slot["span"] = qspan
            tr.handoff(qspan)
        event = self.ssd.submit(command, rate_cap=rate_cap)
        event.callbacks.append(lambda ev: self._on_device_done(slot, ev))

    def _on_device_done(self, slot: dict, event: Event) -> None:
        slot["done"] = True
        if event.ok:
            slot["result"] = event.value
        else:
            slot["error"] = event._exc
        span = slot.get("span")
        if span is not None:
            tr = tracer_of(self.env)
            if tr is not None:
                tr.end(span)
        self._drain_in_order()

    def _drain_in_order(self) -> None:
        """Move completions to the CQ strictly in submission order."""
        while self._inflight and self._inflight[0]["done"]:
            slot = self._inflight.popleft()
            if slot["error"] is not None:
                # Errors surface on poll as failed results.
                result = CommandResult(
                    command=None, latency=0.0, extra={"error": slot["error"]}
                )
                self._completions.append(result)
            else:
                self._completions.append(slot["result"])

    # -- polling ------------------------------------------------------------------

    def poll(self) -> List[CommandResult]:
        """Drain currently-ready completions (non-blocking)."""
        out = list(self._completions)
        self._completions.clear()
        return out

    def outstanding(self) -> int:
        return len(self._inflight)

    def wait_all(self) -> Generator[Event, Any, List[CommandResult]]:
        """Poll-spin until every outstanding command completes.

        A sub-generator for simulation processes; the poll interval is a
        fixed 1 us — the cost model of busy polling, not a sleep.
        """
        results: List[CommandResult] = []
        results.extend(self.poll())
        while self._inflight:
            yield self.env.timeout(1e-6)
            results.extend(self.poll())
        results.extend(self.poll())
        return results
