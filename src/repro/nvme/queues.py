"""Hardware submission/completion queue pairs with polled completion.

Microfs principle 1 requires a *run-to-completion* pipeline: submit,
poll, no interrupts, no locks (§III-A). :class:`QueuePair` models one
hardware SQ/CQ pair: submissions retain order, completions land on the
CQ as the device finishes them, and ``poll()`` drains ready completions
without blocking — returning an empty list when nothing is ready, just
like a real polled driver.

In-order completion per queue is guaranteed ("the use of a single IO
queue per instance guarantees that IO operations are completed in the
order they are received"): a command's completion is withheld until all
earlier submissions on the same queue have completed.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Generator, List, Optional

from repro.errors import DeviceError, InvalidArgument
from repro.io.qos import DEFAULT_WRR_WEIGHTS, QoSClass
from repro.nvme.commands import Command, CommandResult
from repro.nvme.device import SSD
from repro.obs.context import tracer_of
from repro.sim.engine import Environment, Event

__all__ = ["QueuePair", "WrrArbiter"]


class WrrArbiter:
    """NVMe WRR-style arbitration over QoS classes at the device front end.

    Commands ask for a service slot before touching the media servers.
    With free slots and no waiters the grant is immediate — zero extra
    simulation events, which is what keeps the pinned-seed baselines
    bit-identical when no arbiter is installed or contention never
    arises. Under contention, ``mode="wrr"`` serves classes by deficit
    credits refilled from the weight table (urgent classes drain the
    queue first, but every class makes progress); ``mode="fcfs"`` is the
    strawman single FIFO the qos experiment compares against.
    """

    __slots__ = (
        "env",
        "mode",
        "slots",
        "weights",
        "_in_service",
        "_fifo",
        "_queues",
        "_credits",
        "grants",
        "waited",
    )

    #: Same-timestamp admissions resolve by per-class FIFO + the fixed
    #: credit scan order below — the sanitizer's tie-break declaration.
    _san_tiebreak = "fifo"

    #: Tie-break order when credits are equal (most- to least-urgent).
    _ORDER = (
        QoSClass.JOURNAL,
        QoSClass.RECOVERY,
        QoSClass.CKPT_DATA,
        QoSClass.BEST_EFFORT,
    )

    def __init__(
        self,
        env: Environment,
        weights: Optional[Dict[QoSClass, int]] = None,
        slots: int = 1,
        mode: str = "wrr",
    ):
        if mode not in ("wrr", "fcfs"):
            raise InvalidArgument(f"arbiter mode must be 'wrr' or 'fcfs', got {mode!r}")
        if slots < 1:
            raise InvalidArgument(f"arbiter slots must be >= 1, got {slots}")
        self.env = env
        self.mode = mode
        self.slots = slots
        self.weights = dict(weights or DEFAULT_WRR_WEIGHTS)
        for cls in self._ORDER:
            self.weights.setdefault(cls, 1)
            if self.weights[cls] < 1:
                raise InvalidArgument(f"weight for {cls.value} must be >= 1")
        self._in_service = 0
        self._fifo: Deque[tuple] = deque()  # fcfs: (qos, event)
        self._queues: Dict[QoSClass, Deque[Event]] = {
            cls: deque() for cls in self._ORDER
        }
        self._credits: Dict[QoSClass, int] = {cls: 0 for cls in self._ORDER}
        self.grants: Dict[QoSClass, int] = {cls: 0 for cls in self._ORDER}
        self.waited: Dict[QoSClass, int] = {cls: 0 for cls in self._ORDER}

    def _waiting(self) -> int:
        if self.mode == "fcfs":
            return len(self._fifo)
        return sum(len(q) for q in self._queues.values())

    def admit(self, qos: Optional[QoSClass]) -> Generator[Event, Any, None]:
        """Acquire a service slot; yields only under contention."""
        monitor = self.env.monitor
        if monitor is not None:
            monitor.note_mutation(self, "admit")
        cls = qos or QoSClass.BEST_EFFORT
        if self._in_service < self.slots and self._waiting() == 0:
            # Fast path: no yield, no event — the default timeline is
            # untouched when the device is uncontended.
            self._in_service += 1
            self.grants[cls] += 1
            return
        ev = Event(self.env)
        if self.mode == "fcfs":
            self._fifo.append((cls, ev))
        else:
            self._queues[cls].append(ev)
        self.waited[cls] += 1
        yield ev
        self.grants[cls] += 1

    def release(self) -> None:
        """Return a slot and wake the next waiter per policy."""
        monitor = self.env.monitor
        if monitor is not None:
            monitor.note_mutation(self, "release")
        self._in_service -= 1
        while self._in_service < self.slots:
            nxt = self._pick()
            if nxt is None:
                break
            self._in_service += 1
            nxt.succeed()

    def _pick(self) -> Optional[Event]:
        if self.mode == "fcfs":
            if not self._fifo:
                return None
            _cls, ev = self._fifo.popleft()
            return ev
        ready = [cls for cls in self._ORDER if self._queues[cls]]
        if not ready:
            return None
        if all(self._credits[cls] <= 0 for cls in ready):
            # New round: refill every class from the weight table.
            for cls in self._ORDER:
                self._credits[cls] = self.weights[cls]
        funded = [cls for cls in ready if self._credits[cls] > 0]
        best = max(funded, key=lambda cls: (self._credits[cls], -self._ORDER.index(cls)))
        self._credits[best] -= 1
        return self._queues[best].popleft()


class QueuePair:
    """One SQ/CQ pair bound to an SSD, with bounded queue depth."""

    __slots__ = ("env", "ssd", "qid", "depth", "_inflight", "_completions")

    #: Completions drain strictly in submission order (_drain_in_order).
    _san_tiebreak = "fifo"

    def __init__(self, env: Environment, ssd: SSD, depth: int = 128):
        if depth < 1:
            raise DeviceError(f"queue depth must be >= 1, got {depth}")
        self.env = env
        self.ssd = ssd
        self.qid = ssd.allocate_queue()
        self.depth = depth
        self._inflight: Deque[dict] = deque()  # submission order
        self._completions: Deque[CommandResult] = deque()

    # -- submission --------------------------------------------------------------

    def submit(self, command: Command, rate_cap: Optional[float] = None) -> None:
        """Post a command to the SQ. Raises if the queue is full."""
        if len(self._inflight) >= self.depth:
            raise DeviceError(f"queue {self.qid} full (depth {self.depth})")
        monitor = self.env.monitor
        if monitor is not None:
            monitor.note_mutation(self, "submit")
        slot = {"done": False, "result": None, "error": None}
        self._inflight.append(slot)
        tr = tracer_of(self.env)
        if tr is not None:
            # Span covers SQ post -> CQ entry; the device span (which
            # claims the handoff) nests inside it via the parent link.
            qspan = tr.begin(f"nvme.qp.{command.opcode.name.lower()}",
                             cat="device", track=f"{self.ssd.name}.q{self.qid}",
                             parent=tr.take_handoff(), depth=len(self._inflight))
            slot["span"] = qspan
            tr.handoff(qspan)
        event = self.ssd.submit(command, rate_cap=rate_cap)
        event.callbacks.append(lambda ev: self._on_device_done(slot, ev))

    def _on_device_done(self, slot: dict, event: Event) -> None:
        monitor = self.env.monitor
        if monitor is not None:
            monitor.note_mutation(self, "complete")
        slot["done"] = True
        if event.ok:
            slot["result"] = event.value
        else:
            slot["error"] = event._exc
        span = slot.get("span")
        if span is not None:
            tr = tracer_of(self.env)
            if tr is not None:
                tr.end(span)
        self._drain_in_order()

    def _drain_in_order(self) -> None:
        """Move completions to the CQ strictly in submission order."""
        while self._inflight and self._inflight[0]["done"]:
            slot = self._inflight.popleft()
            if slot["error"] is not None:
                # Errors surface on poll as failed results.
                result = CommandResult(
                    command=None, latency=0.0, extra={"error": slot["error"]}
                )
                self._completions.append(result)
            else:
                self._completions.append(slot["result"])

    # -- polling ------------------------------------------------------------------

    def poll(self) -> List[CommandResult]:
        """Drain currently-ready completions (non-blocking)."""
        out = list(self._completions)
        self._completions.clear()
        return out

    def outstanding(self) -> int:
        return len(self._inflight)

    def wait_all(self) -> Generator[Event, Any, List[CommandResult]]:
        """Poll-spin until every outstanding command completes.

        A sub-generator for simulation processes; the poll interval is a
        fixed 1 us — the cost model of busy polling, not a sleep.
        """
        results: List[CommandResult] = []
        results.extend(self.poll())
        while self._inflight:
            yield self.env.timeout(1e-6)
            results.extend(self.poll())
        results.extend(self.poll())
        return results
