"""repro.obs — end-to-end observability for the simulated stack.

Three pieces, usable separately or together:

* :mod:`repro.obs.tracer` — span tracing stamped with *simulated* time.
  Spans carry parent/child links so one checkpoint write can be followed
  app -> MicroFS -> data plane -> NVMf -> RDMA -> NVMe queue -> media.
* :mod:`repro.obs.metrics` — a typed instrument registry (monotonic
  counters, gauges, fixed-bucket latency histograms) that subsumed the
  old ad-hoc ``Counter``/``TraceRecorder`` pair, with snapshot/merge
  support so per-shard registries fold into one deterministic summary.
* :mod:`repro.obs.export` — Chrome trace-event JSON (loadable in
  Perfetto / ``chrome://tracing``), a flat JSONL span log, and a text
  summary.

An :class:`ObsContext` bundles one simulation environment's tracer +
registry and hangs off ``Environment.obs``; the system registry attaches
one to every built backend, so ``repro run fig8a --trace out.json``
traces any system with no experiment changes.

Determinism rules: span *ordering* and timestamps use only simulated
time and creation sequence — never the wall clock. Wall-clock
self-profiling of the simulator itself lives in the separate, clearly
labelled :attr:`ObsContext.selfprof` channel and never enters spans.

Tracing is near-zero-cost when disabled: ``tracer_of(env)`` returns
``None`` (one attribute read + one truth test), and the no-op
:data:`NULL_TRACER` singleton returns shared immutable objects — no
per-event allocation on the disabled path.
"""

from repro.obs.context import (
    Capture,
    ObsContext,
    attach,
    capture,
    current_session,
    tracer_of,
)
from repro.obs.export import (
    chrome_trace,
    span_count,
    span_sequence,
    summary_text,
    total_duration,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    InstrumentMeta,
    MetricsRegistry,
    TraceRecorder,
)
from repro.obs.profile import (
    CriticalPath,
    collapsed_stacks,
    critical_path,
    layer_table,
    spans_of,
    write_collapsed,
    write_critical_path_jsonl,
)
from repro.obs.sampling import SamplingProfiler, sample
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Capture",
    "Counter",
    "CriticalPath",
    "InstrumentMeta",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "ObsContext",
    "SamplingProfiler",
    "Span",
    "TraceRecorder",
    "Tracer",
    "attach",
    "capture",
    "chrome_trace",
    "collapsed_stacks",
    "critical_path",
    "current_session",
    "layer_table",
    "sample",
    "span_count",
    "span_sequence",
    "spans_of",
    "summary_text",
    "total_duration",
    "tracer_of",
    "write_chrome_trace",
    "write_collapsed",
    "write_critical_path_jsonl",
    "write_jsonl",
]
