"""Per-run observability context and the CLI capture session.

One :class:`ObsContext` per :class:`~repro.sim.engine.Environment`,
stored on ``env.obs`` and on the system registry's ``SystemHandle`` so
every backend built through :mod:`repro.systems` is observable with no
experiment changes.

:func:`capture` opens a process-wide session: every context attached
while it is active inherits the session's tracing/profiling switches and
registers itself, so a CLI run that builds several environments (e.g.
fig8a builds three fleets) exports them all into one trace file, one
Perfetto process row per environment.
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["ObsContext", "SelfProfile", "Capture", "attach", "capture",
           "current_session", "tracer_of"]


class SelfProfile:
    """Wall-clock self-profiling of the *simulator* (host time).

    This is the one place wall-clock time is allowed: it measures how
    long the Python event loop spends executing each event class, so hot
    paths of the simulator itself can be found.  It never feeds into
    spans, metrics, or anything else that must be deterministic.
    """

    def __init__(self) -> None:
        self.wall_s: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def add(self, key: str, wall: float, count: int = 1) -> None:
        self.wall_s[key] = self.wall_s.get(key, 0.0) + wall
        self.calls[key] = self.calls.get(key, 0) + count

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {k: {"wall_s": self.wall_s[k], "calls": self.calls[k]}
                for k in sorted(self.wall_s)}


class ObsContext:
    """Tracer + metrics registry + self-profile for one environment."""

    def __init__(self, env, label: str = "run", tracing: bool = False,
                 profile: bool = False, telemetry: bool = False):
        self.env = env
        self.label = label
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(env) if tracing else NULL_TRACER
        self.profile = profile
        self.selfprof = SelfProfile()
        if telemetry:
            self.enable_telemetry()

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    def enable_tracing(self) -> Tracer:
        if not self.tracer.enabled:
            self.tracer = Tracer(self.env)
        return self.tracer

    def enable_telemetry(self):
        """Attach deterministic engine self-telemetry (idempotent)."""
        if self.env.telemetry is None:
            from repro.sim.engine import EngineTelemetry

            self.env.telemetry = EngineTelemetry()
        return self.env.telemetry

    def publish_telemetry(self) -> None:
        """Fold engine counters into the registry (idempotent, no-op
        when telemetry was never attached)."""
        telemetry = getattr(self.env, "telemetry", None)
        if telemetry is not None:
            telemetry.publish(self.metrics, self.env)

    def flat_extra(self) -> Dict[str, float]:
        """Flat metric summaries for ``RunResult.extra``."""
        self.publish_telemetry()
        return self.metrics.flat()


# ---------------------------------------------------------------------------
# module-level session

_SESSION: Optional["Capture"] = None


class Capture:
    """Collects every ObsContext attached while the session is active."""

    def __init__(self, trace: bool = False, profile: bool = False,
                 telemetry: bool = False):
        self.trace = trace
        self.profile = profile
        self.telemetry = telemetry
        self.contexts: List[ObsContext] = []
        self.started_wall = _time.perf_counter()

    def register(self, ctx: ObsContext) -> None:
        self.contexts.append(ctx)

    # Export helpers delegate to repro.obs.export (imported lazily to
    # keep context -> export -> context import cycles out).
    def write_chrome(self, path: str) -> str:
        from repro.obs.export import write_chrome_trace

        return write_chrome_trace(self.contexts, path)

    def write_jsonl(self, path: str) -> str:
        from repro.obs.export import write_jsonl

        return write_jsonl(self.contexts, path)

    def report(self) -> str:
        from repro.obs.export import summary_text

        return summary_text(self.contexts,
                            wall_s=_time.perf_counter() - self.started_wall)

    def n_spans(self) -> int:
        return sum(len(c.tracer.spans) + len(c.tracer.instants)
                   for c in self.contexts)


@contextmanager
def capture(trace: bool = False, profile: bool = False,
            telemetry: bool = False):
    """Session scope: contexts attached inside inherit these switches."""
    global _SESSION
    prev = _SESSION
    session = Capture(trace=trace, profile=profile, telemetry=telemetry)
    _SESSION = session
    try:
        yield session
    finally:
        _SESSION = prev
        for ctx in session.contexts:
            if ctx.tracer.enabled:
                ctx.tracer.close_open_spans()
            ctx.publish_telemetry()


def current_session() -> Optional["Capture"]:
    """The active :func:`capture` session, if any.

    The execution layer (:mod:`repro.exec`) opens a nested capture per
    unit to harvest that unit's contexts, then re-registers them here so
    a CLI-level ``--trace``/``--metrics`` session still sees every
    environment the plan built.
    """
    return _SESSION


def attach(env, label: str = "run", tracing: Optional[bool] = None,
           profile: Optional[bool] = None,
           telemetry: Optional[bool] = None) -> ObsContext:
    """Get or create the ObsContext for ``env`` (idempotent).

    Inside a :func:`capture` session the session's switches apply and
    the context is registered for export; explicit keyword arguments
    win over the session defaults.
    """
    ctx = getattr(env, "obs", None)
    if ctx is None:
        session = _SESSION
        want_trace = tracing if tracing is not None else (
            session.trace if session is not None else False)
        want_profile = profile if profile is not None else (
            session.profile if session is not None else False)
        want_telemetry = telemetry if telemetry is not None else (
            session.telemetry if session is not None else False)
        ctx = ObsContext(env, label=label, tracing=want_trace,
                         profile=want_profile, telemetry=want_telemetry)
        env.obs = ctx
        if session is not None:
            session.register(ctx)
    else:
        if tracing:
            ctx.enable_tracing()
        if profile:
            ctx.profile = True
        if telemetry:
            ctx.enable_telemetry()
    return ctx


def tracer_of(env) -> Optional[Tracer]:
    """The enabled tracer for ``env``, or None — the hot-path guard.

    Cost when observability is off: one attribute read and one None
    test.  Callers must guard with ``if tr is not None`` before creating
    spans, so the disabled path allocates nothing.
    """
    ctx = getattr(env, "obs", None)
    if ctx is None:
        return None
    tr = ctx.tracer
    return tr if tr.enabled else None
