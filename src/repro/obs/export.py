"""Trace and metrics exporters.

* :func:`chrome_trace` / :func:`write_chrome_trace` — Chrome
  trace-event JSON (the format Perfetto and ``chrome://tracing`` load).
  Each :class:`~repro.obs.context.ObsContext` becomes one *process*
  row (``pid``); each span track becomes one or more *threads*
  (``tid``).  Concurrent spans on one track (e.g. overlapping NVMe
  commands on one device) are spilled onto extra lanes — ``ssd00``,
  ``ssd00#1``, … — so every lane holds a properly nested family of
  intervals and every ``B`` has a matching ``E`` with non-negative
  duration.  Timestamps are simulated time in microseconds.
* :func:`write_jsonl` — one JSON object per span, flat, for ad-hoc
  analysis with ``jq``/pandas.
* :func:`summary_text` — human-readable report: span counts by
  category, metric instruments, and the (clearly labelled,
  non-deterministic) wall-clock self-profile of the simulator.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.tracer import Span

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "summary_text",
    "span_count",
    "span_sequence",
    "total_duration",
]


def _us(t: float) -> float:
    """Simulated seconds -> trace microseconds (µs, 3 decimals = ns)."""
    return round(t * 1e6, 3)


def _effective_intervals(spans: Sequence[Span], now: float) -> Dict[int, Tuple[float, float]]:
    """Closed, non-negative [begin, end] per span id.

    Open spans are clamped to ``now``; a parent whose children outlive
    it is stretched to cover them so the viewer never shows a child
    poking out of its parent.
    """
    ival: Dict[int, Tuple[float, float]] = {}
    for s in spans:
        end = s.end if s.end is not None else now
        if end < s.begin:
            end = s.begin
        ival[s.id] = (s.begin, end)
    # Children are created after their parents, so walking ids in
    # reverse order propagates child extents upward in one pass.
    for s in sorted(spans, key=lambda s: -s.id):
        if s.parent is not None and s.parent in ival:
            pb, pe = ival[s.parent]
            b, e = ival[s.id]
            if e > pe:
                ival[s.parent] = (pb, e)
    return ival


def _lanes_for_track(spans: Sequence[Span],
                     ival: Dict[int, Tuple[float, float]]) -> Tuple[Dict[int, int], int]:
    """Assign each span of ONE track to a lane (0, 1, ...).

    Spans are processed outermost-first; each lane keeps a stack of
    open intervals and accepts a span only if it nests properly, so
    every lane is a laminar family => matched, well-nested B/E pairs
    even when commands overlap in time on the same device.
    """
    order = sorted(spans, key=lambda s: (ival[s.id][0], -ival[s.id][1], s.id))
    lanes: List[List[Tuple[float, float]]] = []
    assignment: Dict[int, int] = {}
    for s in order:
        b, e = ival[s.id]
        for li in range(len(lanes) + 1):
            if li == len(lanes):
                lanes.append([])
            stack = lanes[li]
            while stack and stack[-1][1] <= b:
                stack.pop()
            if not stack or e <= stack[-1][1]:
                stack.append((b, e))
                assignment[s.id] = li
                break
    return assignment, len(lanes)


def chrome_trace(contexts: Iterable) -> Dict[str, object]:
    """Build a Chrome trace-event dict from one or more ObsContexts."""
    events: List[Dict[str, object]] = []
    for pid, ctx in enumerate(contexts, start=1):
        tr = ctx.tracer
        spans = list(tr.spans)
        instants = list(tr.instants)
        if not spans and not instants:
            continue
        now = max([ctx.env.now]
                  + [s.end for s in spans if s.end is not None]
                  + [s.begin for s in spans])
        events.append({"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                       "args": {"name": ctx.label}})

        by_track: Dict[str, List[Span]] = defaultdict(list)
        for s in spans:
            by_track[s.track].append(s)
        instant_tracks: Dict[str, List[Span]] = defaultdict(list)
        for s in instants:
            instant_tracks[s.track].append(s)

        # Track order: by first span id => deterministic, creation order.
        first_id: Dict[str, int] = {}
        for s in spans:
            first_id.setdefault(s.track, s.id)
        for s in instants:
            first_id.setdefault(s.track, s.id)
        tracks = sorted(first_id, key=first_id.get)

        ival = _effective_intervals(spans, now)
        next_tid = 1
        for track in tracks:
            tspans = by_track.get(track, [])
            assignment, n_lanes = _lanes_for_track(tspans, ival)
            n_lanes = max(n_lanes, 1)
            lane_tid = {}
            for lane in range(n_lanes):
                tid = next_tid
                next_tid += 1
                lane_tid[lane] = tid
                tname = track if lane == 0 else f"{track}#{lane}"
                events.append({"name": "thread_name", "ph": "M", "pid": pid,
                               "tid": tid, "args": {"name": tname}})
            # Emit B/E per lane in nesting order so same-ts ties keep
            # outer-B-first / inner-E-first ordering in the array.
            order = sorted(tspans,
                           key=lambda s: (ival[s.id][0], -ival[s.id][1], s.id))
            open_stacks: Dict[int, List[Tuple[float, Span]]] = \
                {lane: [] for lane in range(n_lanes)}
            for s in order:
                lane = assignment[s.id]
                tid = lane_tid[lane]
                b, e = ival[s.id]
                stack = open_stacks[lane]
                while stack and stack[-1][0] <= b:
                    pe, ps = stack.pop()
                    events.append({"ph": "E", "pid": pid,
                                   "tid": tid, "ts": _us(pe)})
                args = {"id": s.id}
                if s.parent is not None:
                    args["parent"] = s.parent
                if s.attrs:
                    args.update(s.attrs)
                events.append({"name": s.name, "cat": s.cat, "ph": "B",
                               "pid": pid, "tid": tid, "ts": _us(b),
                               "args": args})
                stack.append((e, s))
            for lane in range(n_lanes):
                tid = lane_tid[lane]
                while open_stacks[lane]:
                    pe, ps = open_stacks[lane].pop()
                    events.append({"ph": "E", "pid": pid,
                                   "tid": tid, "ts": _us(pe)})
            for s in sorted(instant_tracks.get(track, []), key=lambda s: s.id):
                args = dict(s.attrs) if s.attrs else {}
                events.append({"name": s.name, "cat": s.cat, "ph": "i",
                               "s": "t", "pid": pid, "tid": lane_tid[0],
                               "ts": _us(s.begin), "args": args})
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"clock": "simulated", "generator": "repro.obs"}}


def write_chrome_trace(contexts: Iterable, path: str) -> str:
    doc = chrome_trace(contexts)
    with open(path, "w") as fh:
        json.dump(doc, fh, separators=(",", ":"), default=str)
    return path


def write_jsonl(contexts: Iterable, path: str) -> str:
    """Flat span log: one JSON object per line, spans then instants."""
    with open(path, "w") as fh:
        for ctx in contexts:
            tr = ctx.tracer
            now = ctx.env.now
            for s in tr.spans:
                end = s.end if s.end is not None else now
                rec = {"ctx": ctx.label, "id": s.id, "parent": s.parent,
                       "name": s.name, "cat": s.cat, "track": s.track,
                       "t0": s.begin, "t1": end, "dur": max(0.0, end - s.begin)}
                if s.attrs:
                    rec["attrs"] = s.attrs
                fh.write(json.dumps(rec, default=str) + "\n")
            for s in tr.instants:
                rec = {"ctx": ctx.label, "id": s.id, "name": s.name,
                       "cat": s.cat, "track": s.track, "t": s.begin,
                       "instant": True}
                if s.attrs:
                    rec["attrs"] = s.attrs
                fh.write(json.dumps(rec, default=str) + "\n")
    return path


def span_sequence(ctx_or_tracer) -> Tuple[Tuple, ...]:
    """Deterministic fingerprint of a run's spans (for equality tests)."""
    tr = getattr(ctx_or_tracer, "tracer", ctx_or_tracer)
    seq = [(s.id, s.name, s.cat, s.track, s.parent, s.begin, s.end)
           for s in tr.spans]
    seq += [(s.id, s.name, s.cat, s.track, None, s.begin, s.begin)
            for s in tr.instants]
    seq.sort()
    return tuple(seq)


def total_duration(ctx_or_tracer, name: Optional[str] = None,
                   cat: Optional[str] = None,
                   track: Optional[str] = None) -> float:
    """Sum of durations of spans matching the given filters (seconds)."""
    tr = getattr(ctx_or_tracer, "tracer", ctx_or_tracer)
    total = 0.0
    for s in tr.spans:
        if name is not None and s.name != name:
            continue
        if cat is not None and s.cat != cat:
            continue
        if track is not None and s.track != track:
            continue
        end = s.end if s.end is not None else s.begin
        total += end - s.begin
    return total


def span_count(ctx_or_tracer, name: Optional[str] = None,
               cat: Optional[str] = None,
               track: Optional[str] = None) -> int:
    """Number of spans matching the given filters.

    The batching experiment asserts fabric round trips from
    ``span_count(ctx, name="nvmf.rtt")``: doorbell batching must lower
    it at equal payload bytes.
    """
    tr = getattr(ctx_or_tracer, "tracer", ctx_or_tracer)
    n = 0
    for s in tr.spans:
        if name is not None and s.name != name:
            continue
        if cat is not None and s.cat != cat:
            continue
        if track is not None and s.track != track:
            continue
        n += 1
    return n


def summary_text(contexts: Iterable, wall_s: Optional[float] = None) -> str:
    """Human-readable report over one or more contexts."""
    lines: List[str] = ["== repro.obs report =="]
    for ctx in contexts:
        tr = ctx.tracer
        lines.append(f"-- {ctx.label} --")
        if tr.enabled or tr.spans:
            by_cat: Dict[str, Tuple[int, float]] = {}
            tracks = set()
            for s in tr.spans:
                tracks.add(s.track)
                n, d = by_cat.get(s.cat, (0, 0.0))
                end = s.end if s.end is not None else s.begin
                by_cat[s.cat] = (n + 1, d + (end - s.begin))
            lines.append(f"  spans: {len(tr.spans)} "
                         f"(+{len(tr.instants)} instants) "
                         f"on {len(tracks)} tracks")
            for cat in sorted(by_cat):
                n, d = by_cat[cat]
                lines.append(f"    {cat:<10} {n:>7} spans  {d * 1e3:10.3f} ms")
        flat = ctx.metrics.flat()
        if flat:
            lines.append("  metrics:")
            for meta in ctx.metrics.names():
                inst = ctx.metrics.get(meta.name)
                if meta.kind == "counter":
                    lines.append(f"    {meta.name:<34} "
                                 f"{inst.value:>14g} {meta.unit}")
                elif meta.kind == "gauge":
                    if inst.updates:
                        lines.append(f"    {meta.name:<34} "
                                     f"{inst.value:>14g} {meta.unit} "
                                     f"(max {inst.max:g})")
                else:
                    if inst.count:
                        lines.append(
                            f"    {meta.name:<34} n={inst.count:<8} "
                            f"mean={inst.mean:.3e} p50={inst.percentile(.5):.3e} "
                            f"p99={inst.percentile(.99):.3e} "
                            f"max={inst.max:.3e} {meta.unit}")
        prof = ctx.selfprof.as_dict()
        if prof:
            lines.append("  self-profile (HOST wall clock; "
                         "non-deterministic, never in spans):")
            for key, row in sorted(prof.items(),
                                   key=lambda kv: -kv[1]["wall_s"]):
                lines.append(f"    {key:<28} {row['calls']:>9.0f} calls "
                             f"{row['wall_s'] * 1e3:10.2f} ms")
    if wall_s is not None:
        lines.append(f"[capture wall time {wall_s:.2f}s]")
    return "\n".join(lines)
