"""Typed metric instruments and the per-run registry.

Subsumes the old ad-hoc ``repro.sim.trace`` pair:

* :class:`Counter` — the same additive bag of named scalars (moved here
  verbatim; ``repro.sim.trace`` re-exports it).
* :class:`TraceRecorder` — timestamped series, now with a *consistent*
  lookup contract: ``series()``/``last()`` both raise :class:`KeyError`
  for names that were never sampled (use ``"name" in recorder`` or
  ``series(name, default=[])`` to probe).  The old class returned ``[]``
  from ``series()`` but raised from ``last()``.

New for the observability subsystem:

* :class:`MetricsRegistry` — named, typed instruments
  (:class:`CounterInstrument`, :class:`Gauge`, :class:`Histogram`)
  created on first use.  ``names()`` returns
  :class:`InstrumentMeta` records (name, kind, unit), not bare strings.
* :class:`Histogram` — fixed log-spaced buckets so percentile summaries
  are deterministic and mergeable across runs (no reservoir sampling,
  no wall-clock anywhere).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections import defaultdict
from typing import Dict, List, NamedTuple, Tuple

__all__ = [
    "Counter",
    "TraceRecorder",
    "InstrumentMeta",
    "CounterInstrument",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]


class Counter:
    """A bag of named, additive scalar counters."""

    def __init__(self) -> None:
        self._values: Dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1.0) -> None:
        self._values[name] += amount

    def get(self, name: str) -> float:
        return self._values.get(name, 0.0)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._values)

    def merge(self, other: "Counter") -> None:
        """Fold another counter's totals into this one."""
        for name, value in other._values.items():
            self._values[name] += value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._values.items()))
        return f"Counter({inner})"


class TraceRecorder:
    """Timestamped (t, value) samples per named series.

    Unknown names raise :class:`KeyError` from both :meth:`series` and
    :meth:`last`; pass ``default=`` to :meth:`series` or test membership
    with ``in`` when a name may not have been sampled yet.
    """

    _MISSING = object()

    def __init__(self) -> None:
        self._series: Dict[str, List[Tuple[float, float]]] = defaultdict(list)

    def sample(self, name: str, t: float, value: float) -> None:
        self._series[name].append((t, value))

    def series(self, name: str, default=_MISSING) -> List[Tuple[float, float]]:
        samples = self._series.get(name)
        if not samples:
            if default is not TraceRecorder._MISSING:
                return default
            raise KeyError(f"no samples recorded for series {name!r}")
        return list(samples)

    def names(self) -> List[str]:
        return sorted(k for k, v in self._series.items() if v)

    def last(self, name: str) -> Tuple[float, float]:
        samples = self._series.get(name)
        if not samples:
            raise KeyError(f"no samples recorded for series {name!r}")
        return samples[-1]

    def __contains__(self, name: str) -> bool:
        return bool(self._series.get(name))


class InstrumentMeta(NamedTuple):
    """What ``MetricsRegistry.names()`` returns: metadata, not strings."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    unit: str


class CounterInstrument:
    """Monotonic counter; ``add()`` rejects negative deltas."""

    __slots__ = ("meta", "value")

    def __init__(self, meta: InstrumentMeta):
        self.meta = meta
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.meta.name!r} is monotonic; got delta {amount}")
        self.value += amount

    def summary(self) -> Dict[str, float]:
        return {self.meta.name: self.value}


class Gauge:
    """Last-write-wins value with running min/max."""

    __slots__ = ("meta", "value", "min", "max", "updates")

    def __init__(self, meta: InstrumentMeta):
        self.meta = meta
        self.value = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.updates += 1

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)

    def summary(self) -> Dict[str, float]:
        if not self.updates:
            return {}
        n = self.meta.name
        return {n: self.value, f"{n}.max": self.max}


# 60 log-spaced bucket edges covering 1 ns .. 1000 s — wide enough for
# every latency in the simulation at ~26% resolution per bucket.
_DEFAULT_EDGES = tuple(10.0 ** (-9 + i * 0.2) for i in range(60))


class Histogram:
    """Fixed-bucket histogram with deterministic percentile summaries.

    Buckets are fixed at construction (log-spaced by default), so the
    summary depends only on the multiset of observations — never on
    arrival order or the wall clock — and two histograms with the same
    edges merge exactly.
    """

    __slots__ = ("meta", "edges", "counts", "count", "total", "min", "max")

    #: Same-timestamp observations commute — the summary depends only on
    #: the multiset of samples, so no ordering contract is needed.
    _san_tiebreak = "commutative"

    def __init__(self, meta: InstrumentMeta, edges: Tuple[float, ...] = _DEFAULT_EDGES):
        self.meta = meta
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def percentile(self, q: float) -> float:
        """Upper edge of the bucket holding the q-th quantile (0..1)."""
        if not self.count:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                if i >= len(self.edges):
                    return self.max
                return min(self.edges[i], self.max)
        return self.max  # pragma: no cover - defensive

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if other.edges != self.edges:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {}
        n = self.meta.name
        return {
            f"{n}.count": float(self.count),
            f"{n}.mean": self.mean,
            f"{n}.p50": self.percentile(0.50),
            f"{n}.p95": self.percentile(0.95),
            f"{n}.p99": self.percentile(0.99),
            f"{n}.max": self.max,
        }


class MetricsRegistry:
    """Named, typed instruments created on first use.

    Asking for an existing name with a different kind raises — a name
    means one thing for the whole run.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def counter(self, name: str, unit: str = "1") -> CounterInstrument:
        return self._get(name, "counter", unit, CounterInstrument)

    def gauge(self, name: str, unit: str = "1") -> Gauge:
        return self._get(name, "gauge", unit, Gauge)

    def histogram(self, name: str, unit: str = "s",
                  edges: Tuple[float, ...] = _DEFAULT_EDGES) -> Histogram:
        inst = self._instruments.get(name)
        if inst is None:
            inst = Histogram(InstrumentMeta(name, "histogram", unit), edges)
            self._instruments[name] = inst
        elif not isinstance(inst, Histogram):
            raise ValueError(
                f"instrument {name!r} already registered as {inst.meta.kind}")
        return inst

    def _get(self, name, kind, unit, cls):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(InstrumentMeta(name, kind, unit))
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise ValueError(
                f"instrument {name!r} already registered as {inst.meta.kind}")
        return inst

    def get(self, name: str):
        """Look up an existing instrument; KeyError if never created."""
        inst = self._instruments.get(name)
        if inst is None:
            raise KeyError(f"no instrument named {name!r}")
        return inst

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> List[InstrumentMeta]:
        """Metadata for every instrument, sorted by name."""
        return sorted((inst.meta for inst in self._instruments.values()))

    def flat(self) -> Dict[str, float]:
        """One flat {key: value} dict suitable for ``RunResult.extra``."""
        out: Dict[str, float] = {}
        for name in sorted(self._instruments):
            out.update(self._instruments[name].summary())
        return out

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one."""
        for name in sorted(other._instruments):
            inst = other._instruments[name]
            kind = inst.meta.kind
            if kind == "counter":
                self.counter(name, inst.meta.unit).add(inst.value)
            elif kind == "histogram":
                self.histogram(name, inst.meta.unit, inst.edges).merge(inst)
            else:  # gauge: last-writer-wins across registries
                if inst.updates:
                    mine = self.gauge(name, inst.meta.unit)
                    mine.set(inst.value)
                    mine.min = min(mine.min, inst.min)
                    mine.max = max(mine.max, inst.max)

    # -- snapshots (cross-process transport) ------------------------------

    def to_snapshot(self) -> Dict[str, Dict[str, object]]:
        """A plain-dict image of every instrument, picklable and
        JSON-serialisable, ordered by name.  ``from_snapshot`` inverts it
        exactly, so a registry can cross a process boundary and merge
        into another with no loss."""
        out: Dict[str, Dict[str, object]] = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            kind = inst.meta.kind
            entry: Dict[str, object] = {"kind": kind, "unit": inst.meta.unit}
            if kind == "counter":
                entry["value"] = inst.value
            elif kind == "gauge":
                entry.update(value=inst.value, min=inst.min, max=inst.max,
                             updates=inst.updates)
            else:  # histogram
                entry.update(edges=list(inst.edges), counts=list(inst.counts),
                             count=inst.count, total=inst.total,
                             min=inst.min, max=inst.max)
            out[name] = entry
        return out

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, Dict[str, object]]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_snapshot` output."""
        registry = cls()
        registry.merge_snapshot(snapshot)
        return registry

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold a snapshot dict into this registry (see :meth:`merge`)."""
        for name in sorted(snapshot):
            entry = snapshot[name]
            kind = entry["kind"]
            unit = str(entry.get("unit", "1"))
            if kind == "counter":
                self.counter(name, unit).add(float(entry["value"]))
            elif kind == "gauge":
                updates = int(entry.get("updates", 0))
                if updates:
                    gauge = self.gauge(name, unit)
                    gauge.set(float(entry["value"]))
                    gauge.min = min(gauge.min, float(entry["min"]))
                    gauge.max = max(gauge.max, float(entry["max"]))
            elif kind == "histogram":
                edges = tuple(entry["edges"])
                other = Histogram(InstrumentMeta(name, "histogram", unit), edges)
                other.counts = [int(c) for c in entry["counts"]]
                other.count = int(entry["count"])
                other.total = float(entry["total"])
                other.min = float(entry["min"])
                other.max = float(entry["max"])
                self.histogram(name, unit, edges).merge(other)
            else:
                raise ValueError(f"unknown instrument kind {kind!r} for {name!r}")
