"""Span-graph critical-path analysis and collapsed-stack export.

The profiler the ROADMAP's hot-path work needs: given a *completed*
trace (the spans :mod:`repro.obs.tracer` recorded in simulated time),
attribute the run's makespan to layers of the stack — which layer was
actually executing on the longest dependency chain, and which layers
were merely waiting on a deeper one.

Everything here is a pure function of the span set: simulated
timestamps and span ids only, no wall clock, no iteration over
unordered containers — the same trace always produces byte-identical
tables, JSONL, and collapsed stacks (the golden tests pin the fig7a
reference trace).

Three artefacts:

* :func:`critical_path` — walks the span forest from the last finisher
  backwards, always descending into the child whose *end* is latest
  (the classic last-finisher rule).  Every instant of the trace extent
  is attributed to exactly one span — the deepest span active on the
  chain — and each attributed segment also charges every ancestor on
  the chain with *blocked* time.  The per-layer rollup is the
  "where did the makespan go" table.
* :func:`collapsed_stacks` — whole-trace flamegraph lines
  (``root;child;leaf <weight>``), weighted by each span's *self* time
  (duration minus children, clipped to the parent) in integer
  nanoseconds of simulated time.  The format is what ``flamegraph.pl``
  and speedscope ingest.
* :func:`layer_table` / :func:`write_critical_path_jsonl` — the
  human-readable attribution table and its machine-readable twin.

Layer taxonomy: span categories map onto the stack's layers —
``app``/``mpi``/``runtime``/``fs``/``dataplane``/``nvmf`` (cat
``fabric``)/``device``, plus ``sched``, ``consensus``, and ``fault``
where those subsystems traced.  Unknown categories pass through
verbatim, so new instrumentation shows up without edits here.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "LAYER_OF_CAT",
    "LAYER_ORDER",
    "CriticalPath",
    "LayerAttribution",
    "Segment",
    "collapsed_stacks",
    "critical_path",
    "layer_of",
    "layer_table",
    "load_spans_jsonl",
    "spans_of",
    "write_collapsed",
    "write_critical_path_jsonl",
]

#: Span category -> layer name (the paper's stack, top to bottom).
LAYER_OF_CAT: Dict[str, str] = {
    "app": "app",
    "mpi": "mpi",
    "runtime": "runtime",
    "fs": "fs",
    "dataplane": "dataplane",
    "fabric": "nvmf",
    "device": "device",
    "sched": "sched",
    "consensus": "consensus",
    "fault": "fault",
}

#: Display order for attribution tables (top of stack first; layers the
#: taxonomy does not know sort after these, alphabetically).
LAYER_ORDER: Tuple[str, ...] = (
    "app", "mpi", "runtime", "fs", "dataplane", "nvmf", "device",
    "sched", "consensus", "fault", "idle",
)

#: Attribution bucket for trace extent not covered by any span.
IDLE_LAYER = "idle"

_EPS = 1e-12


def layer_of(cat: str) -> str:
    """Layer name for a span category (unknown categories pass through)."""
    return LAYER_OF_CAT.get(cat, cat)


def _layer_sort_key(layer: str) -> Tuple[int, str]:
    try:
        return (LAYER_ORDER.index(layer), layer)
    except ValueError:
        return (len(LAYER_ORDER), layer)


# ---------------------------------------------------------------------------
# span intake


def spans_of(contexts: Iterable[Any]) -> List[Dict[str, Any]]:
    """Plain span dicts from one or more ObsContexts (intervals only).

    Open spans are clamped to the environment clock, mirroring
    :func:`repro.obs.export.write_jsonl`.  Every tracer allocates span
    ids from 1, so multi-context captures (one env per compared system,
    or one per plan unit) re-issue ids with a per-context offset —
    parent links stay internal to a context by construction.
    """
    out: List[Dict[str, Any]] = []
    offset = 0
    for ctx in contexts:
        tr = ctx.tracer
        now = ctx.env.now
        top = offset
        for s in tr.spans:
            d = s.to_dict()
            if d["end"] is None:
                d["end"] = now
            d["id"] = s.id + offset
            if d["parent"] is not None:
                d["parent"] = d["parent"] + offset
            top = max(top, d["id"])
            out.append(d)
        offset = top
    return out


def load_spans_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read the flat JSONL span log back (skips instants)."""
    spans: List[Dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("instant"):
                continue
            spans.append({
                "id": rec["id"], "parent": rec.get("parent"),
                "name": rec["name"], "cat": rec["cat"],
                "track": rec["track"],
                "begin": rec.get("t0", rec.get("begin")),
                "end": rec.get("t1", rec.get("end")),
                "attrs": rec.get("attrs"),
            })
    return spans


# ---------------------------------------------------------------------------
# the critical-path walk


@dataclass(frozen=True)
class Segment:
    """One critical-path interval attributed to one span."""

    t0: float
    t1: float
    span_id: Optional[int]  # None: no span covered this interval (idle)
    name: str
    layer: str
    track: str
    #: Layers of the ancestors on the chain during this segment (they
    #: were *blocked* — on the path, but waiting on the deeper span).
    blocked_layers: Tuple[str, ...] = ()

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass
class LayerAttribution:
    """Per-layer rollup over the critical path."""

    layer: str
    self_s: float = 0.0
    blocked_s: float = 0.0
    segments: int = 0
    spans: int = 0  # distinct spans of this layer on the path


@dataclass
class CriticalPath:
    """The walk's result: segments plus the per-layer rollup."""

    t0: float
    t1: float
    segments: List[Segment] = field(default_factory=list)
    layers: Dict[str, LayerAttribution] = field(default_factory=dict)
    span_count: int = 0  # spans in the analysed trace

    @property
    def makespan(self) -> float:
        return self.t1 - self.t0

    def ordered_layers(self) -> List[LayerAttribution]:
        return [self.layers[name]
                for name in sorted(self.layers, key=_layer_sort_key)]


class _Node:
    """Analysis-side span record with resolved children."""

    __slots__ = ("id", "name", "cat", "track", "parent", "begin", "end",
                 "children")

    def __init__(self, d: Dict[str, Any]):
        self.id = int(d["id"])
        self.name = str(d["name"])
        self.cat = str(d["cat"])
        self.track = str(d["track"])
        self.parent = d.get("parent")
        self.begin = float(d["begin"])
        end = d.get("end")
        self.end = self.begin if end is None else float(end)
        if self.end < self.begin:
            self.end = self.begin
        self.children: List["_Node"] = []


def _build_forest(spans: Iterable[Dict[str, Any]]) -> List[_Node]:
    """Nodes with children resolved; roots sorted by (begin, id).

    Merged multi-unit span lists carry a ``unit`` field and re-issued
    ids; parents always resolve within the same list, so the forest is
    well formed for both single-run and merged traces.
    """
    nodes = [_Node(d) for d in spans]
    by_id = {n.id: n for n in nodes}
    roots: List[_Node] = []
    for n in sorted(nodes, key=lambda n: n.id):
        parent = by_id.get(n.parent) if n.parent is not None else None
        if parent is None or parent is n:
            roots.append(n)
        else:
            parent.children.append(n)
    roots.sort(key=lambda n: (n.begin, n.id))
    return roots


def critical_path(spans: Iterable[Dict[str, Any]]) -> CriticalPath:
    """Longest-dependency-chain attribution over a completed trace.

    The walk starts at the virtual root covering the whole trace extent
    and repeatedly descends into the child whose end is latest within
    the interval under attribution; intervals no child covers are the
    current span's *self* time.  Intervals outside every root span land
    in the ``idle`` pseudo-layer (ramp-up/drain between phases).
    """
    roots = _build_forest(spans)
    if not roots:
        return CriticalPath(0.0, 0.0)

    def max_end(n: _Node) -> float:
        # A parent whose children outlive it is stretched, matching the
        # exporters' effective-interval rule.
        return max([n.end] + [max_end(c) for c in n.children])

    t0 = min(n.begin for n in roots)
    t1 = max(max_end(n) for n in roots)
    cp = CriticalPath(t0, t1)
    span_total = 0

    def bucket(layer: str) -> LayerAttribution:
        attribution = cp.layers.get(layer)
        if attribution is None:
            attribution = cp.layers[layer] = LayerAttribution(layer)
        return attribution

    seen_on_path: set = set()

    def emit(node: Optional[_Node], lo: float, hi: float,
             stack: Tuple[str, ...]) -> None:
        if hi - lo <= _EPS:
            return
        if node is None:
            seg = Segment(lo, hi, None, "(idle)", IDLE_LAYER, "", stack)
        else:
            seg = Segment(lo, hi, node.id, node.name, layer_of(node.cat),
                          node.track, stack)
        cp.segments.append(seg)
        attribution = bucket(seg.layer)
        attribution.self_s += seg.duration
        attribution.segments += 1
        if node is not None and node.id not in seen_on_path:
            seen_on_path.add(node.id)
            attribution.spans += 1
        for layer in stack:
            bucket(layer).blocked_s += seg.duration

    def walk(node: Optional[_Node], children: List[_Node],
             lo: float, hi: float, stack: Tuple[str, ...]) -> None:
        """Attribute [lo, hi]; ``children`` compete for sub-intervals."""
        child_stack = stack if node is None else (
            stack + (layer_of(node.cat),))
        t = hi
        # Last finisher first; id tiebreak keeps the walk deterministic.
        for child in sorted(children, key=lambda c: (-max_end(c), -c.id)):
            if t - lo <= _EPS:
                break
            c_end = max_end(child)
            if c_end - lo <= _EPS or c_end > t + _EPS:
                # Fully before the window, or overlapping a later child
                # already on the chain — not on the critical path here.
                continue
            if c_end < t - _EPS:
                emit(node, c_end, t, stack)
            c_lo = max(child.begin, lo)
            walk(child, child.children, c_lo, min(c_end, t), child_stack)
            t = c_lo
        if t - lo > _EPS:
            emit(node, lo, t, stack)

    def count(n: _Node) -> int:
        return 1 + sum(count(c) for c in n.children)

    span_total = sum(count(r) for r in roots)
    walk(None, roots, t0, t1, ())
    cp.segments.sort(key=lambda s: (s.t0, s.t1))
    cp.span_count = span_total
    return cp


# ---------------------------------------------------------------------------
# renderers


def layer_table(cp: CriticalPath, title: str = "Critical-path attribution"):
    """Per-layer attribution as a :class:`~repro.bench.harness.ResultTable`."""
    from repro.bench.harness import ResultTable

    table = ResultTable(
        title,
        ["layer", "self_ms", "self_pct", "blocked_ms", "segments", "spans"],
    )
    makespan = cp.makespan or 1.0
    for attribution in cp.ordered_layers():
        table.add(
            attribution.layer,
            attribution.self_s * 1e3,
            100.0 * attribution.self_s / makespan,
            attribution.blocked_s * 1e3,
            attribution.segments,
            attribution.spans,
        )
    table.note(
        f"makespan {cp.makespan * 1e3:.3f} ms over {cp.span_count} spans; "
        "self = deepest span on the longest dependency chain, blocked = "
        "on the chain but waiting on a deeper layer"
    )
    return table


def write_critical_path_jsonl(cp: CriticalPath, path: str) -> str:
    """Machine-readable critical path: a header, layer rows, segments."""
    with open(path, "w") as fh:
        fh.write(json.dumps({
            "record": "summary", "t0": cp.t0, "t1": cp.t1,
            "makespan_s": cp.makespan, "spans": cp.span_count,
            "segments": len(cp.segments),
        }) + "\n")
        for attribution in cp.ordered_layers():
            fh.write(json.dumps({
                "record": "layer", "layer": attribution.layer,
                "self_s": attribution.self_s,
                "blocked_s": attribution.blocked_s,
                "segments": attribution.segments,
                "spans": attribution.spans,
            }) + "\n")
        for seg in cp.segments:
            fh.write(json.dumps({
                "record": "segment", "t0": seg.t0, "t1": seg.t1,
                "dur_s": seg.duration, "span": seg.span_id,
                "name": seg.name, "layer": seg.layer, "track": seg.track,
                "blocked": list(seg.blocked_layers),
            }) + "\n")
    return path


# ---------------------------------------------------------------------------
# collapsed stacks (simulated time)


def collapsed_stacks(spans: Iterable[Dict[str, Any]],
                     by_track: bool = False) -> List[str]:
    """Whole-trace flamegraph lines weighted by span *self* time.

    Each line is ``frame;frame;leaf <weight>`` with the weight in
    integer nanoseconds of simulated time — ``flamegraph.pl`` and
    speedscope both ingest the format directly.  A frame is
    ``name(layer)``; with ``by_track`` the root frame is the span's
    track (one flame per rank/device).  Lines are sorted, so output is
    byte-stable for a given trace.
    """
    roots = _build_forest(spans)
    weights: Dict[str, int] = {}

    def frame(n: _Node) -> str:
        return f"{n.name}({layer_of(n.cat)})"

    def walk(n: _Node, prefix: str) -> None:
        label = f"{prefix};{frame(n)}" if prefix else frame(n)
        child_time = 0.0
        lo, hi = n.begin, max(n.end, n.begin)
        # Children sorted by begin; overlap within a parent is counted
        # once per child (self time may go slightly negative on heavily
        # overlapped explicit-begin/end spans — clamp).
        for c in sorted(n.children, key=lambda c: (c.begin, c.id)):
            child_time += max(0.0, min(c.end, hi) - max(c.begin, lo))
            walk(c, label)
        self_s = max(0.0, (hi - lo) - child_time)
        ns = int(round(self_s * 1e9))
        if ns > 0:
            weights[label] = weights.get(label, 0) + ns

    for root in roots:
        walk(root, root.track if by_track else "")
    return [f"{stack} {weight}" for stack, weight in sorted(weights.items())]


def write_collapsed(lines: Iterable[str], path: str) -> str:
    with open(path, "w") as fh:
        for line in lines:
            fh.write(line + "\n")
    return path
