"""Opt-in wall-clock sampling profiler for the *host* Python process.

Where :mod:`repro.obs.profile` attributes **simulated** makespan,
this module answers the other profiling question the ROADMAP's
"make the event loop scream" item needs: where does the *simulator
itself* burn host CPU?  It samples the interpreter's call stacks on a
background thread and emits collapsed-stack lines compatible with
``flamegraph.pl`` and speedscope — same format as the simulated-time
flamegraphs, different clock.

Determinism contract: this is, by construction, wall-clock territory —
the one sanctioned home for host-time reads besides
:class:`~repro.obs.context.SelfProfile` (DetLint's DET001 allowlist
names exactly these modules).  Nothing here may feed simulation state:
the profiler only *observes* frames via ``sys._current_frames`` and
never touches the engine, so a sampled run's simulated results are
bit-identical to an unsampled one.  It is off unless explicitly
started (``repro profile --sample`` or the :func:`sample` context
manager).

The sampler is a daemon thread waking every ``interval_s`` (default
5 ms).  Each wake captures the traceback of the target threads and
increments one collapsed-stack bucket, so memory is bounded by the
number of distinct stacks, not the run length.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Dict, Iterable, List, Optional

__all__ = ["SamplingProfiler", "sample"]

#: Module prefixes dropped from the leaf side of a stack: sampling
#: machinery observing itself is noise, not signal.
_SELF_MODULES = ("repro/obs/sampling",)


def _frame_label(frame) -> str:
    """``module:function`` with the module path repo-relative-ish."""
    code = frame.f_code
    filename = code.co_filename.replace("\\", "/")
    # Trim to the interesting tail: site-packages or src-rooted path.
    for marker in ("/src/", "/site-packages/", "/lib/python"):
        pos = filename.rfind(marker)
        if pos != -1:
            filename = filename[pos + len(marker):]
            break
    if filename.endswith(".py"):
        filename = filename[:-3]
    return f"{filename}:{code.co_name}"


def _stack_of(frame) -> List[str]:
    """Root-to-leaf frame labels for one thread's current frame."""
    rev: List[str] = []
    while frame is not None:
        rev.append(_frame_label(frame))
        frame = frame.f_back
    rev.reverse()
    return rev


class SamplingProfiler:
    """Collapsed-stack wall-clock sampler (start/stop or ``with``)."""

    def __init__(self, interval_s: float = 0.005,
                 all_threads: bool = False):
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        self.interval_s = interval_s
        self.all_threads = all_threads
        self.samples = 0
        self.started_at: Optional[float] = None
        self.wall_s = 0.0
        self._counts: Dict[str, int] = {}
        self._target_ident: Optional[int] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._target_ident = threading.get_ident()
        self._stop.clear()
        self.started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-sampler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join()
        self._thread = None
        if self.started_at is not None:
            self.wall_s += time.perf_counter() - self.started_at
            self.started_at = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    # -- the sampling thread ---------------------------------------------

    def _run(self) -> None:
        my_ident = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            frames = sys._current_frames()
            for ident, frame in sorted(frames.items()):
                if ident == my_ident:
                    continue
                if not self.all_threads and ident != self._target_ident:
                    continue
                stack = _stack_of(frame)
                if stack and any(
                        m in stack[-1] for m in _SELF_MODULES):
                    continue
                key = ";".join(stack) if stack else "(idle)"
                self._counts[key] = self._counts.get(key, 0) + 1
                self.samples += 1

    # -- output ----------------------------------------------------------

    def collapsed(self) -> List[str]:
        """``stack count`` lines, sorted — flamegraph.pl input."""
        return [f"{stack} {count}"
                for stack, count in sorted(self._counts.items())]

    def write(self, path: str) -> str:
        with open(path, "w") as fh:
            for line in self.collapsed():
                fh.write(line + "\n")
        return path

    def top(self, n: int = 10) -> List[str]:
        """Heaviest leaf frames, for the CLI summary line."""
        leaves: Dict[str, int] = {}
        for stack, count in self._counts.items():
            leaf = stack.rsplit(";", 1)[-1]
            leaves[leaf] = leaves.get(leaf, 0) + count
        ranked = sorted(leaves.items(), key=lambda kv: (-kv[1], kv[0]))[:n]
        total = max(1, self.samples)
        return [f"{100.0 * count / total:5.1f}%  {leaf}"
                for leaf, count in ranked]


def sample(interval_s: float = 0.005,
           all_threads: bool = False) -> SamplingProfiler:
    """``with sample() as prof: ...`` — start a sampler for the block."""
    return SamplingProfiler(interval_s=interval_s, all_threads=all_threads)
