"""Span tracing stamped with simulated time.

Spans record *simulated* wall-clock intervals (``Environment.now``) and
never schedule simulation events, so a traced run is bit-identical to an
untraced one.  Two usage styles:

* ``with tracer.span("fs.write", cat="fs", track=name):`` — for
  sequential code.  Each *track* (roughly: one rank, one device, one
  service) keeps its own stack, so nesting is correct even though many
  coroutines interleave on the global event loop.
* ``s = tracer.begin(...); ...; tracer.end(s)`` — for coroutine code
  where begin and end happen in different callbacks (device commands,
  fabric messages).  These take an explicit ``parent``.

Cross-layer parent links use the *handoff slot*: a caller that is about
to make a synchronous call into a lower layer stores its span with
:meth:`Tracer.handoff`; the callee claims it with
:meth:`Tracer.take_handoff` before its first yield.  Because there is no
simulation yield between store and claim, the link is unambiguous.

When tracing is disabled, code paths either get ``None`` from
``obs.tracer_of(env)`` (explicit guard) or the :data:`NULL_TRACER`
singleton whose methods return shared immutable no-op objects — no
allocation per call.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "NULL_SPAN"]


class Span:
    """One traced interval (or instant) in simulated time."""

    __slots__ = ("id", "name", "cat", "track", "parent", "begin", "end", "attrs")

    def __init__(self, sid, name, cat, track, parent, begin, attrs):
        self.id = sid
        self.name = name
        self.cat = cat
        self.track = track
        self.parent = parent  # parent span id, or None
        self.begin = begin
        self.end = None  # None while open; == begin for instants at close
        self.attrs = attrs  # dict or None

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.begin) - self.begin

    @property
    def is_instant(self) -> bool:
        return self.end == self.begin and self.cat.startswith("!")

    def to_dict(self) -> dict:
        """Plain-dict image for cross-process transport and merging."""
        return {
            "id": self.id,
            "name": self.name,
            "cat": self.cat,
            "track": self.track,
            "parent": self.parent,
            "begin": self.begin,
            "end": self.end,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.id}, {self.name!r}, cat={self.cat!r}, "
                f"track={self.track!r}, [{self.begin}, {self.end}])")


class _SpanContext:
    """Context manager closing one stack-tracked span."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb):
        self._tracer._pop(self.span)
        return False


class Tracer:
    """Collects spans for one simulation environment.

    ``env`` only needs a ``now`` attribute (simulated seconds).  Span
    ids are allocated from a private sequence, so ordering is fully
    deterministic: same seed, same code path => same span sequence.
    """

    __slots__ = ("env", "enabled", "spans", "instants", "_stacks", "_seq",
                 "_handoff")

    def __init__(self, env):
        self.env = env
        self.enabled = True
        self.spans: List[Span] = []
        self.instants: List[Span] = []
        self._stacks: Dict[str, List[Span]] = {}
        self._seq = 0
        self._handoff: Optional[Span] = None

    # -- sequential (stack-tracked) spans --------------------------------
    def span(self, name: str, cat: str, track: str,
             parent: Optional[Span] = None, **attrs) -> _SpanContext:
        """Open a nested span on ``track``; close it with the ``with`` block.

        If ``parent`` is not given, the innermost open span on the same
        track becomes the parent.
        """
        stack = self._stacks.get(track)
        if stack is None:
            stack = self._stacks[track] = []
        if parent is None and stack:
            pid = stack[-1].id
        else:
            pid = parent.id if parent is not None else None
        s = self._new(name, cat, track, pid, attrs)
        stack.append(s)
        return _SpanContext(self, s)

    def _pop(self, span: Span) -> None:
        span.end = self.env.now
        stack = self._stacks.get(span.track)
        # Spans on one track close LIFO; tolerate a missed close above us.
        while stack:
            top = stack.pop()
            if top is span:
                break
            if top.end is None:
                top.end = self.env.now

    def current(self, track: str) -> Optional[Span]:
        stack = self._stacks.get(track)
        return stack[-1] if stack else None

    # -- explicit begin/end (coroutine-safe, no stack) -------------------
    def begin(self, name: str, cat: str, track: str,
              parent: Optional[Span] = None, **attrs) -> Span:
        return self._new(name, cat, track,
                         parent.id if parent is not None else None, attrs)

    def end(self, span: Span, **attrs) -> Span:
        span.end = self.env.now
        if attrs:
            if span.attrs is None:
                span.attrs = attrs
            else:
                span.attrs.update(attrs)
        return span

    # -- instants --------------------------------------------------------
    def instant(self, name: str, cat: str, track: str, **attrs) -> Span:
        now = self.env.now
        self._seq += 1
        s = Span(self._seq, name, cat, track, None, now, attrs or None)
        s.end = now
        self.instants.append(s)
        return s

    # -- cross-layer handoff ---------------------------------------------
    def handoff(self, span: Optional[Span]) -> None:
        """Offer ``span`` as the parent for the next synchronous callee."""
        self._handoff = span

    def take_handoff(self) -> Optional[Span]:
        """Claim (and clear) the handoff parent, if any."""
        s = self._handoff
        if s is not None:
            self._handoff = None
        return s

    # -- internals -------------------------------------------------------
    def _new(self, name, cat, track, pid, attrs) -> Span:
        self._seq += 1
        s = Span(self._seq, name, cat, track, pid, self.env.now, attrs or None)
        self.spans.append(s)
        return s

    def close_open_spans(self) -> None:
        """Clamp any still-open spans to the current simulated time."""
        for s in self.spans:
            if s.end is None:
                s.end = self.env.now
        self._stacks.clear()


class _NullSpanContext:
    """Shared no-op ``with`` target; never allocates."""

    __slots__ = ()

    def __enter__(self):
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb):
        return False


class _NullSpan:
    __slots__ = ()
    id = None
    name = cat = track = ""
    parent = None
    begin = end = 0.0
    attrs = None
    duration = 0.0


NULL_SPAN = _NullSpan()
_NULL_CTX = _NullSpanContext()
#: Shared no-op ``with`` target for guarded instrumentation sites.
NULL_CONTEXT = _NULL_CTX


class NullTracer:
    """Disabled tracer: every method returns a shared singleton.

    ``enabled`` is False so guarded sites can skip even the call; sites
    that do call it pay one method dispatch and zero allocations.
    """

    __slots__ = ()
    enabled = False
    spans: List[Span] = []
    instants: List[Span] = []

    def span(self, name, cat, track, parent=None, **attrs):
        return _NULL_CTX

    def begin(self, name, cat, track, parent=None, **attrs):
        return NULL_SPAN

    def end(self, span, **attrs):
        return span

    def instant(self, name, cat, track, **attrs):
        return NULL_SPAN

    def handoff(self, span):
        return None

    def take_handoff(self):
        return None

    def current(self, track):
        return None

    def close_open_spans(self):
        return None


NULL_TRACER = NullTracer()
