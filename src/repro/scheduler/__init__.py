"""Cluster job scheduler with namespace-granular storage (Slurm GRES model).

§III-F: "The job scheduler assigns storage to jobs at the granularity of
an NVMe namespace. If there are no free namespaces, new ones are created
from unused SSD space. [...] by using Slurm's generic resources plugin,
we were able to support this design on our cluster easily."
"""

from repro.scheduler.jobs import JobSpec, JobState, JobRecord
from repro.scheduler.slurm import SlurmScheduler, StorageGrant

__all__ = ["JobRecord", "JobSpec", "JobState", "SlurmScheduler", "StorageGrant"]
