"""Job descriptions and lifecycle state."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import SchedulerError

__all__ = ["JobSpec", "JobState", "JobRecord"]

# §III-F: "the process:SSD ratio is in the range 56-112 ... at this
# ratio NVMe SSD bandwidth is utilized to its maximum."
PROC_SSD_RATIO_LOW = 56
PROC_SSD_RATIO_HIGH = 112


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass(frozen=True)
class JobSpec:
    """What a user submits."""

    name: str
    user: str
    nprocs: int
    procs_per_node: int = 28
    storage_devices: Optional[int] = None  # None -> derived from the ratio rule
    storage_bytes_per_device: int = 64 * 1024**3

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise SchedulerError(f"job {self.name}: nprocs must be >= 1")
        if self.procs_per_node < 1:
            raise SchedulerError(f"job {self.name}: procs_per_node must be >= 1")
        if self.storage_devices is not None and self.storage_devices < 1:
            raise SchedulerError(f"job {self.name}: storage_devices must be >= 1")

    def compute_nodes_needed(self) -> int:
        return -(-self.nprocs // self.procs_per_node)

    def storage_devices_needed(self) -> int:
        """User-specified count, else the paper's ratio rule (§III-F).

        Target the middle of the 56-112 band so small jobs get one SSD
        and 448 processes get 8 (the full storage rack), matching §IV.
        """
        if self.storage_devices is not None:
            return self.storage_devices
        return max(1, -(-self.nprocs // PROC_SSD_RATIO_LOW))


@dataclass
class JobRecord:
    """Scheduler-side view of a submitted job."""

    spec: JobSpec
    job_id: int
    state: JobState = JobState.PENDING
    compute_nodes: List[str] = field(default_factory=list)
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    requeues: int = 0  # times the scheduler reallocated compute after a fault

    def rank_to_node(self, rank: int) -> str:
        """Block placement: ranks fill nodes in order (mpiexec default)."""
        if not self.compute_nodes:
            raise SchedulerError(f"job {self.spec.name} has no allocation")
        node_index = rank // self.spec.procs_per_node
        if node_index >= len(self.compute_nodes):
            raise SchedulerError(
                f"rank {rank} beyond allocation of job {self.spec.name}"
            )
        return self.compute_nodes[node_index]
