"""A Slurm-like scheduler with a GRES plugin for NVMe namespaces.

Responsibilities (kept deliberately close to what real Slurm provides,
because the paper's balancer "works along with the job scheduler"):

* allocate whole compute nodes to jobs, FCFS;
* grant storage as NVMe *namespaces* carved from registered SSDs —
  creating new namespaces from unused space when none are free;
* expose the cluster topology so the storage balancer can pick SSDs in
  partner failure domains;
* reclaim everything when a job finishes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import AllocationError, SchedulerError
from repro.nvme.device import SSD
from repro.nvme.namespace import Namespace
from repro.obs.context import tracer_of
from repro.scheduler.jobs import JobRecord, JobSpec, JobState
from repro.sim.engine import Environment
from repro.topology.cluster import ClusterSpec, NodeKind
from repro.topology.network import NetworkTopology

__all__ = ["SlurmScheduler", "StorageGrant"]


@dataclass
class StorageGrant:
    """One namespace granted to a job on one storage node."""

    node_name: str
    ssd: SSD
    namespace: Namespace


class SlurmScheduler:  # reproflow: ignore[FLOW103] (node sets serialized by scheduler events)
    """Tracks node and namespace inventory; answers allocation requests."""

    def __init__(self, env: Environment, cluster: ClusterSpec, topo: Optional[NetworkTopology] = None):
        self.env = env
        self.cluster = cluster
        self.topo = topo if topo is not None else NetworkTopology(cluster)
        self._job_ids = itertools.count(1)
        self._free_compute = [n.name for n in cluster.compute_nodes()]
        self._ssds: Dict[str, List[SSD]] = {}
        self._grants: Dict[int, List[StorageGrant]] = {}
        self._down: set = set()
        self.jobs: Dict[int, JobRecord] = {}

    # -- observability ------------------------------------------------------------

    def _obs_instant(self, name: str, **attrs) -> None:
        """Scheduler decisions are instants on the shared ``scheduler`` track."""
        tr = tracer_of(self.env)
        if tr is not None:
            tr.instant(name, cat="sched", track="scheduler", **attrs)
        ctx = self.env.obs
        if ctx is not None:
            ctx.metrics.counter(name.replace("sched.", "sched.events.")).add(1)

    def _obs_queue_wait(self, record: JobRecord) -> None:
        """Queue-wait span: submitted_at -> granted (backdated begin)."""
        tr = tracer_of(self.env)
        if tr is None:
            return
        span = tr.begin("sched.queue_wait", cat="sched", track="scheduler",
                        parent=None, job=record.spec.name, job_id=record.job_id)
        span.begin = record.submitted_at
        tr.end(span)

    # -- inventory ----------------------------------------------------------------

    def register_ssd(self, node_name: str, ssd: SSD) -> None:
        """Attach a device to a storage node (driver does this at boot)."""
        node = self.cluster.node(node_name)
        if node.kind is not NodeKind.STORAGE:
            raise SchedulerError(f"{node_name} is not a storage node")
        self._ssds.setdefault(node_name, []).append(ssd)

    def storage_inventory(self) -> Dict[str, List[SSD]]:
        return {node: list(ssds) for node, ssds in self._ssds.items()}

    def free_compute_nodes(self) -> List[str]:
        return list(self._free_compute)

    def down_nodes(self) -> List[str]:
        return sorted(self._down)

    def mark_node_down(self, node_name: str) -> None:
        """Take a node out of service (fault injection / operator drain).

        A free node leaves the pool immediately; an allocated node is
        only excluded from future allocations — the owning job learns of
        the loss through its own failure handling (requeue).
        """
        self.cluster.node(node_name)  # validate the name
        self._down.add(node_name)
        if node_name in self._free_compute:
            self._free_compute.remove(node_name)

    def mark_node_up(self, node_name: str) -> None:
        """Return a repaired node to service."""
        if node_name not in self._down:
            return
        self._down.discard(node_name)
        node = self.cluster.node(node_name)
        allocated = {
            n
            for job in self.jobs.values()
            if job.state is JobState.RUNNING
            for n in job.compute_nodes
        }
        if (
            node.kind is NodeKind.COMPUTE
            and node_name not in allocated
            and node_name not in self._free_compute
        ):
            self._free_compute.append(node_name)

    # -- job lifecycle ----------------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Allocate compute nodes immediately (FCFS; raises if impossible)."""
        needed = spec.compute_nodes_needed()
        if needed > len(self.cluster.compute_nodes()):
            raise AllocationError(
                f"job {spec.name} needs {needed} compute nodes; cluster has "
                f"{len(self.cluster.compute_nodes())}"
            )
        record = JobRecord(spec=spec, job_id=next(self._job_ids), submitted_at=self.env.now)
        self.jobs[record.job_id] = record
        if needed <= len(self._free_compute):
            record.compute_nodes = [self._free_compute.pop(0) for _ in range(needed)]
            record.state = JobState.RUNNING
            record.started_at = self.env.now
        self._obs_instant("sched.submit", job=spec.name, job_id=record.job_id,
                          nodes=needed, granted=record.state is JobState.RUNNING)
        if record.state is JobState.RUNNING:
            self._obs_queue_wait(record)
        return record

    def grant_storage(
        self,
        job: JobRecord,
        node_names: List[str],
        bytes_per_device: Optional[int] = None,
    ) -> List[StorageGrant]:
        """GRES: carve one namespace per requested storage node.

        The *balancer* chooses ``node_names``; the scheduler only enforces
        inventory and creates namespaces from unused SSD space.
        """
        if job.state is not JobState.RUNNING:
            raise SchedulerError(f"job {job.spec.name} is not running")
        quota = bytes_per_device or job.spec.storage_bytes_per_device
        grants: List[StorageGrant] = []
        for node_name in node_names:
            ssds = self._ssds.get(node_name)
            if not ssds:
                raise AllocationError(f"no SSDs registered on {node_name}")
            ssd = max(ssds, key=lambda s: s.free_bytes())
            if ssd.free_bytes() < quota:
                raise AllocationError(
                    f"{node_name}:{ssd.name} has {ssd.free_bytes()} free, "
                    f"job {job.spec.name} wants {quota}"
                )
            ns = ssd.create_namespace(quota, owner_job=job.spec.name)
            grants.append(StorageGrant(node_name, ssd, ns))
        self._grants.setdefault(job.job_id, []).extend(grants)
        self._obs_instant("sched.grant", job=job.spec.name,
                          nodes=",".join(node_names), bytes_per_device=quota)
        return grants

    def grants_of(self, job: JobRecord) -> List[StorageGrant]:
        return list(self._grants.get(job.job_id, []))

    def complete(self, job: JobRecord, failed: bool = False) -> None:
        """Release nodes and delete the job's namespaces (ephemeral!)."""
        if job.state is not JobState.RUNNING:
            raise SchedulerError(f"job {job.spec.name} is not running")
        job.state = JobState.FAILED if failed else JobState.COMPLETED
        job.finished_at = self.env.now
        self._free_compute.extend(
            n for n in job.compute_nodes if n not in self._down
        )
        for grant in self._grants.pop(job.job_id, []):
            grant.ssd.delete_namespace(grant.namespace.nsid)
        self._obs_instant("sched.complete", job=job.spec.name, failed=failed)

    def requeue(self, job: JobRecord, restart_cost: float = 0.0) -> JobRecord:
        """Reallocate a running job's compute after a node loss,
        *preserving its storage grants*.

        Unlike :meth:`complete`, the job's NVMe namespaces survive — the
        partner-domain checkpoint data they hold is exactly what the
        replacement processes restore from. Down nodes are excluded;
        surviving nodes return to the pool and the job draws a fresh
        allocation (Slurm's ``scontrol requeue`` + ``--no-kill`` shape).
        """
        if job.state is not JobState.RUNNING:
            raise SchedulerError(f"job {job.spec.name} is not running")
        self._free_compute.extend(
            n for n in job.compute_nodes if n not in self._down
        )
        job.compute_nodes = []
        needed = job.spec.compute_nodes_needed()
        if needed > len(self._free_compute):
            job.state = JobState.FAILED
            job.finished_at = self.env.now
            raise AllocationError(
                f"job {job.spec.name}: requeue needs {needed} compute nodes, "
                f"only {len(self._free_compute)} are up"
            )
        job.compute_nodes = [self._free_compute.pop(0) for _ in range(needed)]
        job.requeues += 1
        job.started_at = self.env.now + restart_cost
        self._obs_instant("sched.requeue", job=job.spec.name,
                          requeues=job.requeues, restart_cost_s=restart_cost)
        return job
