"""Discrete-event simulation kernel.

A small, dependency-free SimPy-like kernel: an :class:`~repro.sim.engine.Environment`
advances virtual time through a binary-heap event queue; user code is written
as generator *processes* that ``yield`` events (timeouts, resource requests,
transfer completions, other processes).

Why build one instead of depending on SimPy: the device and fabric models
need a fluid fair-share bandwidth server with mid-flight re-rating
(:mod:`repro.sim.fairshare`), which requires tighter integration with the
event core than SimPy exposes, and the offline environment has no SimPy.

Public surface::

    env = Environment()
    env.process(gen)          # start a coroutine process
    env.timeout(0.5)          # event firing 0.5 simulated seconds later
    env.run()                 # run to exhaustion (or until=t)
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.fairshare import FairShareServer, Flow
from repro.sim.resources import Resource, Store
from repro.sim.rng import RngHub
from repro.sim.shard import BoundaryChannel, ShardCoordinator, fabric_lookahead

# Counter/TraceRecorder live in repro.obs.metrics (the old repro.sim.trace
# alias shim has been removed); re-exported here for workload code that
# treats them as part of the sim toolkit.
from repro.obs.metrics import Counter, TraceRecorder

__all__ = [
    "AllOf",
    "AnyOf",
    "BoundaryChannel",
    "Counter",
    "Environment",
    "Event",
    "FairShareServer",
    "Flow",
    "Interrupt",
    "Process",
    "Resource",
    "RngHub",
    "ShardCoordinator",
    "Store",
    "Timeout",
    "TraceRecorder",
    "fabric_lookahead",
]
