"""Event loop, events, and generator-based processes.

The kernel follows the classic event-list design: a binary heap of
``(time, sequence, event)`` entries. Ties in time break by insertion
sequence, which makes every simulation run deterministic — an invariant
the reproduction relies on (all tables must be bit-for-bit repeatable).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import SimulationError

__all__ = [
    "Environment",
    "EngineTelemetry",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
]


class EngineTelemetry:
    """Deterministic hot-loop counters for the engine itself.

    Counts *work*, never time: events dispatched per event class, heap
    traffic, coroutine resumes, and fair-share re-rates.  Every value is
    a pure function of the event stream, so the same seed produces the
    same counters on any host and at any shard count — the merge layer
    can sum them bit-identically.  Attached via ``repro.obs.attach(...,
    telemetry=True)`` (the ``repro profile`` CLI path); when absent the
    engine pays one attribute read per dispatch and nothing more.
    """

    __slots__ = ("dispatch", "heap_pops", "resumes", "fairshare_recomputes",
                 "fairshare_flows", "_published")

    def __init__(self) -> None:
        self.dispatch: dict = {}  # event class name -> dispatch count
        self.heap_pops = 0
        self.resumes = 0
        self.fairshare_recomputes = 0
        self.fairshare_flows = 0
        self._published = False

    def note_dispatch(self, event: "Event") -> None:
        name = type(event).__name__
        self.dispatch[name] = self.dispatch.get(name, 0) + 1
        self.heap_pops += 1

    def publish(self, metrics: Any, env: "Environment") -> None:
        """Fold the counters into a metrics registry (idempotent).

        ``engine.heap.pushes`` is the environment's scheduled-event
        total — every push goes through ``_schedule``/``_schedule_at``,
        which already count via ``_seq``.
        """
        if self._published:
            return
        self._published = True
        for name in sorted(self.dispatch):
            metrics.counter(f"engine.dispatch.{name}").add(self.dispatch[name])
        metrics.counter("engine.heap.pushes").add(env.events_scheduled)
        metrics.counter("engine.heap.pops").add(self.heap_pops)
        metrics.counter("engine.coroutine.resumes").add(self.resumes)
        metrics.counter("engine.fairshare.recomputes").add(
            self.fairshare_recomputes)
        metrics.counter("engine.fairshare.flows").add(self.fairshare_flows)


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    ``cause`` carries whatever the interrupter supplied (e.g. a power-loss
    notification from :mod:`repro.nvme.power`).
    """

    __slots__ = ("cause",)

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event is *triggered* when given a value (or an exception), and
    *processed* once the loop has run its callbacks. Processes wait on
    events by ``yield``-ing them.
    """

    __slots__ = (
        "env",
        "callbacks",
        "_value",
        "_exc",
        "_triggered",
        "_processed",
        "_had_callbacks",
    )

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._processed = False
        self._had_callbacks = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been given a value or exception."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the loop has run this event's callbacks."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- trigger ----------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully; runs callbacks at the current time."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.env._schedule(self, 0.0)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception, raised in waiting processes."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        self._triggered = True
        self._exc = exc
        self.env._schedule(self, 0.0)
        return self

    # -- loop internals -----------------------------------------------------

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        self._had_callbacks = bool(callbacks)
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.env.now:.6f}>"


class Timeout(Event):
    """An event that fires a fixed delay after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._value = value
        env._schedule(self, delay)


class Process(Event):
    """A generator-driven coroutine; completes when the generator returns.

    The process's own completion is an event: other processes may
    ``yield proc`` to join it. The generator's ``return`` value becomes
    the event value; an uncaught exception fails the event (and
    propagates to the loop if nobody is waiting — silent failures would
    hide model bugs).
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any]) -> None:
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Bootstrap: step the process at the current time.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap._triggered = True
        env._schedule(bootstrap, 0.0)

    @property
    def is_alive(self) -> bool:
        """True while the process generator has not returned."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        target = self._waiting_on
        if target is not None and not target._triggered:
            # Detach from the event we were waiting on.
            if target.callbacks is not None and self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
        kick = Event(self.env)
        kick.callbacks.append(lambda _ev: self._step_throw(Interrupt(cause)))
        kick._triggered = True
        self.env._schedule(kick, 0.0)

    # -- stepping -----------------------------------------------------------

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        telemetry = self.env.telemetry
        if telemetry is not None:
            telemetry.resumes += 1
        try:
            if event._exc is not None:
                target = self._generator.throw(event._exc)
            else:
                target = self._generator.send(event._value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - must surface model errors
            self._fail_process(exc)
            return
        self._wait_on(target)

    def _step_throw(self, exc: BaseException) -> None:
        self._waiting_on = None
        telemetry = self.env.telemetry
        if telemetry is not None:
            telemetry.resumes += 1
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as err:  # noqa: BLE001
            self._fail_process(err)
            return
        self._wait_on(target)

    def _wait_on(self, target: Event) -> None:
        if not isinstance(target, Event):
            self._fail_process(
                SimulationError(f"process yielded non-event {target!r}")
            )
            return
        self._waiting_on = target
        if target.callbacks is None:
            # Already processed: resume immediately (same timestep).
            kick = Event(self.env)
            kick.callbacks.append(self._resume)
            kick._triggered = True
            kick._value = target._value
            kick._exc = target._exc
            self.env._schedule(kick, 0.0)
        else:
            target.callbacks.append(self._resume)

    def _finish(self, value: Any) -> None:
        self._triggered = True
        self._value = value
        self.env._schedule(self, 0.0)

    def _fail_process(self, exc: BaseException) -> None:
        self._triggered = True
        self._exc = exc
        self.env._schedule(self, 0.0)
        self.env._note_failure(self, exc)


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            if event.callbacks is None:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> List[Any]:
        return [e._value for e in self.events if e._triggered and e._exc is None]


class AnyOf(_Condition):
    """Triggers when the first child event triggers."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers once every child event has triggered."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class Environment:
    """The simulation clock and event queue."""

    __slots__ = ("_now", "_queue", "_seq", "_failures", "_active", "obs",
                 "monitor", "telemetry")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[tuple] = []
        self._seq = 0
        self._failures: List[tuple] = []
        self._active = 0  # events scheduled but not yet processed
        self.obs = None  # ObsContext, attached by repro.obs.attach()
        self.monitor = None  # sanitizer Monitor (repro.analysis.sanitize)
        self.telemetry: Optional[EngineTelemetry] = None  # repro.obs.attach(telemetry=True)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- factories ----------------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event bound to this environment."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start a coroutine process; the return value is also its join event."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event triggering when every child has triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event triggering on the first child trigger."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (self._now + delay, seq, event))

    def _schedule_at(self, event: Event, time: float) -> None:
        """Schedule ``event`` at an absolute simulated time.

        Used by the shard coordinator to inject boundary messages at
        their delivery time; ``time`` must not precede the clock.
        """
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (time, seq, event))

    def peek(self) -> Optional[float]:
        """Timestamp of the next pending event, or None when drained."""
        return self._queue[0][0] if self._queue else None

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled — the determinism fingerprint's
        cheap proxy for 'same event stream'."""
        return self._seq

    def _note_failure(self, process: Process, exc: BaseException) -> None:
        self._failures.append((process, exc))

    # -- main loop -----------------------------------------------------------

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("step() on empty event queue")
        time, _seq, event = heapq.heappop(self._queue)
        if time < self._now - 1e-12:
            raise SimulationError("time went backwards (scheduler bug)")
        self._now = max(self._now, time)
        if self.monitor is not None:
            self.monitor.note_event(time, _seq, event)
        if self.telemetry is not None:
            self.telemetry.note_dispatch(event)
        obs = self.obs
        if obs is not None and obs.profile:
            import time as _time

            t0 = _time.perf_counter()  # detlint: ignore[DET001]
            event._run_callbacks()
            obs.selfprof.add(
                type(event).__name__,
                _time.perf_counter() - t0)  # detlint: ignore[DET001]
            obs.metrics.counter("sim.events").add(1)
        else:
            event._run_callbacks()

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulated time reaches ``until``.

        Raises the exception of any process that failed with nobody
        waiting on it — silent process death would corrupt results.
        Returns the final simulation time.
        """
        obs = self.obs
        if obs is not None and obs.profile:
            return self._run_profiled(until, obs)
        if self.monitor is not None:
            return self._run_monitored(until, self.monitor)
        if self.telemetry is not None:
            return self._run_telemetry(until, self.telemetry)
        # Hot loop: the pop/dispatch below is step() inlined (identical
        # ordering), with the orphan check guarded so the common case
        # costs one truth test instead of a call per event.
        queue = self._queue
        pop = heapq.heappop
        while queue:
            time = queue[0][0]
            if until is not None and time > until:
                self._now = until
                break
            if time < self._now - 1e-12:
                raise SimulationError("time went backwards (scheduler bug)")
            event = pop(queue)[2]
            if time > self._now:
                self._now = time
            event._run_callbacks()
            if self._failures:
                self._raise_orphans()
        if self._failures:
            self._raise_orphans()
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_window(self, horizon: float) -> float:
        """Process every event strictly before ``horizon``; leave the rest.

        The conservative-synchronization primitive: a shard may safely
        run all events with ``t < horizon`` when every cross-shard
        message sent during the window arrives at ``t >= horizon``
        (guaranteed by the boundary channels' minimum latency).  Unlike
        :meth:`run`, events *at* the horizon stay queued — they belong
        to the next window, after message exchange — and the clock is
        not advanced past the last processed event.
        """
        queue = self._queue
        pop = heapq.heappop
        telemetry = self.telemetry
        while queue:
            time = queue[0][0]
            if time >= horizon:
                break
            if time < self._now - 1e-12:
                raise SimulationError("time went backwards (scheduler bug)")
            event = pop(queue)[2]
            if time > self._now:
                self._now = time
            if telemetry is not None:
                telemetry.note_dispatch(event)
            event._run_callbacks()
            if self._failures:
                self._raise_orphans()
        if self._failures:
            self._raise_orphans()
        return self._now

    def _run_monitored(self, until: Optional[float], monitor: Any) -> float:
        """run() with the sanitizer monitor's per-event hook.

        Taken only when a :mod:`repro.analysis.sanitize` Monitor is
        attached.  Event ordering and the final clock are *identical* to
        :meth:`run` — the hook is pure bookkeeping (stream hashing, race
        grouping) and never creates events or reads the clock.
        """
        queue = self._queue
        pop = heapq.heappop
        note = monitor.note_event
        while queue:
            time = queue[0][0]
            if until is not None and time > until:
                self._now = until
                break
            if time < self._now - 1e-12:
                raise SimulationError("time went backwards (scheduler bug)")
            _time_popped, seq, event = pop(queue)
            if time > self._now:
                self._now = time
            note(time, seq, event)
            event._run_callbacks()
            if self._failures:
                self._raise_orphans()
        if self._failures:
            self._raise_orphans()
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def _run_telemetry(self, until: Optional[float],
                       telemetry: EngineTelemetry) -> float:
        """run() with the deterministic self-telemetry dispatch hook.

        Taken when an :class:`EngineTelemetry` is attached (the
        ``repro profile`` path).  Event ordering and the final clock are
        *identical* to :meth:`run` — the hook is pure integer counting
        (no wall clock, no allocation beyond the per-class dict) and
        never creates events, so pinned baselines hold with it on.
        """
        queue = self._queue
        pop = heapq.heappop
        note = telemetry.note_dispatch
        while queue:
            time = queue[0][0]
            if until is not None and time > until:
                self._now = until
                break
            if time < self._now - 1e-12:
                raise SimulationError("time went backwards (scheduler bug)")
            event = pop(queue)[2]
            if time > self._now:
                self._now = time
            note(event)
            event._run_callbacks()
            if self._failures:
                self._raise_orphans()
        if self._failures:
            self._raise_orphans()
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def _run_profiled(self, until: Optional[float], obs: Any) -> float:
        """run() with per-event-class wall-clock self-profiling.

        Taken only when ``env.obs.profile`` is set (the ``--metrics``
        CLI flag).  Event *ordering* and the final clock are identical
        to :meth:`run`; the only additions are a step counter in the
        metrics registry and HOST wall-clock attribution per event
        class in ``obs.selfprof`` — a separate channel that never feeds
        back into simulated time.
        """
        import time as _time

        queue = self._queue
        pop = heapq.heappop
        perf = _time.perf_counter
        selfprof = obs.selfprof
        steps = obs.metrics.counter("sim.events")
        loop_t0 = perf()
        while queue:
            time = queue[0][0]
            if until is not None and time > until:
                self._now = until
                break
            if time < self._now - 1e-12:
                raise SimulationError("time went backwards (scheduler bug)")
            event = pop(queue)[2]
            if time > self._now:
                self._now = time
            t0 = perf()
            event._run_callbacks()
            selfprof.add(type(event).__name__, perf() - t0)
            steps.add(1)
            if self._failures:
                self._raise_orphans()
        selfprof.add("Environment.run", perf() - loop_t0)
        if self._failures:
            self._raise_orphans()
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until_complete(self, event: Event, limit: float = float("inf")) -> Any:
        """Run until ``event`` triggers; convenience for tests and drivers."""
        queue = self._queue
        while not event.triggered:
            if not queue:
                raise SimulationError("event can never trigger: queue empty")
            if queue[0][0] > limit:
                raise SimulationError(f"event did not trigger before t={limit}")
            self.step()
            if self._failures:
                self._raise_orphans()
        # Drain same-time callbacks so the event is fully processed.
        while queue and queue[0][0] <= self._now:
            self.step()
            if self._failures:
                self._raise_orphans()
        return event.value

    def _raise_orphans(self) -> None:
        """Raise the exception of any failed process nobody was joining.

        A process failure with a registered waiter is delivered into the
        waiter (who may handle it); a failure with *no* waiter would
        otherwise vanish, so it aborts the run here.
        """
        if not self._failures:
            return
        still_pending = []
        for process, exc in self._failures:
            if process.processed:
                if not process._had_callbacks:
                    self._failures = []
                    raise exc
                # A waiter observed the failure; considered handled.
            else:
                still_pending.append((process, exc))
        self._failures = still_pending
