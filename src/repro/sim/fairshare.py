"""Fluid max-min fair-share bandwidth server.

Models a capacity-``C`` pipe (an SSD's aggregate flash bandwidth, a NIC,
a RAID controller) shared by concurrent byte *flows*. Rates follow
max-min fairness with optional per-flow caps (a client NIC slower than
the device, for example): uncapped flows split what capped flows leave
behind (progressive water-filling).

Whenever the flow set changes, all in-flight flows are re-rated — this
mid-flight re-rating is why the kernel is custom rather than SimPy.

The fluid model is the *fast path* for bulk transfers. Per-command
effects (fixed costs, whole-command granularity) are layered on top by
:mod:`repro.nvme.device`, which charges them explicitly.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.errors import SimulationError
from repro.sim.engine import Environment, Event

__all__ = ["FairShareServer", "Flow"]

_EPSILON_BYTES = 1e-6  # below this a flow is complete (fp dust)


class Flow:
    """One in-flight transfer on a :class:`FairShareServer`."""

    __slots__ = ("flow_id", "remaining", "cap", "rate", "event", "started_at")

    def __init__(
        self,
        flow_id: int,
        nbytes: float,
        cap: Optional[float],
        event: Event,
        started_at: float,
    ):
        self.flow_id = flow_id
        self.remaining = float(nbytes)
        self.cap = cap
        self.rate = 0.0
        self.event = event
        self.started_at = started_at


class FairShareServer:
    """A shared pipe serving concurrent flows at max-min fair rates."""

    #: Accounting updates commute at equal timestamps — rates are
    #: recomputed from the full flow set, never from arrival order.
    _san_tiebreak = "commutative"

    def __init__(self, env: Environment, capacity: float, name: str = "pipe") -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = float(capacity)
        self.name = name
        self._flows: Dict[int, Flow] = {}
        self._ids = itertools.count()
        self._last_update = env.now
        self._wake_generation = 0
        # Accounting.
        self.bytes_served = 0.0
        self._busy_time = 0.0

    # -- public API -----------------------------------------------------------

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def transfer(self, nbytes: float, cap: Optional[float] = None) -> Event:
        """Start a flow of ``nbytes``; returns the completion event.

        ``cap`` optionally limits this flow's rate (bytes/s) below its
        fair share.
        """
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        if cap is not None and cap <= 0:
            raise SimulationError(f"non-positive rate cap: {cap}")
        event = self.env.event()
        if nbytes == 0:
            event.succeed(0.0)
            return event
        telemetry = self.env.telemetry
        if telemetry is not None:
            telemetry.fairshare_flows += 1
        self._advance()
        flow = Flow(next(self._ids), nbytes, cap, event, self.env.now)
        self._flows[flow.flow_id] = flow
        self._rerate_and_schedule()
        return event

    def utilisation(self, since: float = 0.0) -> float:
        """Fraction of capacity-time used on [since, now]."""
        self._advance()
        horizon = self.env.now - since
        if horizon <= 0:
            return 0.0
        return min(1.0, self._busy_time / (horizon * self.capacity))

    # -- internals --------------------------------------------------------------

    def _advance(self) -> None:
        """Drain bytes for the elapsed interval at current rates."""
        now = self.env.now
        dt = now - self._last_update
        if dt > 0:
            for flow in self._flows.values():
                moved = flow.rate * dt
                flow.remaining -= moved
                self.bytes_served += moved
                self._busy_time += moved  # busy integral == bytes moved / capacity-normalised later
        self._last_update = now

    def _rerate_and_schedule(self) -> None:
        """Assign max-min fair rates, then schedule the next completion."""
        flows = list(self._flows.values())
        if not flows:
            return
        telemetry = self.env.telemetry
        if telemetry is not None:
            telemetry.fairshare_recomputes += 1
        # Progressive filling: capped flows that can't use a full fair
        # share free capacity for the rest.
        remaining_capacity = self.capacity
        unassigned = sorted(
            flows, key=lambda f: (f.cap if f.cap is not None else float("inf"))
        )
        count = len(unassigned)
        for index, flow in enumerate(unassigned):
            share = remaining_capacity / (count - index)
            rate = min(share, flow.cap) if flow.cap is not None else share
            flow.rate = rate
            remaining_capacity -= rate
        # Next completion. _advance() can leave an almost-finished flow
        # with remaining ~ -1e-16 (fp dust), which would make the horizon
        # negative and the timeout below illegal — clamp to "fire now".
        horizon = max(0.0, min(
            (f.remaining / f.rate) for f in flows if f.rate > 0
        ))
        self._wake_generation += 1
        generation = self._wake_generation
        wake = self.env.timeout(horizon)
        wake.callbacks.append(lambda _ev: self._on_wake(generation))

    def _on_wake(self, generation: int) -> None:
        if generation != self._wake_generation:
            return  # superseded by a newer re-rate
        self._advance()
        finished = [
            f for f in self._flows.values() if self._is_done(f)
        ]
        if not finished and self._flows:
            # Floating-point guard: when every remaining service time is
            # below the clock's resolution (now + dt == now), time can
            # no longer advance — finish the nearest flow explicitly
            # rather than spinning.
            nearest = min(
                (f for f in self._flows.values() if f.rate > 0),
                key=lambda f: f.remaining / f.rate,
                default=None,
            )
            if nearest is not None and (
                self.env.now + nearest.remaining / nearest.rate == self.env.now
            ):
                finished = [nearest]
        for flow in finished:
            del self._flows[flow.flow_id]
            flow.event.succeed(self.env.now - flow.started_at)
        if self._flows:
            self._rerate_and_schedule()

    @staticmethod
    def _is_done(flow: Flow) -> bool:
        if flow.remaining <= _EPSILON_BYTES:
            return True
        # Remaining service time below a picosecond is numeric dust.
        return flow.rate > 0 and flow.remaining / flow.rate <= 1e-12
