"""Shared resources for simulation processes.

:class:`Resource` is a counted FCFS server — the model for metadata
servers, RAID controllers, and CPU cores. :class:`Store` is a FIFO
hand-off channel used for message passing (RPC queues, completion
queues).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from repro.errors import SimulationError
from repro.sim.engine import Environment, Event

__all__ = ["Resource", "Store"]


class Resource:
    """A server pool with ``capacity`` slots and a FIFO wait queue.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            yield env.timeout(service_time)
        finally:
            resource.release(req)

    or, for the common serve-for-a-duration pattern::

        yield from resource.serve(service_time)
    """

    #: Same-timestamp contention resolves by the FIFO wait queue — the
    #: sanitizer's tie-break declaration (repro.analysis.sanitize).
    _san_tiebreak = "fifo"

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_service = 0
        self._waiting: Deque = deque()
        # Cumulative stats for utilisation reporting.
        self.total_requests = 0
        self.total_wait_time = 0.0
        self._busy_time = 0.0
        self._last_change = env.now

    # -- accounting ---------------------------------------------------------

    @property
    def in_service(self) -> int:
        return self._in_service

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def busy_time(self) -> float:
        """Integral of (in_service / capacity) dt up to now."""
        self._accrue()
        return self._busy_time

    def _accrue(self) -> None:
        now = self.env.now
        self._busy_time += (now - self._last_change) * (
            self._in_service / self.capacity
        )
        self._last_change = now

    # -- core protocol --------------------------------------------------------

    def request(self) -> Event:
        """Return an event that triggers once a slot is granted."""
        monitor = self.env.monitor
        if monitor is not None:
            monitor.note_mutation(self, "request")
        self.total_requests += 1
        event = self.env.event()
        if self._in_service < self.capacity:
            self._accrue()
            self._in_service += 1
            event.succeed()
        else:
            self._waiting.append((event, self.env.now))
        return event

    def release(self, request: Optional[Event] = None) -> None:
        """Release a slot; hands it to the longest-waiting requester."""
        if self._in_service <= 0:
            raise SimulationError("release() without matching request()")
        monitor = self.env.monitor
        if monitor is not None:
            monitor.note_mutation(self, "release")
        if self._waiting:
            nxt, queued_at = self._waiting.popleft()
            self.total_wait_time += self.env.now - queued_at
            nxt.succeed()
            # Slot transfers directly; _in_service unchanged.
        else:
            self._accrue()
            self._in_service -= 1

    def serve(self, duration: float) -> Generator[Event, Any, None]:
        """Acquire a slot, hold it for ``duration``, release. (Sub-generator.)"""
        req = self.request()
        yield req
        try:
            yield self.env.timeout(duration)
        finally:
            self.release(req)


class Store:
    """An unbounded FIFO channel between processes.

    ``put`` never blocks; ``get`` returns an event that triggers when an
    item is available (items are matched to getters in FIFO order).
    """

    #: Items match getters in arrival order (deques on both sides).
    _san_tiebreak = "fifo"

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        monitor = self.env.monitor
        if monitor is not None:
            monitor.note_mutation(self, "put")
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        monitor = self.env.monitor
        if monitor is not None:
            monitor.note_mutation(self, "get")
        event = self.env.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
